"""Exact subgraph matching (ground-truth cardinality counting)."""

from .homomorphism import HomomorphismCounter, MatchResult, count_embeddings
from .treecount import (
    CyclicQueryError,
    count_embeddings_auto,
    count_tree_embeddings,
    is_tree_query,
)
from .visible import VisibleSubgraph, visible_subgraph

__all__ = [
    "CyclicQueryError",
    "HomomorphismCounter",
    "MatchResult",
    "VisibleSubgraph",
    "count_embeddings",
    "count_embeddings_auto",
    "count_tree_embeddings",
    "is_tree_query",
    "visible_subgraph",
]

"""Exact homomorphism counting for acyclic queries by dynamic programming.

For a query whose undirected skeleton is a tree, the number of
homomorphisms factorizes over the tree: rooting the query anywhere, the
count of embeddings mapping vertex ``u`` to data vertex ``v`` is the
product over ``u``'s children of the sums of their counts over the
adjacent candidates.  This runs in ``O(|E_Q| * |E_G|)`` — no backtracking
— and is how JSUB's Exact Weight oracle generalizes to whole-query
counting.

The module serves two purposes:

* a fast ground-truth path for the (very common) acyclic workload
  queries, and
* an independent implementation to cross-validate the backtracking
  matcher (`tests/test_treecount.py` checks they always agree).

Queries whose skeleton contains a cycle (including parallel query edges
between the same vertex pair, and self loops) are rejected — use
:func:`repro.matching.homomorphism.count_embeddings` for those.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.digraph import Graph
from ..graph.query import QueryGraph

QueryEdge = Tuple[int, int, int]


class CyclicQueryError(ValueError):
    """The query's skeleton is not a tree."""


def is_tree_query(query: QueryGraph) -> bool:
    """True iff the query is connected and its skeleton is a simple tree."""
    if query.num_edges == 0 or not query.is_connected():
        return False
    pairs = set()
    for u, v, _ in query.edges:
        if u == v:
            return False
        pair = (min(u, v), max(u, v))
        if pair in pairs:
            return False  # parallel/antiparallel edges form a 2-cycle
        pairs.add(pair)
    return len(pairs) == query.num_vertices - 1


def count_tree_embeddings(graph: Graph, query: QueryGraph) -> int:
    """Count homomorphic embeddings of an acyclic query exactly.

    Raises :class:`CyclicQueryError` for non-tree queries.
    """
    if not is_tree_query(query):
        raise CyclicQueryError("count_tree_embeddings requires a tree query")
    root = 0
    children = _orient(query, root)
    memo: Dict[Tuple[int, int], int] = {}

    def subtree_count(u: int, v: int) -> int:
        """Embeddings of u's subtree with u fixed to data vertex v."""
        labels = query.vertex_labels[u]
        if labels and not labels <= graph.vertex_labels(v):
            return 0
        key = (u, v)
        cached = memo.get(key)
        if cached is not None:
            return cached
        product = 1
        for child, edge in children[u]:
            a, b, label = edge
            if a == u:  # u --label--> child
                candidates = graph.out_neighbors(v, label)
            else:  # child --label--> u
                candidates = graph.in_neighbors(v, label)
            branch = 0
            for w in candidates:
                branch += subtree_count(child, w)
            product *= branch
            if product == 0:
                break
        memo[key] = product
        return product

    root_labels = query.vertex_labels[root]
    if root_labels:
        candidates = graph.vertices_with_labels(root_labels)
    else:
        candidates = graph.vertices()
    return sum(subtree_count(root, v) for v in candidates)


def _orient(
    query: QueryGraph, root: int
) -> List[List[Tuple[int, QueryEdge]]]:
    """Parent -> [(child, connecting edge)] lists for the rooted tree."""
    children: List[List[Tuple[int, QueryEdge]]] = [
        [] for _ in range(query.num_vertices)
    ]
    visited = {root}
    frontier = [root]
    remaining = list(query.edges)
    while frontier:
        u = frontier.pop()
        still_remaining = []
        for edge in remaining:
            a, b, _ = edge
            if a == u and b not in visited:
                children[u].append((b, edge))
                visited.add(b)
                frontier.append(b)
            elif b == u and a not in visited:
                children[u].append((a, edge))
                visited.add(a)
                frontier.append(a)
            else:
                still_remaining.append(edge)
        remaining = still_remaining
    return children


def count_embeddings_auto(graph: Graph, query: QueryGraph) -> int:
    """Tree DP when possible, backtracking otherwise."""
    if is_tree_query(query):
        return count_tree_embeddings(graph, query)
    from .homomorphism import count_embeddings

    return count_embeddings(graph, query).count

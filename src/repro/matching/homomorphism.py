"""Exact subgraph matching by graph homomorphism.

The paper defines subgraph matching via graph homomorphism (Section 2):
an embedding maps query vertices to data vertices such that vertex labels
are contained, and every query edge maps to a data edge with the same label.
Homomorphisms are *not* required to be injective.

This module provides the ground-truth cardinality counter used to compute
true cardinalities for q-error evaluation, and is reused by estimators that
execute (sub)queries over restricted data (CorrelatedSampling counts the
join over its samples; SumRDF matches the query against its summary graph).

The counter is a backtracking search with:

* a matching order that starts from the most selective query vertex and
  grows along query edges (so every subsequent vertex is constrained by at
  least one assigned neighbor when the query is connected),
* candidate generation from the smallest adjacency list,
* a *leaf product* shortcut: when all remaining query vertices are mutually
  non-adjacent and fully constrained by assigned vertices, the number of
  completions is the product of their candidate counts,
* optional per-query-edge candidate restrictions, a wall-clock budget and a
  count cap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from ..kernels import ops as _kops

try:  # typing helper for vertex filter predicates
    from typing import Callable

    VertexFilter = Callable[[int], bool]
except ImportError:  # pragma: no cover
    pass


@dataclass
class MatchResult:
    """Outcome of a counting run.

    ``complete`` is False when the run stopped early (timeout or count cap);
    ``count`` is then a lower bound on the true cardinality.  ``steps``
    counts backtracking search nodes (calls of the recursive search) —
    the matcher's work metric, surfaced by the observability layer as
    the ``match.backtrack_steps`` counter.
    """

    count: int
    complete: bool
    elapsed: float
    steps: int = 0

    def __int__(self) -> int:
        return self.count


class BudgetExceeded(Exception):
    """Internal signal: wall-clock or count budget exhausted."""


# A constraint of an unassigned query vertex u against an assigned vertex:
# (assigned query vertex, direction, edge label, edge index).
_Constraint = Tuple[int, str, int, int]


class HomomorphismCounter:
    """Counts homomorphic embeddings of a query in a data graph."""

    def __init__(
        self,
        graph: Graph,
        query: QueryGraph,
        edge_candidates: Optional[Dict[int, Set[Tuple[int, int]]]] = None,
        vertex_filters: Optional[Dict[int, "VertexFilter"]] = None,
        use_bitsets: Optional[bool] = None,
    ) -> None:
        """``edge_candidates`` optionally restricts which data edge may match
        a given query edge (keyed by index into ``query.edges``);
        ``vertex_filters`` optionally restricts which data vertex may match a
        query vertex (keyed by query vertex, value is a predicate).
        ``use_bitsets`` toggles the sealed substrate's adjacency-bitset
        intersection kernel (default: on whenever the graph provides it)."""
        self.graph = graph
        self.query = query
        self.edge_candidates = edge_candidates or {}
        self.vertex_filters = vertex_filters or {}
        self._order = self._matching_order()
        self._deadline = 0.0
        self._cap = 0
        self._count = 0
        self._steps = 0
        # sealed graphs expose memoized neighbor/label frozensets, which
        # turns the per-candidate constraint probes into plain set
        # membership; the dict-backed path below stays untouched
        self._sealed = bool(getattr(graph, "sealed", False))
        bits_available = self._sealed and hasattr(graph, "out_neighbor_bits")
        if use_bitsets is None:
            self._bitsets = bits_available
        else:
            self._bitsets = bool(use_bitsets) and bits_available
        if self._sealed:
            # per-query-vertex incidence lists in edge-index order, so the
            # search filters O(deg_q(u)) entries instead of scanning every
            # query edge at every search node
            incident: List[List[_Constraint]] = [
                [] for _ in range(query.num_vertices)
            ]
            for idx, (a, b, label) in enumerate(query.edges):
                if a == b:
                    incident[a].append((a, "out", label, idx))
                else:
                    incident[a].append((b, "out", label, idx))
                    incident[b].append((a, "in", label, idx))
            self._incident = incident
            # per-query-vertex label member set: one C membership test per
            # candidate instead of a frozenset subset comparison
            self._ulabel_sets: List[Optional[FrozenSet[int]]] = [
                graph.labels_member_set(query.vertex_labels[u])
                if query.vertex_labels[u]
                else None
                for u in range(query.num_vertices)
            ]
            # suffix independence, precomputed once per matching order:
            # _suffix_independent[d] <=> the vertices of order[d:] are
            # pairwise non-adjacent in the query (the leaf-product guard,
            # which the generic path rediscovers at every search node)
            order = self._order
            n = len(order)
            suffix = [False] * (n + 1)
            suffix[n] = True
            later: Set[int] = set()
            for d in range(n - 1, -1, -1):
                # order[d] joins the set before the check so a self loop
                # (u adjacent to itself) blocks independence, exactly as
                # the generic scan's u-in-remaining_set membership does
                later.add(order[d])
                suffix[d] = suffix[d + 1] and not (
                    query.neighbors(order[d]) & later
                )
            self._suffix_independent = suffix
            # candidate memos live *inside* each plan (reset per count()
            # run): keyed by the anchor values of the plan's constraints —
            # sibling subtrees that agree on those anchors reuse the list.
            # Single-anchor plans key on the bare int, which skips a tuple
            # allocation per probe on the search's hottest path.
            # separator per depth: the assigned query vertices with at
            # least one query edge into order[d:].  A subtree's completion
            # count depends only on the data vertices bound to the
            # separator, which is what makes subtree counts memoizable
            seps: List[Tuple[int, ...]] = []
            for d in range(n + 1):
                later_set = set(order[d:])
                seps.append(
                    tuple(
                        x
                        for x in order[:d]
                        if query.neighbors(x) & later_set
                    )
                )
            self._separators = seps
            self._count_memo: Dict[object, int] = {}
            # candidate *plans*, precomputed per search context: which of
            # u's edges are anchored is a function of the (fixed) matching
            # order alone, so the per-node incident scan of the generic
            # path collapses into tuple lookups.  Two contexts that anchor
            # the same edges share one plan — and hence one memo keyspace.
            self._plan_registry: Dict[tuple, tuple] = {}
            self._depth_plans = [
                self._make_plan(order[d], set(order[:d])) for d in range(n)
            ]
            # leaf-product context: suffix independence means every
            # non-self edge of order[d] is anchored when the product fires
            all_vertices = set(range(query.num_vertices))
            self._leaf_plans = [
                self._make_plan(order[d], all_vertices - {order[d]})
                for d in range(n)
            ]
            # per-depth execution table: everything the hot recursion
            # needs at one depth in a single tuple fetch — the per-node
            # constant work (order/plan/separator lookups, separator
            # sizing, the suffix-independence probe) happens once here
            # instead of at every one of the millions of search nodes.
            # ``None`` is the depth == n sentinel; a ``None`` separator
            # means subtree counts at this depth are not memoizable.
            self._depth_exec: List[Optional[tuple]] = []
            for d in range(n):
                plan = self._depth_plans[d]
                sep = seps[d] if len(seps[d]) < d else None
                self._depth_exec.append((
                    order[d],
                    plan,
                    sep,
                    d > 0 and suffix[d],
                    # one-element separators key the count memo on a bare
                    # (depth, value) pair instead of a built tuple
                    sep[0] if sep is not None and len(sep) == 1 else None,
                    plan[9],   # plan-local candidate memo
                    plan[11],  # sole anchor (int-keyed memo) or None
                    self._fast_candidates(plan),
                ))
            self._depth_exec.append(None)
            # leaf-product twin of the table:
            # (plan, count memo, anchor, inline count fast path)
            self._leaf_exec = [
                (p, p[10], p[11], self._fast_count(p))
                for p in self._leaf_plans
            ]

    #: cap on memoized candidate lists per count() run (backstop against
    #: pathological query shapes; typical runs stay far below it)
    _MEMO_MAX = 1 << 18

    @staticmethod
    def _fast_candidates(plan: tuple) -> Optional[tuple]:
        """Inline candidate shortcut for single-anchor single-constraint plans.

        Returns ``(view_fn, label, filtered_fn, ulabels, label_set)`` when
        the plan's candidate pipeline reduces to one adjacency view plus at
        most a vertex-label filter — the overwhelmingly common node shape —
        so the search loop resolves a memo miss without calling (and
        re-unpacking the plan inside) :meth:`_plan_candidates`.  The
        produced lists are identical, element for element, to that method's.
        """
        (_key_id, others, getters, extras, label_set, vfilter, _static, _u,
         _label_bits, _memo, _cmemo, anchor, ulabels) = plan
        if anchor is None or len(getters) != 1 or vfilter is not None or extras:
            return None
        view_fn, _set_fn, _bits_fn, label, filt_fn = getters[0]
        return (view_fn, label, filt_fn, ulabels, label_set)

    @staticmethod
    def _fast_count(plan: tuple) -> Optional[tuple]:
        """Inline count shortcut: ``(view_fn, label)`` or None.

        Valid only for unlabeled single-constraint plans, where the
        candidate count is the length of one adjacency view — the same
        number every :meth:`_plan_count` branch computes for this shape,
        in either bitset mode.
        """
        (_key_id, others, getters, extras, label_set, vfilter, _static, _u,
         _label_bits, _memo, _cmemo, anchor, _ulabels) = plan
        if (
            anchor is None
            or len(getters) != 1
            or vfilter is not None
            or extras
            or label_set is not None
        ):
            return None
        view_fn, _set_fn, _bits_fn, label, _filt_fn = getters[0]
        return (view_fn, label)

    def _make_plan(self, u: int, assigned: Set[int]) -> tuple:
        """Candidate plan for matching ``u`` with ``assigned`` bound.

        A plan freezes everything about candidate generation that does not
        depend on the *data* vertices: the anchored constraints (edges
        from ``u`` into ``assigned``), the pre-bound adjacency accessors
        for each, the per-candidate extra checks (self loops and
        per-edge candidate restrictions), the label member set and the
        vertex filter.  Plans with identical content are interned so
        different search contexts share one candidate-memo keyspace.
        """
        entries: List[_Constraint] = []
        extras: List[_Constraint] = []
        for entry in self._incident[u]:
            other = entry[0]
            if other == u:
                extras.append(entry)
                continue
            if other not in assigned:
                continue
            entries.append(entry)
            if entry[3] in self.edge_candidates:
                extras.append(entry)
        signature = (u, tuple(entries), tuple(extras))
        plan = self._plan_registry.get(signature)
        if plan is None:
            graph = self.graph
            in_bits = getattr(graph, "in_neighbor_bits", None)
            out_bits = getattr(graph, "out_neighbor_bits", None)
            # bind the CSR direction objects' accessors directly when the
            # graph exposes them: the per-call graph wrapper frame is pure
            # overhead on the matcher's hottest call site
            rev = getattr(graph, "_rev", None)
            fwd = getattr(graph, "_fwd", None)
            in_view = graph.in_neighbors if rev is None else rev.neighbors
            out_view = graph.out_neighbors if fwd is None else fwd.neighbors
            in_filt = getattr(graph, "in_neighbors_labeled", None)
            out_filt = getattr(graph, "out_neighbors_labeled", None)
            getters = tuple(
                # u --label--> other: candidates come from the anchor's
                # in-adjacency; other --label--> u: from its out-adjacency
                (in_view, graph.in_neighbor_set, in_bits, label, in_filt)
                if direction == "out"
                else (out_view, graph.out_neighbor_set, out_bits, label,
                      out_filt)
                for _other, direction, label, _idx in entries
            )
            label_set = self._ulabel_sets[u]
            label_bits = (
                graph.labels_member_bits(self.query.vertex_labels[u])
                if self._bitsets and label_set is not None
                else None
            )
            others = tuple(entry[0] for entry in entries)
            plan = (
                len(self._plan_registry),  # memo keyspace id
                others,  # anchor vertices
                getters,
                tuple(extras),
                label_set,
                self.vertex_filters.get(u),
                [None],  # lazily computed constant list (anchor-free plans)
                u,
                label_bits,
                {},  # plan-local candidate memo (int key for 1 anchor)
                {},  # plan-local candidate-*count* memo (leaf product)
                others[0] if len(others) == 1 else None,  # sole anchor
                frozenset(self.query.vertex_labels[u])
                if label_set is not None
                else None,  # u's label set, for graph-level filtered views
            )
            self._plan_registry[signature] = plan
        return plan

    # ------------------------------------------------------------------
    def count(
        self,
        time_limit: Optional[float] = None,
        max_count: Optional[int] = None,
    ) -> MatchResult:
        """Count embeddings, stopping early at a time or count budget."""
        start = time.monotonic()
        self._deadline = start + time_limit if time_limit else float("inf")
        self._cap = max_count if max_count else 1 << 62
        self._count = 0
        self._steps = 0
        if self._sealed:
            self._count_memo = {}
            for plan in self._plan_registry.values():
                plan[9].clear()
                plan[10].clear()
            native = self._native_result()
            if native is not None:
                self._count, self._steps, complete = native
                return MatchResult(
                    self._count,
                    complete,
                    time.monotonic() - start,
                    self._steps,
                )
        assignment: Dict[int, int] = {}
        complete = True
        try:
            if self._sealed:
                self._search_sealed(0, assignment)
            else:
                self._search(0, assignment)
        except BudgetExceeded:
            complete = False
        return MatchResult(
            self._count, complete, time.monotonic() - start, self._steps
        )

    def _native_result(self) -> Optional[tuple]:
        """``(count, steps, complete)`` from the native search kernel.

        Engages only on the ``c`` kernel backend, and only for counter
        shapes the C transliteration replicates bit-for-bit (bitset-mode
        sealed search, no edge restrictions / vertex filters / self
        loops — see :func:`repro.kernels.native_match.build_native_matcher`).
        None means "run the Python loop" — including on a native
        allocation failure mid-search, which is sound because all memo
        state is per-:meth:`count`-run.
        """
        from ..kernels import backend as _kbackend

        lib = _kbackend.get_native()
        if lib is None:
            return None
        runner = getattr(self, "_native_runner", None)
        if runner is None:
            from ..kernels import native_match

            runner = native_match.build_native_matcher(self, lib)
            self._native_runner = runner if runner is not None else False
        if not runner:
            return None
        return runner(self._deadline, self._cap)

    # ------------------------------------------------------------------
    def _matching_order(self) -> List[int]:
        """Selective-first, connectivity-respecting vertex order."""
        query, graph = self.query, self.graph

        def selectivity(u: int) -> Tuple[int, int]:
            labels = query.vertex_labels[u]
            if labels:
                cand = min(
                    len(graph.vertices_with_label(l)) for l in labels
                )
            else:
                cand = graph.num_vertices
            return (cand, -query.degree(u))

        remaining = set(range(query.num_vertices))
        order: List[int] = []
        while remaining:
            frontier = {
                u
                for u in remaining
                if any(v in set(order) for v in query.neighbors(u))
            }
            pool = frontier or remaining
            best = min(pool, key=selectivity)
            order.append(best)
            remaining.discard(best)
        return order

    def _constraints(self, u: int, assigned: Set[int]) -> List[_Constraint]:
        """Edges between ``u`` and already-assigned vertices (and self loops)."""
        result: List[_Constraint] = []
        for idx, (a, b, label) in enumerate(self.query.edges):
            if a == u and (b in assigned or b == u):
                result.append((b, "out", label, idx))
            elif b == u and a in assigned:
                result.append((a, "in", label, idx))
        return result

    def _plan_candidates(
        self, plan: tuple, assignment: Dict[int, int]
    ) -> Sequence[int]:
        """Sealed-substrate candidate pipeline, driven by a frozen plan.

        Produces exactly the candidates (in the same order) as the generic
        path, but checks each non-anchor constraint with one membership
        test against the graph's memoized neighbor frozensets instead of a
        tuple-allocating ``has_edge`` probe — and **memoizes** the result
        per ``(plan, anchor-values)``.  In a backtracking search, sibling
        subtrees constantly re-derive candidates for vertices whose
        anchors they share (most extremely inside the leaf product), so
        the memo collapses those recomputations into dict hits.  It is
        sound because the graph is immutable and the filters are fixed for
        the counter's lifetime; it is reset at every :meth:`count` call.
        """
        (_key_id, others, getters, extras, label_set, vfilter, static, u,
         label_bits, memo, _cmemo, anchor, ulabels) = plan
        if not others:
            # no anchored edges: the candidate list is a run constant
            result = static[0]
            if result is None:
                if label_set is not None:
                    result = self.graph.label_members(
                        self.query.vertex_labels[u]
                    )
                else:
                    result = self.graph.vertices()
                if vfilter is not None:
                    result = [v for v in result if vfilter(v)]
                if extras:
                    result = [
                        v
                        for v in result
                        if self._extra_ok(v, u, assignment, extras)
                    ]
                static[0] = result
            return result
        if anchor is not None:
            key: object = assignment[anchor]
            values: tuple = (key,)
        else:
            values = tuple([assignment[o] for o in others])
            key = values
        result = memo.get(key)
        if result is not None:
            return result
        if (
            self._bitsets
            and vfilter is None
            and not extras
            and len(getters) > 1
        ):
            # bitset kernel: every constraint (anchored adjacency + label
            # membership) is a precomputed bitset, so the whole filter
            # pipeline is a chain of C-speed big-int ANDs.  Intersecting
            # sparsest-first (by popcount) shrinks the working set as
            # early as possible — the bitset analog of the generic path's
            # smallest-adjacency-list selection.  Single-constraint nodes
            # stay on the list path: filtering a short cached tuple beats
            # an AND + decode over |V|-bit integers.
            blist = [g[2](val, g[3]) for g, val in zip(getters, values)]
            if label_bits is not None:
                blist.append(label_bits)
            if len(blist) > 1:
                blist.sort(key=int.bit_count)
            bits = blist[0]
            for b in blist[1:]:
                if not bits:
                    break
                bits &= b
            result = self._bits_to_vertices(bits)
        elif len(getters) == 1:
            view_fn, _set_fn, _bits_fn, label, filt_fn = getters[0]
            if label_set is None:
                result = view_fn(values[0], label)
            elif filt_fn is not None:
                # graph-level filtered adjacency: cached across counters,
                # so repeated queries over one graph share the filter work
                result = filt_fn(values[0], label, ulabels)
            else:
                result = [
                    v for v in view_fn(values[0], label) if v in label_set
                ]
        else:
            views = [g[0](val, g[3]) for g, val in zip(getters, values)]
            best = min(range(len(views)), key=lambda i: len(views[i]))
            result = views[best]
            for i, g in enumerate(getters):
                if i != best:
                    s = g[1](values[i], g[3])
                    result = [v for v in result if v in s]
            if label_set is not None:
                result = [v for v in result if v in label_set]
        if vfilter is not None:
            result = [v for v in result if vfilter(v)]
        if extras:
            result = [
                v for v in result if self._extra_ok(v, u, assignment, extras)
            ]
        if len(memo) < self._MEMO_MAX:
            memo[key] = result
        return result

    def _bits_to_vertices(self, bits: int) -> List[int]:
        """Decode a bitset into the ascending list of set-bit positions.

        Routed through the kernel layer: dense results decode via one
        vectorized unpack, sparse ones via the bit-twiddling loop — the
        outputs are identical element for element.
        """
        return _kops.bits_to_list(bits, self.graph.num_vertices)

    def _plan_count(self, plan: tuple, assignment: Dict[int, int]) -> int:
        """Candidate *count* for a plan — the leaf product's only need.

        With the bitset kernel the count is ``bit_count()`` of the ANDed
        constraint bitsets: no candidate list is ever materialized, which
        is where the leaf product spends most of its time on star-shaped
        queries.  Falls back to ``len(_plan_candidates(...))`` whenever
        the bitset preconditions fail, so counts are always identical.
        """
        (_key_id, others, getters, extras, label_set, vfilter, _static, _u,
         label_bits, _memo, cmemo, anchor, _ulabels) = plan
        if not others or vfilter is not None or extras:
            # static / filtered / extra-checked plans: counts come from
            # the (memoized) candidate list itself
            return len(self._plan_candidates(plan, assignment))
        if anchor is not None:
            key: object = assignment[anchor]
            values: tuple = (key,)
        else:
            values = tuple([assignment[o] for o in others])
            key = values
        cached = cmemo.get(key)
        if cached is not None:
            return cached
        if not self._bitsets:
            count = len(self._plan_candidates(plan, assignment))
        elif label_bits is None and len(getters) == 1:
            # single anchored view, no label filter: the segment length
            g = getters[0]
            count = len(g[0](values[0], g[3]))
        else:
            blist = [g[2](val, g[3]) for g, val in zip(getters, values)]
            if label_bits is not None:
                blist.append(label_bits)
            if len(blist) > 1:
                blist.sort(key=int.bit_count)
            bits = blist[0]
            for b in blist[1:]:
                if not bits:
                    break
                bits &= b
            count = bits.bit_count()
        if len(cmemo) < self._MEMO_MAX:
            cmemo[key] = count
        return count

    def _extra_ok(
        self,
        v: int,
        u: int,
        assignment: Dict[int, int],
        extra: List[_Constraint],
    ) -> bool:
        """Per-candidate checks the membership pipeline cannot batch."""
        graph = self.graph
        for other, direction, label, idx in extra:
            anchor = v if other == u else assignment[other]
            if direction == "out":
                src, dst = v, anchor
            else:
                src, dst = anchor, v
            # self loops never contributed an adjacency segment, so the
            # edge's existence is still unverified here
            if other == u and not graph.has_edge(src, dst, label):
                return False
            allowed = self.edge_candidates.get(idx)
            if allowed is not None and (src, dst) not in allowed:
                return False
        return True

    def _candidates(
        self, u: int, assignment: Dict[int, int]
    ) -> Optional[List[int]]:
        """Data vertices that can match ``u`` given the partial assignment.

        Returns None when the candidate set is the whole vertex set (only
        possible for an unconstrained wildcard vertex).
        """
        graph, query = self.graph, self.query
        constraints = self._constraints(u, set(assignment))
        labels = query.vertex_labels[u]

        adjacency_lists: List[Sequence[int]] = []
        pair_checks: List[Tuple[str, int, int, int]] = []
        for other, direction, label, idx in constraints:
            if other == u:  # self loop: defer to the filter stage
                pair_checks.append((direction, label, idx, -1))
                continue
            anchor = assignment[other]
            if direction == "out":  # u --label--> other
                adjacency_lists.append(graph.in_neighbors(anchor, label))
            else:  # other --label--> u
                adjacency_lists.append(graph.out_neighbors(anchor, label))

        if not adjacency_lists:
            if labels:
                base: Sequence[int] = graph.vertices_with_labels(labels)
            else:
                base = graph.vertices()
            candidates = [
                v for v in base if self._vertex_ok(v, u, assignment, constraints)
            ]
            return candidates

        adjacency_lists.sort(key=len)
        candidates = [
            v
            for v in adjacency_lists[0]
            if self._vertex_ok(v, u, assignment, constraints)
        ]
        return candidates

    def _vertex_ok(
        self,
        v: int,
        u: int,
        assignment: Dict[int, int],
        constraints: List[_Constraint],
    ) -> bool:
        """Full check of labels and all constraint edges for ``u -> v``."""
        graph = self.graph
        labels = self.query.vertex_labels[u]
        if labels and not labels <= graph.vertex_labels(v):
            return False
        vertex_filter = self.vertex_filters.get(u)
        if vertex_filter is not None and not vertex_filter(v):
            return False
        for other, direction, label, idx in constraints:
            anchor = v if other == u else assignment[other]
            if direction == "out":
                src, dst = v, anchor
            else:
                src, dst = anchor, v
            if not graph.has_edge(src, dst, label):
                return False
            allowed = self.edge_candidates.get(idx)
            if allowed is not None and (src, dst) not in allowed:
                return False
        return True

    def _leaf_product(
        self, depth: int, assignment: Dict[int, int]
    ) -> Optional[int]:
        """Product shortcut when all remaining vertices are independent."""
        remaining_set = set(self._order[depth:])
        for u in remaining_set:
            if self.query.neighbors(u) & remaining_set:
                return None
        product = 1
        for u in self._order[depth:]:
            candidates = self._candidates(u, assignment)
            product *= len(candidates)
            if product == 0:
                return 0
        return product

    def _leaf_product_sealed(
        self, depth: int, assignment: Dict[int, int]
    ) -> Optional[int]:
        """Sealed leaf product: precomputed independence, frozen plans."""
        if not self._suffix_independent[depth]:
            return None
        product = 1
        plans = self._leaf_plans
        for d in range(depth, len(plans)):
            product *= self._plan_count(plans[d], assignment)
            if product == 0:
                return 0
        return product

    def _search(self, depth: int, assignment: Dict[int, int]) -> None:
        self._steps += 1
        if time.monotonic() > self._deadline:
            raise BudgetExceeded
        if depth == len(self._order):
            self._count += 1
            if self._count >= self._cap:
                raise BudgetExceeded
            return
        if depth > 0:
            product = self._leaf_product(depth, assignment)
            if product is not None:
                self._count += product
                if self._count >= self._cap:
                    self._count = self._cap
                    raise BudgetExceeded
                return
        u = self._order[depth]
        for v in self._candidates(u, assignment):
            assignment[u] = v
            self._search(depth + 1, assignment)
            del assignment[u]

    def _search_sealed(self, depth: int, assignment: Dict[int, int]) -> int:
        """Sealed-substrate search: memoized subtree completion counts.

        The number of completions below ``depth`` is a function of the
        data vertices bound to that depth's separator only, so sibling
        subtrees that agree on the separator contribute a dict hit
        instead of a re-search.  Sound because the graph, the filters and
        the edge restrictions are all fixed for the counter's lifetime;
        a budget abort propagates *past* the memo store, so only fully
        explored subtrees are ever cached.  Complete-run counts are
        identical to the generic path's; capped runs clamp to the cap
        exactly as the leaf product always has.

        Implemented as an explicit-stack loop rather than recursion: the
        search visits one node per candidate binding (hundreds of
        thousands per query), and holding the counters, budget and memo
        tables in locals while replacing call frames with a small list
        per *in-progress* node removes the dominant constant cost of the
        sealed matcher.  Node visitation order — and therefore ``steps``
        and every count — is exactly the recursion's.
        """
        steps = self._steps
        count = self._count
        cap = self._cap
        deadline = self._deadline
        monotonic = time.monotonic
        count_memo = self._count_memo
        depth_exec = self._depth_exec
        leaf_exec = self._leaf_exec
        nleaf = len(leaf_exec)
        plan_candidates = self._plan_candidates
        plan_count = self._plan_count
        memo_max = self._MEMO_MAX
        # frames of in-progress nodes: [u, memo key or None, candidate
        # sequence, next candidate index, accumulated total]; `ret`
        # carries a finished subtree's count up.  Indexing the candidate
        # sequence directly drops the iterator protocol's per-candidate
        # builtin calls from the hottest loop in the matcher.
        stack: List[list] = []
        ret: Optional[int] = None
        try:
            while True:
                if ret is None:
                    # enter the node at `depth`
                    steps += 1
                    # the deadline is a wall-clock budget over searches
                    # that run for seconds; probing the clock every 64
                    # nodes keeps the granularity far below any
                    # meaningful budget while dropping a syscall from
                    # the per-node fast path
                    if (steps & 63) == 0 and monotonic() > deadline:
                        raise BudgetExceeded
                    entry = depth_exec[depth]
                    if entry is None:  # depth == n: one complete embedding
                        count += 1
                        if count >= cap:
                            raise BudgetExceeded
                        ret = 1
                        continue
                    (u, plan, separator, leaf_ok, sep_single, cand_memo,
                     anchor, fast) = entry
                    if separator is not None:  # memoizable subtree
                        if sep_single is not None:
                            key: Optional[tuple] = (
                                depth, assignment[sep_single]
                            )
                        else:
                            key = (depth,) + tuple(
                                [assignment[x] for x in separator]
                            )
                        ret = count_memo.get(key)
                        if ret is not None:
                            count += ret
                            if count >= cap:
                                count = cap
                                raise BudgetExceeded
                            continue
                    else:
                        key = None
                    if leaf_ok:
                        # suffix independence (precomputed): completions
                        # below here are the product of independent
                        # candidate counts
                        product = 1
                        for d in range(depth, nleaf):
                            lplan, cmemo, lanchor, cfast = leaf_exec[d]
                            if lanchor is not None:
                                lkey = assignment[lanchor]
                                c = cmemo.get(lkey)
                                if c is None:
                                    if cfast is not None:
                                        # single label-constrained view:
                                        # count is the view length, no
                                        # call into _plan_count
                                        c = len(cfast[0](lkey, cfast[1]))
                                        if len(cmemo) < memo_max:
                                            cmemo[lkey] = c
                                    else:
                                        c = plan_count(lplan, assignment)
                            else:
                                c = plan_count(lplan, assignment)
                            product *= c
                            if product == 0:
                                break
                        count += product
                        if count >= cap:
                            count = cap
                            raise BudgetExceeded
                        if key is not None and len(count_memo) < memo_max:
                            count_memo[key] = product
                        ret = product
                        continue
                    # inline memo probe: single-anchor plans resolve
                    # their candidate list with one int-keyed dict hit,
                    # no call into _plan_candidates
                    if anchor is not None:
                        akey = assignment[anchor]
                        candidates = cand_memo.get(akey)
                        if candidates is None:
                            if fast is not None:
                                # single-constraint plan: build the list
                                # inline from the adjacency view instead
                                # of calling _plan_candidates
                                view_fn, label, filt_fn, ulabels, lset = fast
                                if lset is None:
                                    candidates = view_fn(akey, label)
                                elif filt_fn is not None:
                                    candidates = filt_fn(akey, label, ulabels)
                                else:
                                    candidates = [
                                        v for v in view_fn(akey, label)
                                        if v in lset
                                    ]
                                if len(cand_memo) < memo_max:
                                    cand_memo[akey] = candidates
                            else:
                                candidates = plan_candidates(plan, assignment)
                    else:
                        candidates = plan_candidates(plan, assignment)
                    if not candidates:  # no candidates: empty subtree
                        if key is not None and len(count_memo) < memo_max:
                            count_memo[key] = 0
                        ret = 0
                        continue
                    assignment[u] = candidates[0]
                    stack.append([u, key, candidates, 1, 0])
                    depth += 1
                    continue
                # a subtree finished with `ret` completions: resume the
                # innermost in-progress node
                if not stack:
                    return ret
                frame = stack[-1]
                frame[4] += ret
                u = frame[0]
                candidates = frame[2]
                i = frame[3]
                if i < len(candidates):  # next sibling binding, same depth
                    assignment[u] = candidates[i]
                    frame[3] = i + 1
                    ret = None
                    continue
                del assignment[u]
                stack.pop()
                total = frame[4]
                key = frame[1]
                if key is not None and len(count_memo) < memo_max:
                    count_memo[key] = total
                ret = total
                depth -= 1
        finally:
            # locals carry the counters through the loop; write them back
            # on every exit (including a budget abort mid-search)
            self._steps = steps
            self._count = count


def count_embeddings(
    graph: Graph,
    query: QueryGraph,
    time_limit: Optional[float] = None,
    max_count: Optional[int] = None,
    edge_candidates: Optional[Dict[int, Set[Tuple[int, int]]]] = None,
    vertex_filters: Optional[Dict[int, "VertexFilter"]] = None,
) -> MatchResult:
    """Count homomorphic embeddings of ``query`` in ``graph``.

    Convenience wrapper over :class:`HomomorphismCounter`.
    """
    counter = HomomorphismCounter(graph, query, edge_candidates, vertex_filters)
    return counter.count(time_limit=time_limit, max_count=max_count)

"""Exact subgraph matching by graph homomorphism.

The paper defines subgraph matching via graph homomorphism (Section 2):
an embedding maps query vertices to data vertices such that vertex labels
are contained, and every query edge maps to a data edge with the same label.
Homomorphisms are *not* required to be injective.

This module provides the ground-truth cardinality counter used to compute
true cardinalities for q-error evaluation, and is reused by estimators that
execute (sub)queries over restricted data (CorrelatedSampling counts the
join over its samples; SumRDF matches the query against its summary graph).

The counter is a backtracking search with:

* a matching order that starts from the most selective query vertex and
  grows along query edges (so every subsequent vertex is constrained by at
  least one assigned neighbor when the query is connected),
* candidate generation from the smallest adjacency list,
* a *leaf product* shortcut: when all remaining query vertices are mutually
  non-adjacent and fully constrained by assigned vertices, the number of
  completions is the product of their candidate counts,
* optional per-query-edge candidate restrictions, a wall-clock budget and a
  count cap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.digraph import Graph
from ..graph.query import QueryGraph

try:  # typing helper for vertex filter predicates
    from typing import Callable

    VertexFilter = Callable[[int], bool]
except ImportError:  # pragma: no cover
    pass


@dataclass
class MatchResult:
    """Outcome of a counting run.

    ``complete`` is False when the run stopped early (timeout or count cap);
    ``count`` is then a lower bound on the true cardinality.  ``steps``
    counts backtracking search nodes (calls of the recursive search) —
    the matcher's work metric, surfaced by the observability layer as
    the ``match.backtrack_steps`` counter.
    """

    count: int
    complete: bool
    elapsed: float
    steps: int = 0

    def __int__(self) -> int:
        return self.count


class BudgetExceeded(Exception):
    """Internal signal: wall-clock or count budget exhausted."""


# A constraint of an unassigned query vertex u against an assigned vertex:
# (assigned query vertex, direction, edge label, edge index).
_Constraint = Tuple[int, str, int, int]


class HomomorphismCounter:
    """Counts homomorphic embeddings of a query in a data graph."""

    def __init__(
        self,
        graph: Graph,
        query: QueryGraph,
        edge_candidates: Optional[Dict[int, Set[Tuple[int, int]]]] = None,
        vertex_filters: Optional[Dict[int, "VertexFilter"]] = None,
    ) -> None:
        """``edge_candidates`` optionally restricts which data edge may match
        a given query edge (keyed by index into ``query.edges``);
        ``vertex_filters`` optionally restricts which data vertex may match a
        query vertex (keyed by query vertex, value is a predicate)."""
        self.graph = graph
        self.query = query
        self.edge_candidates = edge_candidates or {}
        self.vertex_filters = vertex_filters or {}
        self._order = self._matching_order()
        self._deadline = 0.0
        self._cap = 0
        self._count = 0
        self._steps = 0
        # sealed graphs expose memoized neighbor/label frozensets, which
        # turns the per-candidate constraint probes into plain set
        # membership; the dict-backed path below stays untouched
        self._sealed = bool(getattr(graph, "sealed", False))
        if self._sealed:
            # per-query-vertex incidence lists in edge-index order, so the
            # search filters O(deg_q(u)) entries instead of scanning every
            # query edge at every search node
            incident: List[List[_Constraint]] = [
                [] for _ in range(query.num_vertices)
            ]
            for idx, (a, b, label) in enumerate(query.edges):
                if a == b:
                    incident[a].append((a, "out", label, idx))
                else:
                    incident[a].append((b, "out", label, idx))
                    incident[b].append((a, "in", label, idx))
            self._incident = incident
            # per-query-vertex label member set: one C membership test per
            # candidate instead of a frozenset subset comparison
            self._ulabel_sets: List[Optional[FrozenSet[int]]] = [
                graph.labels_member_set(query.vertex_labels[u])
                if query.vertex_labels[u]
                else None
                for u in range(query.num_vertices)
            ]
            # suffix independence, precomputed once per matching order:
            # _suffix_independent[d] <=> the vertices of order[d:] are
            # pairwise non-adjacent in the query (the leaf-product guard,
            # which the generic path rediscovers at every search node)
            order = self._order
            n = len(order)
            suffix = [False] * (n + 1)
            suffix[n] = True
            later: Set[int] = set()
            for d in range(n - 1, -1, -1):
                # order[d] joins the set before the check so a self loop
                # (u adjacent to itself) blocks independence, exactly as
                # the generic scan's u-in-remaining_set membership does
                later.add(order[d])
                suffix[d] = suffix[d + 1] and not (
                    query.neighbors(order[d]) & later
                )
            self._suffix_independent = suffix
            # candidate memo, reset per count() run: keyed by the query
            # vertex and the anchor values of its active constraints —
            # sibling subtrees that agree on those anchors reuse the list
            self._memo: Dict[tuple, List[int]] = {}
            # separator per depth: the assigned query vertices with at
            # least one query edge into order[d:].  A subtree's completion
            # count depends only on the data vertices bound to the
            # separator, which is what makes subtree counts memoizable
            seps: List[Tuple[int, ...]] = []
            for d in range(n + 1):
                later_set = set(order[d:])
                seps.append(
                    tuple(
                        x
                        for x in order[:d]
                        if query.neighbors(x) & later_set
                    )
                )
            self._separators = seps
            self._count_memo: Dict[tuple, int] = {}
            # candidate *plans*, precomputed per search context: which of
            # u's edges are anchored is a function of the (fixed) matching
            # order alone, so the per-node incident scan of the generic
            # path collapses into tuple lookups.  Two contexts that anchor
            # the same edges share one plan — and hence one memo keyspace.
            self._plan_registry: Dict[tuple, tuple] = {}
            self._depth_plans = [
                self._make_plan(order[d], set(order[:d])) for d in range(n)
            ]
            # leaf-product context: suffix independence means every
            # non-self edge of order[d] is anchored when the product fires
            all_vertices = set(range(query.num_vertices))
            self._leaf_plans = [
                self._make_plan(order[d], all_vertices - {order[d]})
                for d in range(n)
            ]

    #: cap on memoized candidate lists per count() run (backstop against
    #: pathological query shapes; typical runs stay far below it)
    _MEMO_MAX = 1 << 18

    def _make_plan(self, u: int, assigned: Set[int]) -> tuple:
        """Candidate plan for matching ``u`` with ``assigned`` bound.

        A plan freezes everything about candidate generation that does not
        depend on the *data* vertices: the anchored constraints (edges
        from ``u`` into ``assigned``), the pre-bound adjacency accessors
        for each, the per-candidate extra checks (self loops and
        per-edge candidate restrictions), the label member set and the
        vertex filter.  Plans with identical content are interned so
        different search contexts share one candidate-memo keyspace.
        """
        entries: List[_Constraint] = []
        extras: List[_Constraint] = []
        for entry in self._incident[u]:
            other = entry[0]
            if other == u:
                extras.append(entry)
                continue
            if other not in assigned:
                continue
            entries.append(entry)
            if entry[3] in self.edge_candidates:
                extras.append(entry)
        signature = (u, tuple(entries), tuple(extras))
        plan = self._plan_registry.get(signature)
        if plan is None:
            graph = self.graph
            getters = tuple(
                # u --label--> other: candidates come from the anchor's
                # in-adjacency; other --label--> u: from its out-adjacency
                (graph.in_neighbors, graph.in_neighbor_set, label)
                if direction == "out"
                else (graph.out_neighbors, graph.out_neighbor_set, label)
                for _other, direction, label, _idx in entries
            )
            plan = (
                len(self._plan_registry),  # memo keyspace id
                tuple(entry[0] for entry in entries),  # anchor vertices
                getters,
                tuple(extras),
                self._ulabel_sets[u],
                self.vertex_filters.get(u),
                [None],  # lazily computed constant list (anchor-free plans)
                u,
            )
            self._plan_registry[signature] = plan
        return plan

    # ------------------------------------------------------------------
    def count(
        self,
        time_limit: Optional[float] = None,
        max_count: Optional[int] = None,
    ) -> MatchResult:
        """Count embeddings, stopping early at a time or count budget."""
        start = time.monotonic()
        self._deadline = start + time_limit if time_limit else float("inf")
        self._cap = max_count if max_count else 1 << 62
        self._count = 0
        self._steps = 0
        if self._sealed:
            self._memo = {}
            self._count_memo = {}
        assignment: Dict[int, int] = {}
        complete = True
        try:
            if self._sealed:
                self._search_sealed(0, assignment)
            else:
                self._search(0, assignment)
        except BudgetExceeded:
            complete = False
        return MatchResult(
            self._count, complete, time.monotonic() - start, self._steps
        )

    # ------------------------------------------------------------------
    def _matching_order(self) -> List[int]:
        """Selective-first, connectivity-respecting vertex order."""
        query, graph = self.query, self.graph

        def selectivity(u: int) -> Tuple[int, int]:
            labels = query.vertex_labels[u]
            if labels:
                cand = min(
                    len(graph.vertices_with_label(l)) for l in labels
                )
            else:
                cand = graph.num_vertices
            return (cand, -query.degree(u))

        remaining = set(range(query.num_vertices))
        order: List[int] = []
        while remaining:
            frontier = {
                u
                for u in remaining
                if any(v in set(order) for v in query.neighbors(u))
            }
            pool = frontier or remaining
            best = min(pool, key=selectivity)
            order.append(best)
            remaining.discard(best)
        return order

    def _constraints(self, u: int, assigned: Set[int]) -> List[_Constraint]:
        """Edges between ``u`` and already-assigned vertices (and self loops)."""
        result: List[_Constraint] = []
        for idx, (a, b, label) in enumerate(self.query.edges):
            if a == u and (b in assigned or b == u):
                result.append((b, "out", label, idx))
            elif b == u and a in assigned:
                result.append((a, "in", label, idx))
        return result

    def _plan_candidates(
        self, plan: tuple, assignment: Dict[int, int]
    ) -> Sequence[int]:
        """Sealed-substrate candidate pipeline, driven by a frozen plan.

        Produces exactly the candidates (in the same order) as the generic
        path, but checks each non-anchor constraint with one membership
        test against the graph's memoized neighbor frozensets instead of a
        tuple-allocating ``has_edge`` probe — and **memoizes** the result
        per ``(plan, anchor-values)``.  In a backtracking search, sibling
        subtrees constantly re-derive candidates for vertices whose
        anchors they share (most extremely inside the leaf product), so
        the memo collapses those recomputations into dict hits.  It is
        sound because the graph is immutable and the filters are fixed for
        the counter's lifetime; it is reset at every :meth:`count` call.
        """
        key_id, others, getters, extras, label_set, vfilter, static, u = plan
        if not others:
            # no anchored edges: the candidate list is a run constant
            result = static[0]
            if result is None:
                if label_set is not None:
                    result = self.graph.label_members(
                        self.query.vertex_labels[u]
                    )
                else:
                    result = self.graph.vertices()
                if vfilter is not None:
                    result = [v for v in result if vfilter(v)]
                if extras:
                    result = [
                        v
                        for v in result
                        if self._extra_ok(v, u, assignment, extras)
                    ]
                static[0] = result
            return result
        if len(others) == 1:
            values: tuple = (assignment[others[0]],)
        else:
            values = tuple(assignment[o] for o in others)
        key = (key_id,) + values
        memo = self._memo
        result = memo.get(key)
        if result is not None:
            return result
        if len(getters) == 1:
            view_fn, _set_fn, label = getters[0]
            result = view_fn(values[0], label)
            if label_set is not None:
                result = [v for v in result if v in label_set]
        else:
            views = [g[0](val, g[2]) for g, val in zip(getters, values)]
            best = min(range(len(views)), key=lambda i: len(views[i]))
            result = views[best]
            for i, g in enumerate(getters):
                if i != best:
                    s = g[1](values[i], g[2])
                    result = [v for v in result if v in s]
            if label_set is not None:
                result = [v for v in result if v in label_set]
        if vfilter is not None:
            result = [v for v in result if vfilter(v)]
        if extras:
            result = [
                v for v in result if self._extra_ok(v, u, assignment, extras)
            ]
        if len(memo) < self._MEMO_MAX:
            memo[key] = result
        return result

    def _extra_ok(
        self,
        v: int,
        u: int,
        assignment: Dict[int, int],
        extra: List[_Constraint],
    ) -> bool:
        """Per-candidate checks the membership pipeline cannot batch."""
        graph = self.graph
        for other, direction, label, idx in extra:
            anchor = v if other == u else assignment[other]
            if direction == "out":
                src, dst = v, anchor
            else:
                src, dst = anchor, v
            # self loops never contributed an adjacency segment, so the
            # edge's existence is still unverified here
            if other == u and not graph.has_edge(src, dst, label):
                return False
            allowed = self.edge_candidates.get(idx)
            if allowed is not None and (src, dst) not in allowed:
                return False
        return True

    def _candidates(
        self, u: int, assignment: Dict[int, int]
    ) -> Optional[List[int]]:
        """Data vertices that can match ``u`` given the partial assignment.

        Returns None when the candidate set is the whole vertex set (only
        possible for an unconstrained wildcard vertex).
        """
        graph, query = self.graph, self.query
        constraints = self._constraints(u, set(assignment))
        labels = query.vertex_labels[u]

        adjacency_lists: List[Sequence[int]] = []
        pair_checks: List[Tuple[str, int, int, int]] = []
        for other, direction, label, idx in constraints:
            if other == u:  # self loop: defer to the filter stage
                pair_checks.append((direction, label, idx, -1))
                continue
            anchor = assignment[other]
            if direction == "out":  # u --label--> other
                adjacency_lists.append(graph.in_neighbors(anchor, label))
            else:  # other --label--> u
                adjacency_lists.append(graph.out_neighbors(anchor, label))

        if not adjacency_lists:
            if labels:
                base: Sequence[int] = graph.vertices_with_labels(labels)
            else:
                base = graph.vertices()
            candidates = [
                v for v in base if self._vertex_ok(v, u, assignment, constraints)
            ]
            return candidates

        adjacency_lists.sort(key=len)
        candidates = [
            v
            for v in adjacency_lists[0]
            if self._vertex_ok(v, u, assignment, constraints)
        ]
        return candidates

    def _vertex_ok(
        self,
        v: int,
        u: int,
        assignment: Dict[int, int],
        constraints: List[_Constraint],
    ) -> bool:
        """Full check of labels and all constraint edges for ``u -> v``."""
        graph = self.graph
        labels = self.query.vertex_labels[u]
        if labels and not labels <= graph.vertex_labels(v):
            return False
        vertex_filter = self.vertex_filters.get(u)
        if vertex_filter is not None and not vertex_filter(v):
            return False
        for other, direction, label, idx in constraints:
            anchor = v if other == u else assignment[other]
            if direction == "out":
                src, dst = v, anchor
            else:
                src, dst = anchor, v
            if not graph.has_edge(src, dst, label):
                return False
            allowed = self.edge_candidates.get(idx)
            if allowed is not None and (src, dst) not in allowed:
                return False
        return True

    def _leaf_product(
        self, depth: int, assignment: Dict[int, int]
    ) -> Optional[int]:
        """Product shortcut when all remaining vertices are independent."""
        remaining_set = set(self._order[depth:])
        for u in remaining_set:
            if self.query.neighbors(u) & remaining_set:
                return None
        product = 1
        for u in self._order[depth:]:
            candidates = self._candidates(u, assignment)
            product *= len(candidates)
            if product == 0:
                return 0
        return product

    def _leaf_product_sealed(
        self, depth: int, assignment: Dict[int, int]
    ) -> Optional[int]:
        """Sealed leaf product: precomputed independence, frozen plans."""
        if not self._suffix_independent[depth]:
            return None
        product = 1
        plans = self._leaf_plans
        for d in range(depth, len(plans)):
            product *= len(self._plan_candidates(plans[d], assignment))
            if product == 0:
                return 0
        return product

    def _search(self, depth: int, assignment: Dict[int, int]) -> None:
        self._steps += 1
        if time.monotonic() > self._deadline:
            raise BudgetExceeded
        if depth == len(self._order):
            self._count += 1
            if self._count >= self._cap:
                raise BudgetExceeded
            return
        if depth > 0:
            product = self._leaf_product(depth, assignment)
            if product is not None:
                self._count += product
                if self._count >= self._cap:
                    self._count = self._cap
                    raise BudgetExceeded
                return
        u = self._order[depth]
        for v in self._candidates(u, assignment):
            assignment[u] = v
            self._search(depth + 1, assignment)
            del assignment[u]

    def _search_sealed(self, depth: int, assignment: Dict[int, int]) -> int:
        """Sealed-substrate search: memoized subtree completion counts.

        The number of completions below ``depth`` is a function of the
        data vertices bound to that depth's separator only, so sibling
        subtrees that agree on the separator contribute a dict hit
        instead of a re-search.  Sound because the graph, the filters and
        the edge restrictions are all fixed for the counter's lifetime;
        a budget abort propagates *past* the memo store, so only fully
        explored subtrees are ever cached.  Complete-run counts are
        identical to the generic path's; capped runs clamp to the cap
        exactly as the leaf product always has.
        """
        self._steps += 1
        # the deadline is a wall-clock budget over searches that run for
        # seconds; probing the clock every 64 nodes keeps the granularity
        # far below any meaningful budget while dropping a syscall from
        # the per-node fast path
        if (self._steps & 63) == 0 and time.monotonic() > self._deadline:
            raise BudgetExceeded
        if depth == len(self._order):
            self._count += 1
            if self._count >= self._cap:
                raise BudgetExceeded
            return 1
        separator = self._separators[depth]
        use_memo = len(separator) < depth  # separator forgets something
        if use_memo:
            key = (depth,) + tuple(assignment[x] for x in separator)
            cached = self._count_memo.get(key)
            if cached is not None:
                self._count += cached
                if self._count >= self._cap:
                    self._count = self._cap
                    raise BudgetExceeded
                return cached
        if depth > 0:
            product = self._leaf_product_sealed(depth, assignment)
            if product is not None:
                self._count += product
                if self._count >= self._cap:
                    self._count = self._cap
                    raise BudgetExceeded
                if use_memo and len(self._count_memo) < self._MEMO_MAX:
                    self._count_memo[key] = product
                return product
        u = self._order[depth]
        total = 0
        for v in self._plan_candidates(self._depth_plans[depth], assignment):
            assignment[u] = v
            total += self._search_sealed(depth + 1, assignment)
            del assignment[u]
        if use_memo and len(self._count_memo) < self._MEMO_MAX:
            self._count_memo[key] = total
        return total


def count_embeddings(
    graph: Graph,
    query: QueryGraph,
    time_limit: Optional[float] = None,
    max_count: Optional[int] = None,
    edge_candidates: Optional[Dict[int, Set[Tuple[int, int]]]] = None,
    vertex_filters: Optional[Dict[int, "VertexFilter"]] = None,
) -> MatchResult:
    """Count homomorphic embeddings of ``query`` in ``graph``.

    Convenience wrapper over :class:`HomomorphismCounter`.
    """
    counter = HomomorphismCounter(graph, query, edge_candidates, vertex_filters)
    return counter.count(time_limit=time_limit, max_count=max_count)

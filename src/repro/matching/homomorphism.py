"""Exact subgraph matching by graph homomorphism.

The paper defines subgraph matching via graph homomorphism (Section 2):
an embedding maps query vertices to data vertices such that vertex labels
are contained, and every query edge maps to a data edge with the same label.
Homomorphisms are *not* required to be injective.

This module provides the ground-truth cardinality counter used to compute
true cardinalities for q-error evaluation, and is reused by estimators that
execute (sub)queries over restricted data (CorrelatedSampling counts the
join over its samples; SumRDF matches the query against its summary graph).

The counter is a backtracking search with:

* a matching order that starts from the most selective query vertex and
  grows along query edges (so every subsequent vertex is constrained by at
  least one assigned neighbor when the query is connected),
* candidate generation from the smallest adjacency list,
* a *leaf product* shortcut: when all remaining query vertices are mutually
  non-adjacent and fully constrained by assigned vertices, the number of
  completions is the product of their candidate counts,
* optional per-query-edge candidate restrictions, a wall-clock budget and a
  count cap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.digraph import Graph
from ..graph.query import QueryGraph

try:  # typing helper for vertex filter predicates
    from typing import Callable

    VertexFilter = Callable[[int], bool]
except ImportError:  # pragma: no cover
    pass


@dataclass
class MatchResult:
    """Outcome of a counting run.

    ``complete`` is False when the run stopped early (timeout or count cap);
    ``count`` is then a lower bound on the true cardinality.  ``steps``
    counts backtracking search nodes (calls of the recursive search) —
    the matcher's work metric, surfaced by the observability layer as
    the ``match.backtrack_steps`` counter.
    """

    count: int
    complete: bool
    elapsed: float
    steps: int = 0

    def __int__(self) -> int:
        return self.count


class BudgetExceeded(Exception):
    """Internal signal: wall-clock or count budget exhausted."""


# A constraint of an unassigned query vertex u against an assigned vertex:
# (assigned query vertex, direction, edge label, edge index).
_Constraint = Tuple[int, str, int, int]


class HomomorphismCounter:
    """Counts homomorphic embeddings of a query in a data graph."""

    def __init__(
        self,
        graph: Graph,
        query: QueryGraph,
        edge_candidates: Optional[Dict[int, Set[Tuple[int, int]]]] = None,
        vertex_filters: Optional[Dict[int, "VertexFilter"]] = None,
    ) -> None:
        """``edge_candidates`` optionally restricts which data edge may match
        a given query edge (keyed by index into ``query.edges``);
        ``vertex_filters`` optionally restricts which data vertex may match a
        query vertex (keyed by query vertex, value is a predicate)."""
        self.graph = graph
        self.query = query
        self.edge_candidates = edge_candidates or {}
        self.vertex_filters = vertex_filters or {}
        self._order = self._matching_order()
        self._deadline = 0.0
        self._cap = 0
        self._count = 0
        self._steps = 0

    # ------------------------------------------------------------------
    def count(
        self,
        time_limit: Optional[float] = None,
        max_count: Optional[int] = None,
    ) -> MatchResult:
        """Count embeddings, stopping early at a time or count budget."""
        start = time.monotonic()
        self._deadline = start + time_limit if time_limit else float("inf")
        self._cap = max_count if max_count else 1 << 62
        self._count = 0
        self._steps = 0
        assignment: Dict[int, int] = {}
        complete = True
        try:
            self._search(0, assignment)
        except BudgetExceeded:
            complete = False
        return MatchResult(
            self._count, complete, time.monotonic() - start, self._steps
        )

    # ------------------------------------------------------------------
    def _matching_order(self) -> List[int]:
        """Selective-first, connectivity-respecting vertex order."""
        query, graph = self.query, self.graph

        def selectivity(u: int) -> Tuple[int, int]:
            labels = query.vertex_labels[u]
            if labels:
                cand = min(
                    len(graph.vertices_with_label(l)) for l in labels
                )
            else:
                cand = graph.num_vertices
            return (cand, -query.degree(u))

        remaining = set(range(query.num_vertices))
        order: List[int] = []
        while remaining:
            frontier = {
                u
                for u in remaining
                if any(v in set(order) for v in query.neighbors(u))
            }
            pool = frontier or remaining
            best = min(pool, key=selectivity)
            order.append(best)
            remaining.discard(best)
        return order

    def _constraints(self, u: int, assigned: Set[int]) -> List[_Constraint]:
        """Edges between ``u`` and already-assigned vertices (and self loops)."""
        result: List[_Constraint] = []
        for idx, (a, b, label) in enumerate(self.query.edges):
            if a == u and (b in assigned or b == u):
                result.append((b, "out", label, idx))
            elif b == u and a in assigned:
                result.append((a, "in", label, idx))
        return result

    def _candidates(
        self, u: int, assignment: Dict[int, int]
    ) -> Optional[List[int]]:
        """Data vertices that can match ``u`` given the partial assignment.

        Returns None when the candidate set is the whole vertex set (only
        possible for an unconstrained wildcard vertex).
        """
        graph, query = self.graph, self.query
        constraints = self._constraints(u, set(assignment))
        labels = query.vertex_labels[u]

        adjacency_lists: List[Sequence[int]] = []
        pair_checks: List[Tuple[str, int, int, int]] = []
        for other, direction, label, idx in constraints:
            if other == u:  # self loop: defer to the filter stage
                pair_checks.append((direction, label, idx, -1))
                continue
            anchor = assignment[other]
            if direction == "out":  # u --label--> other
                adjacency_lists.append(graph.in_neighbors(anchor, label))
            else:  # other --label--> u
                adjacency_lists.append(graph.out_neighbors(anchor, label))

        if not adjacency_lists:
            if labels:
                base: Sequence[int] = graph.vertices_with_labels(labels)
            else:
                base = graph.vertices()
            candidates = [
                v for v in base if self._vertex_ok(v, u, assignment, constraints)
            ]
            return candidates

        adjacency_lists.sort(key=len)
        candidates = [
            v
            for v in adjacency_lists[0]
            if self._vertex_ok(v, u, assignment, constraints)
        ]
        return candidates

    def _vertex_ok(
        self,
        v: int,
        u: int,
        assignment: Dict[int, int],
        constraints: List[_Constraint],
    ) -> bool:
        """Full check of labels and all constraint edges for ``u -> v``."""
        graph = self.graph
        labels = self.query.vertex_labels[u]
        if labels and not labels <= graph.vertex_labels(v):
            return False
        vertex_filter = self.vertex_filters.get(u)
        if vertex_filter is not None and not vertex_filter(v):
            return False
        for other, direction, label, idx in constraints:
            anchor = v if other == u else assignment[other]
            if direction == "out":
                src, dst = v, anchor
            else:
                src, dst = anchor, v
            if not graph.has_edge(src, dst, label):
                return False
            allowed = self.edge_candidates.get(idx)
            if allowed is not None and (src, dst) not in allowed:
                return False
        return True

    def _leaf_product(
        self, depth: int, assignment: Dict[int, int]
    ) -> Optional[int]:
        """Product shortcut when all remaining vertices are independent."""
        remaining = self._order[depth:]
        remaining_set = set(remaining)
        for u in remaining:
            if self.query.neighbors(u) & remaining_set:
                return None
        product = 1
        for u in remaining:
            candidates = self._candidates(u, assignment)
            product *= len(candidates)
            if product == 0:
                return 0
        return product

    def _search(self, depth: int, assignment: Dict[int, int]) -> None:
        self._steps += 1
        if time.monotonic() > self._deadline:
            raise BudgetExceeded
        if depth == len(self._order):
            self._count += 1
            if self._count >= self._cap:
                raise BudgetExceeded
            return
        if depth > 0:
            product = self._leaf_product(depth, assignment)
            if product is not None:
                self._count += product
                if self._count >= self._cap:
                    self._count = self._cap
                    raise BudgetExceeded
                return
        u = self._order[depth]
        for v in self._candidates(u, assignment):
            assignment[u] = v
            self._search(depth + 1, assignment)
            del assignment[u]


def count_embeddings(
    graph: Graph,
    query: QueryGraph,
    time_limit: Optional[float] = None,
    max_count: Optional[int] = None,
    edge_candidates: Optional[Dict[int, Set[Tuple[int, int]]]] = None,
    vertex_filters: Optional[Dict[int, "VertexFilter"]] = None,
) -> MatchResult:
    """Count homomorphic embeddings of ``query`` in ``graph``.

    Convenience wrapper over :class:`HomomorphismCounter`.
    """
    counter = HomomorphismCounter(graph, query, edge_candidates, vertex_filters)
    return counter.count(time_limit=time_limit, max_count=max_count)

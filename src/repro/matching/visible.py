"""Visible subgraphs of random walks (IMPR's sampling unit).

Section 3.4: for a walk ``s`` over vertices ``V_s``, the *visible
subgraph* ``g_s`` contains the walk's vertices, their neighbours, and
only the edges incident to walk vertices (edges between two neighbours
are invisible).  IMPR counts query embeddings inside ``g_s`` that cover
every walk vertex and use at most one extra (neighbour) vertex.

This module gives the visible subgraph a first-class representation so
it can be inspected and tested directly; the IMPR estimator uses the same
counting logic through :class:`repro.estimators.impr.Impr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set, Tuple

from ..graph.digraph import Graph

Edge = Tuple[int, int, int]


@dataclass(frozen=True)
class VisibleSubgraph:
    """The visible subgraph of a walk: vertices, neighbours, and edges."""

    walk: Tuple[int, ...]
    neighbors: FrozenSet[int]
    edges: FrozenSet[Edge]

    @property
    def vertices(self) -> FrozenSet[int]:
        return frozenset(self.walk) | self.neighbors

    def has_edge(self, src: int, dst: int, label: int) -> bool:
        return (src, dst, label) in self.edges


def visible_subgraph(
    graph: Graph,
    walk: Iterable[int],
    edge_labels: Iterable[int] = (),
) -> VisibleSubgraph:
    """Compute the visible subgraph of a walk.

    ``edge_labels`` optionally restricts visibility to the labels present
    in a query — the G-CARE extension that makes IMPR's walks label-aware.
    Edges are visible iff at least one endpoint is a walk vertex.
    """
    walk = tuple(walk)
    walk_set = set(walk)
    allowed = set(edge_labels)
    neighbors: Set[int] = set()
    edges: Set[Edge] = set()
    for v in walk_set:
        for label, dsts in graph.out_label_map(v).items():
            if allowed and label not in allowed:
                continue
            for dst in dsts:
                edges.add((v, dst, label))
                if dst not in walk_set:
                    neighbors.add(dst)
        for label, srcs in graph.in_label_map(v).items():
            if allowed and label not in allowed:
                continue
            for src in srcs:
                edges.add((src, v, label))
                if src not in walk_set:
                    neighbors.add(src)
    return VisibleSubgraph(walk, frozenset(neighbors), frozenset(edges))

"""Batch set/bitset kernels with bit-identical pure-Python twins.

Every function dispatches on :func:`~repro.kernels.backend.get_numpy` /
:func:`~repro.kernels.backend.get_native` at call time (at most one is
non-None) and returns plain Python ints/lists either way, so cached
results are interchangeable between backends.  The accelerated paths
only engage above small size thresholds: per-call dispatch overhead
(~1-2 us for numpy boxing, ~1 us for a ctypes call) loses to a C-level
``in`` test on the short adjacency segments that dominate the matcher,
while the batch shapes (label member sets, bitset arenas, filtered pair
lists) win by an order of magnitude.  The same thresholds gate all
accelerated legs, so backend parity tests cross every boundary at the
same input sizes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .backend import get_native, get_numpy

#: below this many input values the pure-Python twin is used even on the
#: accelerated backends — identical results, better constants on tiny
#: inputs
SMALL_INPUT = 24
#: below this popcount, bitset decoding stays on the bit-twiddling loop
SMALL_BITS = 64


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Ascending intersection of two sorted, duplicate-free sequences."""
    np = get_numpy()
    if np is not None and min(len(a), len(b)) >= SMALL_INPUT:
        return np.intersect1d(a, b, assume_unique=True).tolist()
    lib = get_native()
    if lib is not None and min(len(a), len(b)) >= SMALL_INPUT:
        from . import native

        return native.intersect_sorted(lib, a, b)
    result: List[int] = []
    append = result.append
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        x, y = a[i], b[j]
        if x == y:
            append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return result


def filter_members(
    values: Sequence[int],
    member_set,
    member_arr=None,
    values_arr=None,
) -> List[int]:
    """``[v for v in values if v in member_set]`` — order preserved.

    ``member_set`` drives the Python twin; ``member_arr`` is the same
    membership domain as a sorted int64 array for the vectorized path
    (binary-search mask).  ``values_arr`` optionally supplies ``values``
    as an existing backend-native view so no conversion is paid.
    """
    np = get_numpy()
    n = len(values)
    if np is not None and member_arr is not None and n >= SMALL_INPUT:
        if len(member_arr) == 0:
            return []
        va = values_arr
        if va is None:
            va = np.fromiter(values, dtype=np.int64, count=n)
        idx = np.searchsorted(member_arr, va)
        mask = np.take(member_arr, idx, mode="clip") == va
        return va[mask].tolist()
    lib = get_native()
    if lib is not None and member_arr is not None and n >= SMALL_INPUT:
        from . import native

        return native.filter_members(
            lib,
            values_arr if values_arr is not None else values,
            member_set,
            member_arr,
        )
    return [v for v in values if v in member_set]


def count_members(
    values: Sequence[int],
    member_set,
    member_arr=None,
    values_arr=None,
) -> int:
    """Number of ``values`` inside the membership domain."""
    np = get_numpy()
    n = len(values)
    if np is not None and member_arr is not None and n >= SMALL_INPUT:
        if len(member_arr) == 0:
            return 0
        va = values_arr
        if va is None:
            va = np.fromiter(values, dtype=np.int64, count=n)
        idx = np.searchsorted(member_arr, va)
        return int((np.take(member_arr, idx, mode="clip") == va).sum())
    lib = get_native()
    if lib is not None and member_arr is not None and n >= SMALL_INPUT:
        from . import native

        return native.count_members(
            lib,
            values_arr if values_arr is not None else values,
            member_set,
            member_arr,
        )
    count = 0
    for v in values:
        if v in member_set:
            count += 1
    return count


def filter_members_multi(
    values: Sequence[int],
    member_sets,
    member_arrs=None,
) -> List[int]:
    """Order-preserving filter against *several* membership domains."""
    np = get_numpy()
    n = len(values)
    have_arrs = member_arrs is not None and all(
        arr is not None for arr in member_arrs
    )
    if np is not None and have_arrs and n >= SMALL_INPUT:
        va = np.fromiter(values, dtype=np.int64, count=n)
        mask = None
        for arr in member_arrs:
            if len(arr) == 0:
                return []
            idx = np.searchsorted(arr, va)
            m = np.take(arr, idx, mode="clip") == va
            mask = m if mask is None else (mask & m)
        return va[mask].tolist()
    lib = get_native()
    if lib is not None and have_arrs and n >= SMALL_INPUT:
        from . import native

        return native.filter_members_multi(
            lib, values, member_sets, member_arrs
        )
    return [v for v in values if all(v in s for s in member_sets)]


def filter_pairs(
    pairs,
    src_set,
    dst_set,
    arrays=None,
    src_arr=None,
    dst_arr=None,
) -> List[tuple]:
    """Endpoint-filtered pair list: keep ``(s, d)`` with ``s``/``d`` in
    the respective membership domains (None = unconstrained).

    The relational layer's ``sigma_labels(R_l)`` access path.  ``arrays``
    optionally supplies the pair columns as ``(src, dst)`` int64 views;
    ``src_arr``/``dst_arr`` are the membership domains as sorted int64
    arrays.  The vectorized path masks whole columns at once and boxes
    only the (typically much smaller) surviving pairs.
    """
    np = get_numpy()
    usable = (
        arrays is not None
        and len(pairs) >= SMALL_INPUT
        and (src_set is None or src_arr is not None)
        and (dst_set is None or dst_arr is not None)
    )
    if np is not None and usable:
        src, dst = arrays
        mask = None
        for col, member_arr in ((src, src_arr), (dst, dst_arr)):
            if member_arr is None:
                continue
            if len(member_arr) == 0:
                return []
            idx = np.searchsorted(member_arr, col)
            m = np.take(member_arr, idx, mode="clip") == col
            mask = m if mask is None else (mask & m)
        if mask is None:
            return list(pairs)
        return list(zip(src[mask].tolist(), dst[mask].tolist()))
    lib = get_native()
    if lib is not None and usable:
        if src_set is None and dst_set is None:
            return list(pairs)
        from . import native

        return native.filter_pairs(
            lib, pairs, src_set, dst_set, arrays, src_arr, dst_arr
        )
    return [
        (s, d)
        for s, d in pairs
        if (src_set is None or s in src_set)
        and (dst_set is None or d in dst_set)
    ]


def pack_bits(values: Sequence[int], nbits: int, values_arr=None) -> int:
    """Pack vertex ids into a Python big-int bitset (bit ``v`` set).

    The big-int shape is what the matcher intersects with C-speed ``&``
    and ``bit_count()``; packing is the cold-path cost this kernel
    vectorizes (one boolean scatter + ``packbits`` instead of a per-id
    Python loop).  ``values_arr`` optionally supplies ``values`` as an
    existing int64 view.
    """
    np = get_numpy()
    n = len(values)
    if np is not None and n >= SMALL_INPUT * 2:
        flags = np.zeros(nbits, dtype=np.bool_)
        va = values_arr
        if va is None:
            va = np.fromiter(values, dtype=np.int64, count=n)
        flags[va] = True
        packed = np.packbits(flags, bitorder="little")
        return int.from_bytes(packed.tobytes(), "little")
    lib = get_native()
    if lib is not None and n >= SMALL_INPUT * 2:
        from . import native

        return native.pack_bits(lib, values, nbits, values_arr)
    ba = bytearray((nbits + 7) >> 3)
    for t in values:
        ba[t >> 3] |= 1 << (t & 7)
    return int.from_bytes(ba, "little")


def pack_bits_from_set(members, nbits: int) -> int:
    """``pack_bits`` over an unordered membership set."""
    return pack_bits(tuple(members), nbits)


def bits_to_list(bits: int, nbits: Optional[int] = None) -> List[int]:
    """Decode a big-int bitset into the ascending list of set positions."""
    np = get_numpy()
    if (
        np is not None
        and nbits is not None
        and bits
        and bits.bit_count() >= SMALL_BITS
    ):
        raw = bits.to_bytes((nbits + 7) >> 3, "little")
        flags = np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8), bitorder="little", count=nbits
        )
        return np.flatnonzero(flags).tolist()
    lib = get_native()
    if (
        lib is not None
        and nbits is not None
        and bits
        and bits.bit_count() >= SMALL_BITS
    ):
        from . import native

        return native.bits_to_list(lib, bits, nbits)
    result: List[int] = []
    append = result.append
    while bits:
        low = bits & -bits
        append(low.bit_length() - 1)
        bits ^= low
    return result

"""Descriptor marshalling for the native sealed-matcher search kernel.

:func:`build_native_matcher` flattens a
:class:`~repro.matching.homomorphism.HomomorphismCounter`'s frozen plan
tables into the int64 descriptor rows ``gc_match`` consumes — CSR arena
pointers, per-plan constraint triples, label masks, static candidate
lists, per-depth separator rows — and returns a callable that runs the
whole backtracking search in C.  The kernel replicates the Python
search node for node (same candidate orders, same count-memo keying and
insertion cap, same ``steps`` accounting), so counts, step counters and
completeness flags are bit-identical; see the three-way differential
suite in ``tests/test_native_kernels.py``.

Only the plan shapes the C kernel replicates exactly are eligible:
bitset-mode counters over a raw-CSR sealed graph with no per-edge
candidate restrictions, no vertex filters, no self loops (plan extras)
and at most 32 query vertices.  Anything else returns None and the
caller stays on the Python loop — whose inner batch ops still dispatch
natively, so nothing is ever slower than the numpy leg.
"""

from __future__ import annotations

import ctypes
import time
from array import array
from typing import Optional

from .native import NativeLib, _PinnedBuffer

_i64p = ctypes.POINTER(ctypes.c_int64)
_u8p = ctypes.POINTER(ctypes.c_ubyte)

#: the C kernel's inline memo-key capacity: depth + up to 32 separators
MAX_QUERY_VERTICES = 32


def _arr_ptr(arr: array) -> _i64p:
    addr, _ = arr.buffer_info()
    return ctypes.cast(addr, _i64p)


def _buffer_ptr(buf, keep: list) -> _i64p:
    """int64* over an array('q') or a (shm) memoryview, zero-copy."""
    if isinstance(buf, array):
        keep.append(buf)
        addr, _ = buf.buffer_info()
        return ctypes.cast(addr, _i64p)
    pin = _PinnedBuffer(buf)
    keep.append(pin)
    return ctypes.cast(pin.addr, _i64p)


def _label_mask(graph, lib: NativeLib, ulabels) -> array:
    """Byte-per-vertex membership mask for a vertex-label set, cached."""
    key = ("native.mask", ulabels)
    mask = graph.shared_cache.get(key)
    if mask is None:
        n = graph.num_vertices
        mask = array("B", bytes(n))
        members = array("q", graph.labels_member_set(ulabels))
        if members:
            lib.gc_build_mask(
                _arr_ptr(members),
                len(members),
                ctypes.cast(mask.buffer_info()[0], ctypes.c_char_p),
            )
        graph.shared_cache[key] = mask
    return mask


def _static_candidates(graph, counter, plan) -> array:
    """Anchor-free candidate list as an int64 array, cached on the graph.

    Mirrors ``_plan_candidates``' static branch exactly: the label-set
    member tuple in its cached order, or all vertices in id order.
    """
    label_set = plan[4]
    u = plan[7]
    if label_set is not None:
        key = ("native.static", frozenset(counter.query.vertex_labels[u]))
        arr = graph.shared_cache.get(key)
        if arr is None:
            arr = array(
                "q", graph.label_members(counter.query.vertex_labels[u])
            )
            graph.shared_cache[key] = arr
        return arr
    key = ("native.iota",)
    arr = graph.shared_cache.get(key)
    if arr is None:
        arr = array("q", range(graph.num_vertices))
        graph.shared_cache[key] = arr
    return arr


class _NativeRunner:
    """A bound ``gc_match`` invocation; holds every descriptor alive."""

    def __init__(self, lib: NativeLib, counter) -> None:
        self._lib = lib
        self._keep: list = []
        graph = counter.graph
        query = counter.query
        order = counter._order
        nq = len(order)
        self._nq = nq
        self._n = graph.num_vertices

        bufs = []
        for direction in (graph._fwd, graph._rev):
            for name in (
                "lab_off",
                "lab",
                "seg_off",
                "targets",
                "sorted_targets",
            ):
                bufs.append(_buffer_ptr(getattr(direction, name), self._keep))
        self._csr_bufs = (_i64p * 10)(*bufs)

        # plans, in registry insertion order (plan[0] is the index)
        plans = list(counter._plan_registry.items())
        plan_rows = array("q")
        cons_flat = array("q")
        masks: list = []
        statics: list = []
        static_lens = array("q")
        for signature, plan in plans:
            u, entries, _extras = signature
            cons_off = len(cons_flat)
            for other, direction, label, _idx in entries:
                # "out" (u --label--> other) candidates come from the
                # anchor's in-adjacency, i.e. the REV CSR; "in" from FWD
                cons_flat.extend((1 if direction == "out" else 0, label, other))
            mask_idx = -1
            if plan[4] is not None:  # label-constrained vertex
                mask = _label_mask(graph, lib, plan[12])
                mask_idx = len(masks)
                masks.append(mask)
            static_idx = -1
            if not plan[1]:  # anchor-free: precomputed static list
                arr = _static_candidates(graph, counter, plan)
                static_idx = len(statics)
                statics.append(arr)
                static_lens.append(len(arr))
            plan_rows.extend((u, len(entries), cons_off, mask_idx, static_idx))
        self._n_plans = len(plans)
        self._plan_flat = plan_rows
        self._cons_flat = cons_flat if cons_flat else array("q", [0])
        self._mask_ptrs = (_u8p * max(1, len(masks)))(
            *[
                ctypes.cast(m.buffer_info()[0], _u8p)
                for m in masks
            ]
        )
        self._keep.extend(masks)
        self._static_ptrs = (_i64p * max(1, len(statics)))(
            *[_arr_ptr(a) for a in statics]
        )
        self._keep.extend(statics)
        self._static_lens = static_lens if static_lens else array("q", [0])

        # per-depth rows + separator arena + leaf-product plan indexes
        depth_rows = array("q")
        sep_flat = array("q")
        leaf_plan = array("q")
        for d in range(nq):
            sep = (
                counter._separators[d]
                if len(counter._separators[d]) < d
                else None
            )
            sep_off = len(sep_flat)
            if sep is not None:
                sep_flat.extend(sep)
                sep_len = len(sep)
            else:
                sep_len = -1
            leaf_ok = 1 if (d > 0 and counter._suffix_independent[d]) else 0
            depth_rows.extend(
                (order[d], counter._depth_plans[d][0], sep_off, sep_len,
                 leaf_ok)
            )
            leaf_plan.append(counter._leaf_plans[d][0])
        self._depth_flat = depth_rows if depth_rows else array("q", [0])
        self._sep_flat = sep_flat if sep_flat else array("q", [0])
        self._leaf_plan = leaf_plan if leaf_plan else array("q", [0])
        self._out = array("q", [0, 0, 0])

    def __call__(
        self, deadline: float, cap: int
    ) -> Optional[tuple]:
        """Run the search; ``(count, steps, complete)`` or None on failure.

        ``deadline`` is the counter's absolute monotonic deadline (the
        kernel re-anchors the remaining budget on its own CLOCK_MONOTONIC);
        infinity means no time budget.
        """
        if deadline == float("inf"):
            remaining = 0.0  # sentinel: no deadline
        else:
            remaining = max(deadline - time.monotonic(), 1e-9)
        rc = self._lib.gc_match(
            self._csr_bufs,
            self._n,
            self._nq,
            _arr_ptr(self._plan_flat) if self._plan_flat else None,
            self._n_plans,
            _arr_ptr(self._cons_flat),
            self._mask_ptrs,
            self._static_ptrs,
            _arr_ptr(self._static_lens),
            _arr_ptr(self._depth_flat),
            _arr_ptr(self._sep_flat),
            _arr_ptr(self._leaf_plan),
            cap,
            remaining,
            _arr_ptr(self._out),
        )
        if rc != 0:
            return None
        return (self._out[0], self._out[1], bool(self._out[2]))


def build_native_matcher(counter, lib: NativeLib):
    """A native runner for this counter, or None when out of scope."""
    graph = counter.graph
    if not getattr(graph, "sealed", False):
        return None
    fwd = getattr(graph, "_fwd", None)
    rev = getattr(graph, "_rev", None)
    if fwd is None or rev is None:
        return None
    if getattr(graph, "_patched", False):
        # a resealed graph's CSR offsets do not cover its patched rows;
        # the Python loop reads through the overlay accessors instead
        return None
    if not counter._bitsets:
        # non-bitset counters use a different (insertion-order) candidate
        # pipeline for multi-constraint nodes; the C kernel replicates
        # the bitset pipeline only
        return None
    if counter.edge_candidates or counter.vertex_filters:
        return None
    if len(counter._order) > MAX_QUERY_VERTICES:
        return None
    for _signature, plan in counter._plan_registry.items():
        if plan[3] or plan[5] is not None:  # extras / vertex filter
            return None
    try:
        return _NativeRunner(lib, counter)
    except (BufferError, ValueError, ctypes.ArgumentError):
        return None

"""The ``c`` kernel backend: lazily cc-compiled CSR kernels via ctypes.

``GCARE_KERNELS=c`` routes the batch-op surface (and the sealed matcher's
search loop, see :mod:`repro.kernels.native_match`) to a small C library,
:file:`_native.c`, compiled on first use with the system ``cc`` and cached
as a shared object keyed by ``blake2b(source + compiler version)`` under a
per-user cache directory.  The cache write is an atomic :func:`os.replace`,
so any number of workers can race the first compile; whoever finishes last
wins and everyone loads an identical artifact.  ``GCARE_NATIVE_CACHE``
overrides the cache directory (read-only homes, hermetic CI).

Everything degrades, never errors: no toolchain, a failed compile, or an
ABI mismatch make :func:`load` return ``None`` and the backend machinery
falls back to numpy-or-python with a :func:`repro.kernels.fallback_note`.

Data crosses the boundary zero-copy.  Sealed graphs expose their CSR
arenas either as ``array('q')`` (local seals — ``buffer_info()`` gives the
address) or as read-only ``memoryview`` slices of a ``/dev/shm`` mapping
(attached seals — pinned via the buffer protocol).  Results come back as
:class:`NativeView`, a tiny int64 sequence over library-owned or
arena-owned memory that downstream kernels slice without copying.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import os
import random
import shutil
import subprocess
import tempfile
from array import array
from hashlib import blake2b
from pathlib import Path

ABI_VERSION = 1

_SOURCE = Path(__file__).with_name("_native.c")

# Scalar randrange costs ~0.4us/draw; the getstate/setstate round trip for
# the native stream costs ~15us flat, so only batches >= this go native.
NATIVE_DRAW_MIN = 64

_i64 = ctypes.c_int64
_i64p = ctypes.POINTER(ctypes.c_int64)
_u8p = ctypes.POINTER(ctypes.c_ubyte)
_u32p = ctypes.POINTER(ctypes.c_uint32)

# load() memo: (compiler, cache_dir) -> NativeLib | None.  A module-level
# dict (not functools.cache) so tests can reset it between env tweaks.
_loaded: dict[tuple[str, str], "NativeLib | None"] = {}
_fallback_reason: str | None = None

# front cache for load(): raw env triple -> result.  load() sits on the
# kernel dispatch hot path (every get_native() call), and resolving the
# compiler (shutil.which) + cache dir (pathlib) first would cost more
# than the kernel itself; two os.environ reads make the repeat call flat
_fast_key: "tuple[str | None, str | None, str | None] | None" = None
_fast_lib: "NativeLib | None" = None


def reset_for_tests() -> None:
    """Forget cached load results (tests flip GCARE_CC / cache dirs)."""

    _loaded.clear()
    global _fallback_reason, _fast_key, _fast_lib
    _fallback_reason = None
    _fast_key = None
    _fast_lib = None
    from . import backend

    backend._invalidate()


def fallback_reason() -> str | None:
    """Why the last load attempt failed, or None if it never failed."""

    return _fallback_reason


def _find_compiler() -> str | None:
    override = os.environ.get("GCARE_CC")
    if override:
        return override
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> Path:
    override = os.environ.get("GCARE_NATIVE_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "gcare-kernels"


def _source_digest(source: bytes, compiler: str) -> str:
    try:
        version = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            timeout=30,
        ).stdout.splitlines()[:1]
    except (OSError, subprocess.SubprocessError, IndexError):
        version = [b"unknown"]
    h = blake2b(digest_size=16)
    h.update(source)
    h.update(b"\x00")
    h.update(version[0] if version else b"unknown")
    h.update(b"\x00abi=%d" % ABI_VERSION)
    return h.hexdigest()


def _compile(compiler: str, source_path: Path, out_path: Path) -> bool:
    """Compile to a temp file, then atomically publish at ``out_path``."""

    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(out_path.parent), prefix=out_path.name, suffix=".tmp"
    )
    os.close(fd)
    try:
        proc = subprocess.run(
            [
                compiler,
                "-O2",
                "-shared",
                "-fPIC",
                "-o",
                tmp,
                str(source_path),
            ],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return False
        os.replace(tmp, out_path)  # atomic: concurrent compiles race safely
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _cleanup_stale(directory: Path, keep: str) -> None:
    """Drop shared objects left behind by older sources/compilers."""

    try:
        entries = list(directory.glob("gcare_native_*.so"))
    except OSError:
        return
    for path in entries:
        if path.name != keep:
            try:
                path.unlink()
            except OSError:
                pass


class NativeLib:
    """A loaded ``_native`` shared object with typed entry points."""

    def __init__(self, cdll: ctypes.CDLL, so_path: Path) -> None:
        self._cdll = cdll
        self.so_path = so_path
        self._bind()

    def _bind(self) -> None:
        lib = self._cdll
        lib.gc_abi_version.restype = _i64
        lib.gc_abi_version.argtypes = ()
        lib.gc_intersect_sorted.restype = _i64
        lib.gc_intersect_sorted.argtypes = (_i64p, _i64, _i64p, _i64, _i64p)
        lib.gc_filter_members.restype = _i64
        lib.gc_filter_members.argtypes = (_i64p, _i64, _i64p, _i64, _i64p)
        lib.gc_count_members.restype = _i64
        lib.gc_count_members.argtypes = (_i64p, _i64, _i64p, _i64)
        lib.gc_filter_members_multi.restype = _i64
        lib.gc_filter_members_multi.argtypes = (
            _i64p,
            _i64,
            ctypes.POINTER(_i64p),
            _i64p,
            _i64,
            _i64p,
        )
        lib.gc_filter_pairs.restype = _i64
        lib.gc_filter_pairs.argtypes = (
            _i64p,
            _i64p,
            _i64,
            _i64p,
            _i64,
            _i64p,
            _i64,
            _i64p,
        )
        lib.gc_pack_bits.restype = None
        lib.gc_pack_bits.argtypes = (_i64p, _i64, ctypes.c_char_p)
        lib.gc_bits_to_list.restype = _i64
        lib.gc_bits_to_list.argtypes = (ctypes.c_char_p, _i64, _i64p)
        lib.gc_interleave.restype = None
        lib.gc_interleave.argtypes = (_i64p, _i64p, _i64, _i64p)
        lib.gc_build_mask.restype = None
        lib.gc_build_mask.argtypes = (_i64p, _i64, ctypes.c_char_p)
        lib.gc_draw_indices.restype = _i64
        lib.gc_draw_indices.argtypes = (_u32p, _i64p, _i64, _i64, _i64p)
        lib.gc_match.restype = ctypes.c_int
        lib.gc_match.argtypes = (
            ctypes.POINTER(_i64p),  # csr_bufs[10]
            _i64,  # n_data
            _i64,  # nq
            _i64p,  # plan_flat
            _i64,  # n_plans
            _i64p,  # cons_flat
            ctypes.POINTER(_u8p),  # mask_ptrs
            ctypes.POINTER(_i64p),  # static_ptrs
            _i64p,  # static_lens
            _i64p,  # depth_flat
            _i64p,  # sep_flat
            _i64p,  # leaf_plan
            _i64,  # cap
            ctypes.c_double,  # time_limit
            _i64p,  # out[3]
        )

    def __getattr__(self, name: str):
        return getattr(self._cdll, name)


def load() -> NativeLib | None:
    """Compile-if-needed and load the native library; None on any failure."""

    global _fallback_reason, _fast_key, _fast_lib
    env_key = (
        os.environ.get("GCARE_CC"),
        os.environ.get("GCARE_NATIVE_CACHE"),
        os.environ.get("XDG_CACHE_HOME"),
    )
    if env_key == _fast_key:
        return _fast_lib
    compiler = _find_compiler()
    directory = cache_dir()
    key = (compiler or "", str(directory))
    if key in _loaded:
        _fast_key, _fast_lib = env_key, _loaded[key]
        return _fast_lib
    lib = None
    if compiler is None:
        _fallback_reason = "no C compiler on PATH (cc/gcc/clang)"
    else:
        try:
            source = _SOURCE.read_bytes()
        except OSError:
            source = None
            _fallback_reason = "native kernel source missing"
        if source is not None:
            digest = _source_digest(source, compiler)
            so_path = directory / f"gcare_native_{digest}.so"
            ok = so_path.exists()
            if not ok:
                ok = _compile(compiler, _SOURCE, so_path)
                if ok:
                    _cleanup_stale(directory, so_path.name)
                else:
                    _fallback_reason = (
                        f"native kernel compile failed ({compiler})"
                    )
            if ok:
                try:
                    cdll = ctypes.CDLL(str(so_path))
                    candidate = NativeLib(cdll, so_path)
                    if candidate.gc_abi_version() == ABI_VERSION:
                        lib = candidate
                    else:
                        _fallback_reason = "native kernel ABI mismatch"
                except OSError:
                    _fallback_reason = "native kernel load failed"
    _loaded[key] = lib
    _fast_key, _fast_lib = env_key, lib
    return lib


# --------------------------------------------------------------------
# zero-copy buffer access
# --------------------------------------------------------------------


class _PyBuffer(ctypes.Structure):
    # CPython's Py_buffer; `obj` stays a raw pointer so ctypes never
    # touches its refcount (PyBuffer_Release owns the decref).
    _fields_ = [
        ("buf", ctypes.c_void_p),
        ("obj", ctypes.c_void_p),
        ("len", ctypes.c_ssize_t),
        ("itemsize", ctypes.c_ssize_t),
        ("readonly", ctypes.c_int),
        ("ndim", ctypes.c_int),
        ("format", ctypes.c_char_p),
        ("shape", ctypes.c_void_p),
        ("strides", ctypes.c_void_p),
        ("suboffsets", ctypes.c_void_p),
        ("internal", ctypes.c_void_p),
    ]


ctypes.pythonapi.PyObject_GetBuffer.restype = ctypes.c_int
ctypes.pythonapi.PyObject_GetBuffer.argtypes = (
    ctypes.py_object,
    ctypes.POINTER(_PyBuffer),
    ctypes.c_int,
)
ctypes.pythonapi.PyBuffer_Release.restype = None
ctypes.pythonapi.PyBuffer_Release.argtypes = (ctypes.POINTER(_PyBuffer),)


class _PinnedBuffer:
    """Pins any buffer-protocol object and exposes its base address."""

    __slots__ = ("_raw", "addr", "nbytes", "_released")

    def __init__(self, obj) -> None:
        self._raw = _PyBuffer()
        self._released = True
        if ctypes.pythonapi.PyObject_GetBuffer(
            obj, ctypes.byref(self._raw), 0
        ) != 0:
            raise BufferError(f"cannot pin buffer of {type(obj)!r}")
        self._released = False
        self.addr = self._raw.buf
        self.nbytes = self._raw.len

    def release(self) -> None:
        if not self._released:
            self._released = True
            ctypes.pythonapi.PyBuffer_Release(ctypes.byref(self._raw))

    def __del__(self) -> None:  # pragma: no cover - destructor timing
        self.release()


class NativeView:
    """A read-only int64 sequence over borrowed memory.

    The ``c``-backend analogue of the numpy views handed out by
    :mod:`repro.kernels.views`: downstream code lens over CSR arenas and
    kernel outputs without copying.  ``_keep`` anchors whatever owns the
    memory (an ``array('q')``, a pinned shm buffer, a sealed graph).
    """

    __slots__ = ("addr", "n", "_keep")

    def __init__(self, addr: int, n: int, keep=None) -> None:
        self.addr = addr
        self.n = n
        self._keep = keep

    @classmethod
    def from_array(cls, arr: array) -> "NativeView":
        addr, n = arr.buffer_info()
        return cls(addr, n, keep=arr)

    @classmethod
    def from_buffer(cls, obj) -> "NativeView":
        pin = _PinnedBuffer(obj)
        if pin.nbytes % 8:
            pin.release()
            raise ValueError("buffer length is not a multiple of 8")
        return cls(pin.addr, pin.nbytes // 8, keep=pin)

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            start, stop, step = idx.indices(self.n)
            if step != 1:
                return self.tolist()[idx]
            return NativeView(
                self.addr + 8 * start, max(0, stop - start), keep=self._keep
            )
        if idx < 0:
            idx += self.n
        if not 0 <= idx < self.n:
            raise IndexError(idx)
        return ctypes.c_int64.from_address(self.addr + 8 * idx).value

    def __iter__(self):
        return iter(self.tolist())

    def tolist(self) -> list:
        if not self.n:
            return []
        return array("q", ctypes.string_at(self.addr, 8 * self.n)).tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NativeView(n={self.n})"


def _as_view(values) -> NativeView:
    """Coerce anything list-like into a NativeView (copying if needed)."""

    if isinstance(values, NativeView):
        return values
    if isinstance(values, array) and values.typecode == "q":
        return NativeView.from_array(values)
    if isinstance(values, memoryview):
        return NativeView.from_buffer(values)
    return NativeView.from_array(array("q", values))


def _out_array(n: int) -> tuple[array, _i64p]:
    arr = array("q", bytes(8 * max(n, 1)))
    addr, _ = arr.buffer_info()
    return arr, ctypes.cast(addr, _i64p)


def _ptr(view: NativeView) -> _i64p:
    return ctypes.cast(view.addr, _i64p)


_EMPTY = NativeView(0, 0)


def _member_view(member_set, member_arr) -> NativeView:
    """A sorted int64 domain from whatever the caller has on hand."""

    if member_arr is not None:
        return _as_view(member_arr)
    if not member_set:
        return _EMPTY
    return NativeView.from_array(array("q", sorted(member_set)))


# --------------------------------------------------------------------
# batch-op twins (dispatched from repro.kernels.ops on the c backend)
# --------------------------------------------------------------------


def intersect_sorted(lib: NativeLib, a, b) -> list:
    va, vb = _as_view(a), _as_view(b)
    out, out_p = _out_array(min(va.n, vb.n))
    k = lib.gc_intersect_sorted(_ptr(va), va.n, _ptr(vb), vb.n, out_p)
    return out[:k].tolist()


def filter_members(lib: NativeLib, values, member_set, member_arr) -> list:
    vv = _as_view(values)
    vm = _member_view(member_set, member_arr)
    if not vm.n:
        return []
    out, out_p = _out_array(vv.n)
    k = lib.gc_filter_members(_ptr(vv), vv.n, _ptr(vm), vm.n, out_p)
    return out[:k].tolist()


def count_members(lib: NativeLib, values, member_set, member_arr) -> int:
    vv = _as_view(values)
    vm = _member_view(member_set, member_arr)
    if not vm.n:
        return 0
    return lib.gc_count_members(_ptr(vv), vv.n, _ptr(vm), vm.n)


def filter_members_multi(
    lib: NativeLib, values, member_sets, member_arrs
) -> list:
    vv = _as_view(values)
    if member_arrs is None:
        member_arrs = [None] * len(member_sets)
    views = [
        _member_view(ms, arr) for ms, arr in zip(member_sets, member_arrs)
    ]
    if any(not v.n for v in views):
        return []
    n = len(views)
    arrs = (_i64p * n)(*[_ptr(v) for v in views])
    lens = (ctypes.c_int64 * n)(*[v.n for v in views])
    out, out_p = _out_array(vv.n)
    k = lib.gc_filter_members_multi(
        _ptr(vv), vv.n, arrs, ctypes.cast(lens, _i64p), n, out_p
    )
    return out[:k].tolist()


def filter_pairs(
    lib: NativeLib, pairs, src_set, dst_set, arrays, src_arr, dst_arr
) -> list:
    if arrays is not None:
        vsrc, vdst = _as_view(arrays[0]), _as_view(arrays[1])
    else:
        pairs = list(pairs)
        vsrc = _as_view(array("q", (p[0] for p in pairs)))
        vdst = _as_view(array("q", (p[1] for p in pairs)))
    n = vsrc.n
    if src_set is None:
        ms, ns = _EMPTY, -1
    else:
        ms = _member_view(src_set, src_arr)
        ns = ms.n
    if dst_set is None:
        md, nd = _EMPTY, -1
    else:
        md = _member_view(dst_set, dst_arr)
        nd = md.n
    out, out_p = _out_array(2 * n)
    k = lib.gc_filter_pairs(
        _ptr(vsrc), _ptr(vdst), n, _ptr(ms), ns, _ptr(md), nd, out_p
    )
    flat = out[: 2 * k].tolist()
    return list(zip(flat[0::2], flat[1::2]))


def pack_bits(lib: NativeLib, values, nbits: int, values_arr) -> int:
    vv = _as_view(values_arr if values_arr is not None else values)
    nbytes = (nbits + 7) // 8
    buf = bytearray(nbytes)
    lib.gc_pack_bits(
        _ptr(vv), vv.n, (ctypes.c_char * nbytes).from_buffer(buf)
    )
    return int.from_bytes(buf, "little")


def bits_to_list(lib: NativeLib, bits: int, nbits: int | None) -> list:
    if bits <= 0:
        return []
    nbytes = (
        (nbits + 7) // 8 if nbits is not None else (bits.bit_length() + 7) // 8
    )
    raw = bits.to_bytes(nbytes, "little")
    out, out_p = _out_array(bits.bit_count())
    k = lib.gc_bits_to_list(raw, nbytes, out_p)
    return out[:k].tolist()


def interleave_pairs(lib: NativeLib, pairs, arrays) -> array:
    if arrays is not None:
        vsrc, vdst = _as_view(arrays[0]), _as_view(arrays[1])
    else:
        pairs = list(pairs)
        vsrc = _as_view(array("q", (p[0] for p in pairs)))
        vdst = _as_view(array("q", (p[1] for p in pairs)))
    out, out_p = _out_array(2 * vsrc.n)
    lib.gc_interleave(_ptr(vsrc), _ptr(vdst), vsrc.n, out_p)
    del out[2 * vsrc.n :]
    return out


def draw_indices(lib: NativeLib, rng: random.Random, n: int, k: int):
    """k randrange(n) draws, bit-exact with the scalar stream, or None.

    Returns None when the state cannot be replicated safely (subclassed
    Random, n out of the 32-bit rejection-sampling range) — the caller
    falls back to the scalar loop.
    """

    if type(rng) is not random.Random:
        return None
    if not 0 < n <= 0xFFFFFFFF:
        return None
    version, internal, gauss = rng.getstate()
    if version != 3 or len(internal) != 625:
        return None
    words = (ctypes.c_uint32 * 624)(*internal[:624])
    mti = ctypes.c_int64(internal[624])
    out, out_p = _out_array(k)
    lib.gc_draw_indices(words, ctypes.byref(mti), n, k, out_p)
    rng.setstate((version, tuple(words) + (mti.value,), gauss))
    return out[:k].tolist()

"""Vectorized batch kernels over the sealed CSR substrate.

The sealed :class:`~repro.graph.compact.CompactGraph` stores adjacency,
label indexes and edge-pair arenas as flat ``array('q')`` buffers (or
read-only shared-memory views after :meth:`~CompactGraph.from_shm`).
This package wraps those buffers in **zero-copy** numpy ``int64`` views
and supplies the batch primitives the estimation hot loops are made of:

* sorted-set intersection and order-preserving membership filtering
  (label-constrained candidate generation),
* bitset packing / decoding (the exact matcher's intersection kernel),
* frontier-batched index drawing for the sampling estimators, which
  preserves the per-cell deterministic ``random.Random`` streams.

Every kernel has a pure-Python twin that produces **bit-identical**
results, selected by the ``GCARE_KERNELS=c|numpy|python`` environment
switch (auto-detection by default), so numpy stays an optional
dependency and the ``c`` leg (a lazily cc-compiled shared object, see
:mod:`repro.kernels.native`) stays an optional toolchain.  Kernel
outputs are always plain Python ints and lists at cache boundaries —
downstream consumers never observe backend-native scalars.
"""

from .backend import (
    BACKEND_CODES,
    KERNELS_ENV,
    accelerated,
    active_backend,
    backend_code,
    fallback_note,
    force_backend,
    get_native,
    get_numpy,
    native_available,
    numpy_available,
    refresh_env,
)
from .ops import (
    bits_to_list,
    count_members,
    filter_members,
    filter_members_multi,
    filter_pairs,
    intersect_sorted,
    pack_bits,
    pack_bits_from_set,
)
from .sampling import draw_indices, gather_pairs, interleave_pairs
from .views import as_int64, member_array, pair_arrays

__all__ = [
    "BACKEND_CODES",
    "KERNELS_ENV",
    "accelerated",
    "active_backend",
    "backend_code",
    "as_int64",
    "bits_to_list",
    "count_members",
    "draw_indices",
    "fallback_note",
    "filter_members",
    "filter_members_multi",
    "filter_pairs",
    "force_backend",
    "gather_pairs",
    "get_native",
    "get_numpy",
    "interleave_pairs",
    "intersect_sorted",
    "member_array",
    "native_available",
    "numpy_available",
    "pack_bits",
    "pack_bits_from_set",
    "pair_arrays",
    "refresh_env",
]

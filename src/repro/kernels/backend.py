"""Kernel backend selection: ``GCARE_KERNELS=numpy|python``.

numpy is an optional dependency (the ``[perf]`` extra).  The import is
guarded once at module load; the *choice* of backend is re-read from the
environment on every :func:`active_backend` call so tests (and the CLI)
can flip modes without re-importing the package.  When numpy is
requested but unavailable the backend silently degrades to the pure-
Python fallback and :func:`fallback_note` explains why — the ``gcare
sweep`` entry point surfaces that note once at startup.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

#: environment variable steering kernel dispatch
KERNELS_ENV = "GCARE_KERNELS"

try:  # numpy is the optional [perf] extra; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: process-local override installed by :func:`force_backend`; takes
#: precedence over the environment (tests flip backends per block)
_FORCED: Optional[str] = None

#: the environment switch, read once at import (kernel dispatch sits on
#: estimation hot paths; a per-call os.environ lookup is measurable).
#: :func:`refresh_env` re-reads it for tests and CLI entry points.
_ENV_VALUE = ""


def refresh_env() -> None:
    """Re-read ``GCARE_KERNELS`` from the environment.

    Needed after mutating ``os.environ`` in-process (tests); spawned
    worker processes inherit the environment and pick the value up at
    import time on their own.
    """
    global _ENV_VALUE
    _ENV_VALUE = os.environ.get(KERNELS_ENV, "").strip().lower()


refresh_env()


def numpy_available() -> bool:
    """True when the numpy import succeeded (regardless of the switch)."""
    return _np is not None


def _requested() -> str:
    if _FORCED is not None:
        return _FORCED
    return _ENV_VALUE


def active_backend() -> str:
    """The backend kernels dispatch on right now: ``numpy`` or ``python``.

    ``GCARE_KERNELS=python`` forces the fallback even with numpy
    installed; ``GCARE_KERNELS=numpy`` (or no setting) uses numpy when
    available.  Unknown values fall back to auto-detection.
    """
    choice = _requested()
    if choice == "python":
        return "python"
    return "numpy" if _np is not None else "python"


def get_numpy():
    """The numpy module when the active backend is ``numpy``, else None.

    This is the single dispatch point of every kernel: a non-None return
    means "vectorize", None means "pure-Python twin".
    """
    return _np if active_backend() == "numpy" else None


def fallback_note() -> Optional[str]:
    """One-line explanation when running degraded, else None."""
    choice = _requested()
    if _np is None and choice != "python":
        return (
            "kernels: numpy not installed, using the pure-Python fallback "
            "(pip install 'gcare-repro[perf]' for vectorized kernels)"
        )
    if choice == "python" and _np is not None:
        return "kernels: pure-Python fallback forced via GCARE_KERNELS=python"
    return None


@contextmanager
def force_backend(name: str):
    """Temporarily pin the backend (``numpy`` or ``python``).

    Used by the differential tests and the benchmark suite to measure
    both paths in one process.  Forcing ``numpy`` without numpy
    installed still degrades to ``python`` (the guard above wins).
    """
    global _FORCED
    if name not in ("numpy", "python"):
        raise ValueError(f"unknown kernel backend: {name!r}")
    previous = _FORCED
    _FORCED = name
    try:
        yield
    finally:
        _FORCED = previous

"""Kernel backend selection: ``GCARE_KERNELS=c|numpy|python``.

Three legs share one dispatch point.  numpy is an optional dependency
(the ``[perf]`` extra) guarded once at module load.  The ``c`` leg is a
small native library compiled lazily from :file:`_native.c` with the
system ``cc`` and loaded via ctypes (see :mod:`repro.kernels.native`);
requesting it without a toolchain — or with a failing compile — silently
degrades to numpy-or-python and :func:`fallback_note` explains why.  The
*choice* of backend is re-read from the environment on every
:func:`active_backend` call so tests (and the CLI) can flip modes without
re-importing the package.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

#: environment variable steering kernel dispatch
KERNELS_ENV = "GCARE_KERNELS"

#: numeric codes for the backend gauge/metric (stable across releases)
BACKEND_CODES = {"python": 0, "numpy": 1, "c": 2}

try:  # numpy is the optional [perf] extra; everything works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: process-local override installed by :func:`force_backend`; takes
#: precedence over the environment (tests flip backends per block)
_FORCED: Optional[str] = None

#: the environment switch, read once at import (kernel dispatch sits on
#: estimation hot paths; a per-call os.environ lookup is measurable).
#: :func:`refresh_env` re-reads it for tests and CLI entry points.
_ENV_VALUE = ""

#: memoized :func:`active_backend` resolution (+ the loaded native
#: library when it resolves to ``c``).  Dispatch runs per kernel call,
#: so resolution must be a couple of attribute reads — anything that
#: can change the outcome (:func:`refresh_env`, :func:`force_backend`,
#: ``native.reset_for_tests``) invalidates it.
_RESOLVED: Optional[str] = None
_RESOLVED_LIB = None


def _invalidate() -> None:
    global _RESOLVED, _RESOLVED_LIB
    _RESOLVED = None
    _RESOLVED_LIB = None


def refresh_env() -> None:
    """Re-read ``GCARE_KERNELS`` from the environment.

    Needed after mutating ``os.environ`` in-process (tests); spawned
    worker processes inherit the environment and pick the value up at
    import time on their own.
    """
    global _ENV_VALUE
    _ENV_VALUE = os.environ.get(KERNELS_ENV, "").strip().lower()
    _invalidate()


refresh_env()


def numpy_available() -> bool:
    """True when the numpy import succeeded (regardless of the switch)."""
    return _np is not None


def native_available() -> bool:
    """True when the native library compiles and loads on this machine."""
    from . import native

    return native.load() is not None


def _requested() -> str:
    if _FORCED is not None:
        return _FORCED
    return _ENV_VALUE


def active_backend() -> str:
    """The backend kernels dispatch on right now: ``c``/``numpy``/``python``.

    ``GCARE_KERNELS=python`` forces the fallback even with numpy
    installed; ``GCARE_KERNELS=c`` uses the native library when it
    compiles and loads, degrading to numpy-or-python otherwise;
    ``GCARE_KERNELS=numpy`` (or no setting) uses numpy when available.
    Unknown values fall back to auto-detection.
    """
    global _RESOLVED, _RESOLVED_LIB
    if _RESOLVED is not None:
        return _RESOLVED
    choice = _requested()
    lib = None
    if choice == "python":
        resolved = "python"
    elif choice == "c":
        from . import native

        lib = native.load()
        if lib is not None:
            resolved = "c"
        else:
            resolved = "numpy" if _np is not None else "python"
    else:
        resolved = "numpy" if _np is not None else "python"
    _RESOLVED, _RESOLVED_LIB = resolved, lib
    return resolved


def backend_code(name: Optional[str] = None) -> int:
    """Numeric code for a backend name (default: the active one)."""
    return BACKEND_CODES[name if name is not None else active_backend()]


def get_numpy():
    """The numpy module when the active backend is ``numpy``, else None.

    One of the two dispatch points of every kernel: a non-None return
    means "vectorize with numpy"; see :func:`get_native` for the C leg.
    """
    return _np if active_backend() == "numpy" else None


def get_native():
    """The loaded native library when the active backend is ``c``.

    Mutually exclusive with :func:`get_numpy` by construction — at most
    one of them returns non-None for any given call.
    """
    if active_backend() != "c":
        return None
    return _RESOLVED_LIB


def accelerated() -> bool:
    """True when kernels dispatch to an accelerated leg (numpy or c)."""
    return active_backend() != "python"


def fallback_note() -> Optional[str]:
    """One-line explanation when running degraded, else None."""
    choice = _requested()
    if choice == "c" and not native_available():
        from . import native

        reason = native.fallback_reason() or "native kernels unavailable"
        return (
            f"kernels: {reason}; using the "
            f"{'numpy' if _np is not None else 'pure-Python'} fallback"
        )
    if _np is None and choice not in ("python", "c"):
        return (
            "kernels: numpy not installed, using the pure-Python fallback "
            "(pip install 'gcare-repro[perf]' for vectorized kernels)"
        )
    if choice == "python" and _np is not None:
        return "kernels: pure-Python fallback forced via GCARE_KERNELS=python"
    return None


@contextmanager
def force_backend(name: str):
    """Temporarily pin the backend (``c``, ``numpy`` or ``python``).

    Used by the differential tests and the benchmark suite to measure
    all legs in one process.  Forcing ``numpy`` without numpy installed
    (or ``c`` without a working toolchain) still degrades — the guards
    in :func:`active_backend` win.
    """
    global _FORCED
    if name not in ("c", "numpy", "python"):
        raise ValueError(f"unknown kernel backend: {name!r}")
    previous = _FORCED
    _FORCED = name
    _invalidate()
    try:
        yield
    finally:
        _FORCED = previous
        _invalidate()

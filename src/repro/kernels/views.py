"""Zero-copy int64 views over the sealed graph's ``array('q')`` arenas.

``array('q')`` and the read-only shared-memory segments produced by
:meth:`CompactGraph.to_shm` both expose the buffer protocol, so both
accelerated backends alias them without copying — numpy via
``np.frombuffer``, the native leg via a pinned-buffer
:class:`~repro.kernels.native.NativeView` — and attaching to a
shared-memory graph never duplicates an arena.  Views are read-only
(the substrate is sealed; nothing may write through them) and cached in
the graph's ``shared_cache`` keyed by backend kind, so every consumer
of one graph shares one view per arena and in-process backend flips
(``force_backend``) never serve one leg's views to another.
"""

from __future__ import annotations

from array import array
from typing import Optional, Tuple

from .backend import get_native, get_numpy


def as_int64(buf):
    """A read-only ``int64`` view aliasing ``buf`` (no copy).

    ``buf`` is an ``array('q')`` or a (possibly read-only) memoryview of
    one — the two buffer shapes the sealed substrate stores.  Returns a
    numpy view on the numpy backend, a :class:`NativeView` on the c
    backend, and None when the active backend is pure-Python.
    """
    np = get_numpy()
    if np is not None:
        view = np.frombuffer(buf, dtype=np.int64)
        view.flags.writeable = False
        return view
    if get_native() is not None:
        from . import native

        if isinstance(buf, array) and buf.typecode == "q":
            return native.NativeView.from_array(buf)
        return native.NativeView.from_buffer(buf)
    return None


def _cache_of(graph):
    return getattr(graph, "shared_cache", None)


def member_array(graph, labels):
    """Sorted ``int64`` array of ``graph.labels_member_set(labels)``.

    The sorted-unique shape is what the membership kernels binary-search
    against.  Cached per (backend kind, label set) in the graph's shared
    cache; returns None on the pure-Python backend.
    """
    np = get_numpy()
    lib = None if np is not None else get_native()
    if np is None and lib is None:
        return None
    kind = "numpy" if np is not None else "c"
    labels = frozenset(labels)
    cache = _cache_of(graph)
    key = ("kernels.members", kind, labels)
    if cache is not None:
        arr = cache.get(key)
        if arr is not None:
            return arr
    members = graph.labels_member_set(labels)
    if np is not None:
        arr = np.fromiter(members, dtype=np.int64, count=len(members))
        arr.sort()
        arr.flags.writeable = False
    else:
        from . import native

        arr = native.NativeView.from_array(array("q", sorted(members)))
    if cache is not None:
        cache[key] = arr
    return arr


def pair_arrays(graph, label: int) -> Optional[Tuple[object, object]]:
    """``(src, dst)`` int64 views over one edge label's pair arenas.

    Zero-copy aliases of the sealed graph's per-label ``(src, dst)``
    arrays, in insertion order — index ``i`` is ``edge_pairs(label)[i]``.
    Returns None on the pure-Python backend or when the graph does not
    expose its pair buffers (dict-backed graphs).
    """
    np = get_numpy()
    lib = None if np is not None else get_native()
    if np is None and lib is None:
        return None
    buffers = getattr(graph, "edge_pair_buffers", None)
    if buffers is None:
        return None
    kind = "numpy" if np is not None else "c"
    cache = _cache_of(graph)
    key = ("kernels.pairs", kind, label)
    if cache is not None:
        views = cache.get(key)
        if views is not None:
            return views
    raw = buffers(label)
    if raw is None:
        return None
    views = (as_int64(raw[0]), as_int64(raw[1]))
    if cache is not None:
        cache[key] = views
    return views

/* Native CSR kernels for the sealed graph substrate (GCARE_KERNELS=c).
 *
 * Compiled lazily by repro.kernels.native with the system `cc` and loaded
 * via ctypes; every entry point operates on raw int64 buffers aliasing the
 * sealed graph's array('q') arenas (local seals and read-only /dev/shm
 * attachments look identical here — both are flat little-endian int64).
 *
 * Two families live in this file:
 *
 *  1. the PR 6 batch-op surface (intersect / membership filters / pair
 *     filters / bit packing / slot-table interleave) plus an exact
 *     CPython-Mersenne-Twister `draw_indices`, each the C twin of a
 *     pure-Python kernel in repro.kernels.ops / repro.kernels.sampling;
 *
 *  2. `gc_match`, a full transliteration of the sealed matcher's
 *     explicit-stack search loop (HomomorphismCounter._search_sealed),
 *     producing bit-identical counts *and* backtracking step counts.
 *     The count memo — the only memo that affects the observable step
 *     count — replicates the Python dict's keying and its insertion cap
 *     exactly; candidate/count memos are pure caches and only have to
 *     preserve candidate ORDER, which the CSR segments give for free.
 *
 * Counts use saturating 128-bit arithmetic: Python promotes to big ints,
 * but every value that is ever *stored* (memo entries) or *returned*
 * (final counts) is provably below the count cap (<= 2^62) because the
 * search aborts the moment the global count reaches the cap; only
 * transient leaf products can exceed int64, and those only feed the
 * cap comparison, where saturation at 2^100 preserves the outcome.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#define API __attribute__((visibility("default")))

/* Bumped whenever any exported signature changes; the loader refuses a
 * cached .so whose ABI does not match (belt to the source-hash braces). */
#define GC_ABI_VERSION 1

API int64_t gc_abi_version(void) { return GC_ABI_VERSION; }

/* ------------------------------------------------------------------ */
/* small shared helpers                                                */
/* ------------------------------------------------------------------ */

static int64_t lower_bound(const int64_t *arr, int64_t n, int64_t v) {
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (arr[mid] < v)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

static int contains_sorted(const int64_t *arr, int64_t n, int64_t v) {
    int64_t i = lower_bound(arr, n, v);
    return i < n && arr[i] == v;
}

/* ------------------------------------------------------------------ */
/* batch ops (the repro.kernels.ops surface)                           */
/* ------------------------------------------------------------------ */

/* Ascending intersection of two sorted duplicate-free arrays. */
API int64_t gc_intersect_sorted(const int64_t *a, int64_t na,
                                const int64_t *b, int64_t nb, int64_t *out) {
    int64_t i = 0, j = 0, k = 0;
    while (i < na && j < nb) {
        int64_t x = a[i], y = b[j];
        if (x == y) {
            out[k++] = x;
            i++;
            j++;
        } else if (x < y) {
            i++;
        } else {
            j++;
        }
    }
    return k;
}

/* Order-preserving membership filter against a sorted domain. */
API int64_t gc_filter_members(const int64_t *values, int64_t n,
                              const int64_t *members, int64_t m,
                              int64_t *out) {
    int64_t k = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t v = values[i];
        if (contains_sorted(members, m, v))
            out[k++] = v;
    }
    return k;
}

API int64_t gc_count_members(const int64_t *values, int64_t n,
                             const int64_t *members, int64_t m) {
    int64_t k = 0;
    for (int64_t i = 0; i < n; i++)
        k += contains_sorted(members, m, values[i]);
    return k;
}

/* Membership filter against several sorted domains at once. */
API int64_t gc_filter_members_multi(const int64_t *values, int64_t n,
                                    const int64_t *const *arrs,
                                    const int64_t *lens, int64_t narrs,
                                    int64_t *out) {
    int64_t k = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t v = values[i];
        int ok = 1;
        for (int64_t a = 0; a < narrs; a++) {
            if (!contains_sorted(arrs[a], lens[a], v)) {
                ok = 0;
                break;
            }
        }
        if (ok)
            out[k++] = v;
    }
    return k;
}

/* Endpoint-filtered pair list; a negative domain length means that
 * endpoint is unconstrained.  Survivors are written interleaved
 * [s0, d0, s1, d1, ...]; the return value is the surviving pair count. */
API int64_t gc_filter_pairs(const int64_t *src, const int64_t *dst, int64_t n,
                            const int64_t *src_members, int64_t nsrc,
                            const int64_t *dst_members, int64_t ndst,
                            int64_t *out) {
    int64_t k = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t s = src[i], d = dst[i];
        if (nsrc >= 0 && !contains_sorted(src_members, nsrc, s))
            continue;
        if (ndst >= 0 && !contains_sorted(dst_members, ndst, d))
            continue;
        out[2 * k] = s;
        out[2 * k + 1] = d;
        k++;
    }
    return k;
}

/* Scatter ids into a little-endian byte bitset (bit v of bits[] set). */
API void gc_pack_bits(const int64_t *values, int64_t n, unsigned char *bits) {
    for (int64_t i = 0; i < n; i++) {
        int64_t v = values[i];
        bits[v >> 3] |= (unsigned char)(1u << (v & 7));
    }
}

/* Decode a little-endian byte bitset into ascending set positions. */
API int64_t gc_bits_to_list(const unsigned char *bits, int64_t nbytes,
                            int64_t *out) {
    int64_t k = 0;
    for (int64_t byte = 0; byte < nbytes; byte++) {
        unsigned int b = bits[byte];
        while (b) {
            unsigned int low = b & (~b + 1u);
            out[k++] = byte * 8 + __builtin_ctz(low);
            b ^= low;
        }
    }
    return k;
}

/* IMPR's slot-table shape: out[2i] = src[i], out[2i+1] = dst[i]. */
API void gc_interleave(const int64_t *src, const int64_t *dst, int64_t n,
                       int64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        out[2 * i] = src[i];
        out[2 * i + 1] = dst[i];
    }
}

/* Byte-per-vertex membership mask from an (unordered) member list. */
API void gc_build_mask(const int64_t *members, int64_t n,
                       unsigned char *mask) {
    for (int64_t i = 0; i < n; i++)
        mask[members[i]] = 1;
}

/* ------------------------------------------------------------------ */
/* Mersenne Twister: CPython's exact genrand_uint32 + _randbelow       */
/* ------------------------------------------------------------------ */

#define MT_N 624
#define MT_M 397
#define MT_MATRIX_A 0x9908b0dfU
#define MT_UPPER_MASK 0x80000000U
#define MT_LOWER_MASK 0x7fffffffU

static uint32_t mt_genrand(uint32_t *mt, int64_t *index) {
    uint32_t y;
    static const uint32_t mag01[2] = {0x0U, MT_MATRIX_A};
    if (*index >= MT_N) {
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ mag01[y & 0x1U];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & MT_UPPER_MASK) | (mt[kk + 1] & MT_LOWER_MASK);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag01[y & 0x1U];
        }
        y = (mt[MT_N - 1] & MT_UPPER_MASK) | (mt[0] & MT_LOWER_MASK);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ mag01[y & 0x1U];
        *index = 0;
    }
    y = mt[(*index)++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680U;
    y ^= (y << 15) & 0xefc60000U;
    y ^= (y >> 18);
    return y;
}

/* k scalar randrange(n) draws: bit-exact CPython rejection sampling
 * (getrandbits(bit_length(n)) redrawn while >= n), mutating the caller's
 * 624-word state + index in place so Random.setstate() round-trips the
 * stream.  Requires 1 <= n <= 2^32 (bit_length <= 32; the Python wrapper
 * guards and falls back to scalar draws past that). */
API int64_t gc_draw_indices(uint32_t *state, int64_t *index, int64_t n,
                            int64_t k, int64_t *out) {
    int bits = 0;
    uint64_t top = (uint64_t)(n - 1);
    do {
        bits++;
        top >>= 1;
    } while (top);
    int shift = 32 - bits;
    for (int64_t i = 0; i < k; i++) {
        uint32_t r = mt_genrand(state, index) >> shift;
        while ((uint64_t)r >= (uint64_t)n)
            r = mt_genrand(state, index) >> shift;
        out[i] = (int64_t)r;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* the sealed matcher                                                  */
/* ------------------------------------------------------------------ */

/* Saturating 128-bit counters: every stored/returned value is < cap
 * (<= 2^62); the saturation ceiling only decides cap comparisons. */
typedef __int128 gc_count_t;
#define GC_SAT (((gc_count_t)1) << 100)

static inline gc_count_t sat_add(gc_count_t a, gc_count_t b) {
    gc_count_t s = a + b;
    return s > GC_SAT ? GC_SAT : s;
}

static inline gc_count_t sat_mul(gc_count_t a, int64_t b) {
    if (a == 0 || b == 0)
        return 0;
    if (a > GC_SAT / b)
        return GC_SAT;
    return a * b;
}

/* --- open-addressing hash map: int64[] key -> (v0, v1) -------------- */

typedef struct {
    uint64_t *hashes; /* 0 = empty slot; stored hashes have bit 0 set */
    int64_t *koff;
    int32_t *klen;
    int64_t *v0;
    int64_t *v1;
    int64_t mask; /* capacity - 1 */
    int64_t count;
    int64_t limit; /* mirror of Python's len(memo) < _MEMO_MAX gate */
    int64_t *keys; /* growable key arena (offsets stay valid on grow) */
    int64_t keys_len, keys_cap;
    int oom;
} gc_map;

static uint64_t gc_hash(const int64_t *key, int32_t klen) {
    uint64_t h = 1469598103934665603ULL;
    for (int32_t i = 0; i < klen; i++) {
        uint64_t x = (uint64_t)key[i];
        h ^= x;
        h *= 1099511628211ULL;
        h ^= h >> 29;
    }
    return h | 1ULL;
}

static int gc_map_init(gc_map *m, int64_t limit) {
    m->mask = 1023;
    m->count = 0;
    m->limit = limit;
    m->keys_len = 0;
    m->keys_cap = 4096;
    m->oom = 0;
    m->hashes = calloc((size_t)(m->mask + 1), sizeof(uint64_t));
    m->koff = malloc((size_t)(m->mask + 1) * sizeof(int64_t));
    m->klen = malloc((size_t)(m->mask + 1) * sizeof(int32_t));
    m->v0 = malloc((size_t)(m->mask + 1) * sizeof(int64_t));
    m->v1 = malloc((size_t)(m->mask + 1) * sizeof(int64_t));
    m->keys = malloc((size_t)m->keys_cap * sizeof(int64_t));
    return m->hashes && m->koff && m->klen && m->v0 && m->v1 && m->keys;
}

static void gc_map_free(gc_map *m) {
    free(m->hashes);
    free(m->koff);
    free(m->klen);
    free(m->v0);
    free(m->v1);
    free(m->keys);
}

static int gc_map_get(const gc_map *m, const int64_t *key, int32_t klen,
                      int64_t *v0, int64_t *v1) {
    uint64_t h = gc_hash(key, klen);
    int64_t i = (int64_t)(h & (uint64_t)m->mask);
    while (m->hashes[i]) {
        if (m->hashes[i] == h && m->klen[i] == klen &&
            memcmp(m->keys + m->koff[i], key,
                   (size_t)klen * sizeof(int64_t)) == 0) {
            *v0 = m->v0[i];
            *v1 = m->v1[i];
            return 1;
        }
        i = (i + 1) & m->mask;
    }
    return 0;
}

static int gc_map_grow(gc_map *m) {
    int64_t old_cap = m->mask + 1;
    int64_t new_cap = old_cap * 2;
    uint64_t *hashes = calloc((size_t)new_cap, sizeof(uint64_t));
    int64_t *koff = malloc((size_t)new_cap * sizeof(int64_t));
    int32_t *klen = malloc((size_t)new_cap * sizeof(int32_t));
    int64_t *v0 = malloc((size_t)new_cap * sizeof(int64_t));
    int64_t *v1 = malloc((size_t)new_cap * sizeof(int64_t));
    if (!hashes || !koff || !klen || !v0 || !v1) {
        free(hashes);
        free(koff);
        free(klen);
        free(v0);
        free(v1);
        return 0;
    }
    int64_t mask = new_cap - 1;
    for (int64_t i = 0; i < old_cap; i++) {
        if (!m->hashes[i])
            continue;
        int64_t j = (int64_t)(m->hashes[i] & (uint64_t)mask);
        while (hashes[j])
            j = (j + 1) & mask;
        hashes[j] = m->hashes[i];
        koff[j] = m->koff[i];
        klen[j] = m->klen[i];
        v0[j] = m->v0[i];
        v1[j] = m->v1[i];
    }
    free(m->hashes);
    free(m->koff);
    free(m->klen);
    free(m->v0);
    free(m->v1);
    m->hashes = hashes;
    m->koff = koff;
    m->klen = klen;
    m->v0 = v0;
    m->v1 = v1;
    m->mask = mask;
    return 1;
}

/* Insert (caller guarantees the key is absent).  Skipped at the limit —
 * exactly Python's `if len(memo) < _MEMO_MAX: memo[key] = value`. */
static void gc_map_put(gc_map *m, const int64_t *key, int32_t klen,
                       int64_t v0, int64_t v1) {
    if (m->count >= m->limit || m->oom)
        return;
    if ((m->count + 1) * 2 > m->mask + 1 && !gc_map_grow(m)) {
        m->oom = 1; /* stop caching; search results stay correct */
        return;
    }
    if (m->keys_len + klen > m->keys_cap) {
        int64_t cap = m->keys_cap * 2;
        while (cap < m->keys_len + klen)
            cap *= 2;
        int64_t *keys = realloc(m->keys, (size_t)cap * sizeof(int64_t));
        if (!keys) {
            m->oom = 1;
            return;
        }
        m->keys = keys;
        m->keys_cap = cap;
    }
    uint64_t h = gc_hash(key, klen);
    int64_t i = (int64_t)(h & (uint64_t)m->mask);
    while (m->hashes[i])
        i = (i + 1) & m->mask;
    memcpy(m->keys + m->keys_len, key, (size_t)klen * sizeof(int64_t));
    m->hashes[i] = h;
    m->koff[i] = m->keys_len;
    m->klen[i] = (int32_t)klen;
    m->v0[i] = v0;
    m->v1[i] = v1;
    m->keys_len += klen;
    m->count++;
}

/* --- chunked candidate arena (pointers stay valid forever) ---------- */

typedef struct gc_chunk {
    struct gc_chunk *prev;
    int64_t used, cap;
    int64_t data[];
} gc_chunk;

typedef struct {
    gc_chunk *head;
} gc_arena;

#define GC_CHUNK_MIN (1 << 16)

static int64_t *gc_arena_alloc(gc_arena *arena, int64_t n) {
    gc_chunk *chunk = arena->head;
    if (!chunk || chunk->used + n > chunk->cap) {
        int64_t cap = n > GC_CHUNK_MIN ? n : GC_CHUNK_MIN;
        gc_chunk *fresh =
            malloc(sizeof(gc_chunk) + (size_t)cap * sizeof(int64_t));
        if (!fresh)
            return NULL;
        fresh->prev = chunk;
        fresh->used = 0;
        fresh->cap = cap;
        arena->head = fresh;
        chunk = fresh;
    }
    int64_t *out = chunk->data + chunk->used;
    chunk->used += n;
    return out;
}

static void gc_arena_free(gc_arena *arena) {
    gc_chunk *chunk = arena->head;
    while (chunk) {
        gc_chunk *prev = chunk->prev;
        free(chunk);
        chunk = prev;
    }
    arena->head = NULL;
}

/* --- descriptors ---------------------------------------------------- */

typedef struct {
    const int64_t *lab_off, *lab, *seg_off, *targets, *sorted_targets;
} gc_csr;

static void seg_lookup(const gc_csr *csr, int64_t v, int64_t label,
                       int64_t *start, int64_t *stop) {
    int64_t lo = csr->lab_off[v], hi = csr->lab_off[v + 1];
    const int64_t *lab = csr->lab;
    for (int64_t k = lo; k < hi; k++) {
        if (lab[k] == label) {
            *start = csr->seg_off[k];
            *stop = csr->seg_off[k + 1];
            return;
        }
    }
    *start = 0;
    *stop = 0;
}

typedef struct {
    int64_t csr; /* 0 = fwd, 1 = rev */
    int64_t label;
    int64_t anchor; /* query vertex whose binding anchors this edge */
} gc_constraint;

typedef struct {
    int64_t u;
    int64_t nc;
    const gc_constraint *cons;
    const uint8_t *mask;    /* per-data-vertex label mask; NULL = none */
    const int64_t *statics; /* anchor-free candidate list (nc == 0) */
    int64_t static_len;
    gc_map cand; /* anchor values -> (candidate ptr, len); pure cache */
    gc_map cnt;  /* anchor values -> candidate count; pure cache */
} gc_plan;

typedef struct {
    int64_t u;
    int64_t plan;
    const int64_t *sep; /* separator query vertices; len < 0 = no memo */
    int64_t sep_len;
    int64_t leaf_ok;
} gc_depth;

#define GC_MAX_KEY 33 /* depth + up to 32 separator values */

typedef struct {
    int64_t u;
    int32_t key_len; /* < 0: this node's subtree is not memoizable */
    int64_t key[GC_MAX_KEY];
    const int64_t *cands;
    int64_t ncand;
    int64_t next;
    gc_count_t total;
} gc_frame;

typedef struct {
    gc_csr fwd, rev;
    gc_plan *plans;
    int64_t n_plans;
    gc_depth *depths;
    const int64_t *leaf_plan; /* per depth: leaf-product plan index */
    int64_t nq;
    int64_t *assignment;
    gc_arena arena;
    gc_map count_memo;
} gc_ctx;

/* Candidate list for one plan under the current assignment.  Order is
 * the bit-identity contract:
 *   nc == 0            -> the precomputed static list (Python computes
 *                         label_members / vertices() once per plan);
 *   nc == 1, no mask   -> the raw targets segment: insertion order,
 *                         duplicates preserved (zero copy);
 *   nc == 1, mask      -> the segment filtered by the mask, order and
 *                         duplicates preserved (= graph-level filtered
 *                         adjacency);
 *   nc > 1             -> ascending duplicate-free intersection of the
 *                         constraint sets (and the mask) — exactly the
 *                         decoded big-int AND of the bitset kernel.
 * Returns 0 on allocation failure. */
static int plan_candidates(gc_ctx *ctx, gc_plan *plan, const int64_t **out,
                           int64_t *out_len) {
    if (plan->nc == 0) {
        *out = plan->statics;
        *out_len = plan->static_len;
        return 1;
    }
    const gc_constraint *cons = plan->cons;
    int64_t vals[GC_MAX_KEY];
    for (int64_t i = 0; i < plan->nc; i++)
        vals[i] = ctx->assignment[cons[i].anchor];
    if (plan->nc == 1) {
        const gc_csr *csr = cons[0].csr ? &ctx->rev : &ctx->fwd;
        int64_t start, stop;
        seg_lookup(csr, vals[0], cons[0].label, &start, &stop);
        if (plan->mask == NULL) {
            *out = csr->targets + start;
            *out_len = stop - start;
            return 1;
        }
        int64_t v0, v1;
        if (gc_map_get(&plan->cand, vals, 1, &v0, &v1)) {
            *out = (const int64_t *)(intptr_t)v0;
            *out_len = v1;
            return 1;
        }
        int64_t n = stop - start;
        int64_t *buf = gc_arena_alloc(&ctx->arena, n);
        if (n && !buf)
            return 0;
        const int64_t *targets = csr->targets;
        const uint8_t *mask = plan->mask;
        int64_t k = 0;
        for (int64_t i = start; i < stop; i++) {
            int64_t t = targets[i];
            if (mask[t])
                buf[k++] = t;
        }
        gc_map_put(&plan->cand, vals, 1, (int64_t)(intptr_t)buf, k);
        *out = buf;
        *out_len = k;
        return 1;
    }
    int64_t v0, v1;
    if (gc_map_get(&plan->cand, vals, (int32_t)plan->nc, &v0, &v1)) {
        *out = (const int64_t *)(intptr_t)v0;
        *out_len = v1;
        return 1;
    }
    /* sparsest-first: iterate the smallest sorted segment, probe the rest */
    int64_t starts[GC_MAX_KEY], stops[GC_MAX_KEY];
    int64_t base = 0, base_len = -1;
    for (int64_t i = 0; i < plan->nc; i++) {
        const gc_csr *csr = cons[i].csr ? &ctx->rev : &ctx->fwd;
        seg_lookup(csr, vals[i], cons[i].label, &starts[i], &stops[i]);
        int64_t len = stops[i] - starts[i];
        if (base_len < 0 || len < base_len) {
            base_len = len;
            base = i;
        }
    }
    int64_t *buf = gc_arena_alloc(&ctx->arena, base_len);
    if (base_len && !buf)
        return 0;
    const gc_csr *base_csr = cons[base].csr ? &ctx->rev : &ctx->fwd;
    const int64_t *seg = base_csr->sorted_targets;
    const uint8_t *mask = plan->mask;
    int64_t k = 0;
    int64_t prev = 0;
    int have_prev = 0;
    for (int64_t i = starts[base]; i < stops[base]; i++) {
        int64_t t = seg[i];
        if (have_prev && t == prev)
            continue; /* sorted segment: duplicates are adjacent */
        prev = t;
        have_prev = 1;
        if (mask && !mask[t])
            continue;
        int ok = 1;
        for (int64_t c = 0; c < plan->nc; c++) {
            if (c == base)
                continue;
            const gc_csr *csr = cons[c].csr ? &ctx->rev : &ctx->fwd;
            if (!contains_sorted(csr->sorted_targets + starts[c],
                                 stops[c] - starts[c], t)) {
                ok = 0;
                break;
            }
        }
        if (ok)
            buf[k++] = t;
    }
    gc_map_put(&plan->cand, vals, (int32_t)plan->nc, (int64_t)(intptr_t)buf,
               k);
    *out = buf;
    *out_len = k;
    return 1;
}

/* Candidate COUNT for one plan — the leaf product's only need.  Mirrors
 * _plan_count: a single unlabeled constraint counts the raw segment
 * (duplicates included); every other anchored shape counts the DISTINCT
 * intersection (the bitset popcount dedups). */
static int64_t plan_count(gc_ctx *ctx, gc_plan *plan) {
    if (plan->nc == 0)
        return plan->static_len;
    const gc_constraint *cons = plan->cons;
    int64_t vals[GC_MAX_KEY];
    for (int64_t i = 0; i < plan->nc; i++)
        vals[i] = ctx->assignment[cons[i].anchor];
    if (plan->nc == 1 && plan->mask == NULL) {
        const gc_csr *csr = cons[0].csr ? &ctx->rev : &ctx->fwd;
        int64_t start, stop;
        seg_lookup(csr, vals[0], cons[0].label, &start, &stop);
        return stop - start;
    }
    int64_t v0, v1;
    if (gc_map_get(&plan->cnt, vals, (int32_t)plan->nc, &v0, &v1))
        return v0;
    int64_t starts[GC_MAX_KEY], stops[GC_MAX_KEY];
    int64_t base = 0, base_len = -1;
    for (int64_t i = 0; i < plan->nc; i++) {
        const gc_csr *csr = cons[i].csr ? &ctx->rev : &ctx->fwd;
        seg_lookup(csr, vals[i], cons[i].label, &starts[i], &stops[i]);
        int64_t len = stops[i] - starts[i];
        if (base_len < 0 || len < base_len) {
            base_len = len;
            base = i;
        }
    }
    const gc_csr *base_csr = cons[base].csr ? &ctx->rev : &ctx->fwd;
    const int64_t *seg = base_csr->sorted_targets;
    const uint8_t *mask = plan->mask;
    int64_t count = 0;
    int64_t prev = 0;
    int have_prev = 0;
    for (int64_t i = starts[base]; i < stops[base]; i++) {
        int64_t t = seg[i];
        if (have_prev && t == prev)
            continue;
        prev = t;
        have_prev = 1;
        if (mask && !mask[t])
            continue;
        int ok = 1;
        for (int64_t c = 0; c < plan->nc; c++) {
            if (c == base)
                continue;
            const gc_csr *csr = cons[c].csr ? &ctx->rev : &ctx->fwd;
            if (!contains_sorted(csr->sorted_targets + starts[c],
                                 stops[c] - starts[c], t)) {
                ok = 0;
                break;
            }
        }
        count += ok;
    }
    gc_map_put(&plan->cnt, vals, (int32_t)plan->nc, count, 0);
    return count;
}

static double monotonic_seconds(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

#define GC_MEMO_MAX (1 << 18) /* = HomomorphismCounter._MEMO_MAX */

#define GC_OK 0
#define GC_ERR_ALLOC 1

/* The sealed search loop.  Descriptor layout (all int64 rows):
 *   plan_flat:  [u, nc, cons_off, mask_idx, static_idx] per plan,
 *               cons_flat holding [csr, label, anchor] triples;
 *   depth_flat: [u, plan, sep_off, sep_len (< 0 = not memoizable),
 *               leaf_ok] per depth, sep_flat holding separator vertices;
 *   leaf_plan:  per depth, the leaf-product plan index.
 * Outputs: out[0] = count, out[1] = steps, out[2] = complete. */
API int gc_match(const int64_t *const *csr_bufs, int64_t n_data, int64_t nq,
                 const int64_t *plan_flat, int64_t n_plans,
                 const int64_t *cons_flat, const uint8_t *const *mask_ptrs,
                 const int64_t *const *static_ptrs,
                 const int64_t *static_lens, const int64_t *depth_flat,
                 const int64_t *sep_flat, const int64_t *leaf_plan,
                 int64_t cap, double time_limit, int64_t *out) {
    (void)n_data;
    gc_ctx ctx;
    memset(&ctx, 0, sizeof(ctx));
    ctx.fwd.lab_off = csr_bufs[0];
    ctx.fwd.lab = csr_bufs[1];
    ctx.fwd.seg_off = csr_bufs[2];
    ctx.fwd.targets = csr_bufs[3];
    ctx.fwd.sorted_targets = csr_bufs[4];
    ctx.rev.lab_off = csr_bufs[5];
    ctx.rev.lab = csr_bufs[6];
    ctx.rev.seg_off = csr_bufs[7];
    ctx.rev.targets = csr_bufs[8];
    ctx.rev.sorted_targets = csr_bufs[9];
    ctx.nq = nq;
    ctx.leaf_plan = leaf_plan;

    int rc = GC_ERR_ALLOC;
    gc_frame *frames = NULL;
    int64_t steps = 0;
    gc_count_t count = 0;
    int complete = 1;

    ctx.plans = calloc((size_t)n_plans, sizeof(gc_plan));
    ctx.depths = calloc((size_t)nq, sizeof(gc_depth));
    ctx.assignment = calloc((size_t)nq, sizeof(int64_t));
    frames = calloc((size_t)nq, sizeof(gc_frame));
    if (!ctx.plans || !ctx.depths || !ctx.assignment || !frames)
        goto done;
    ctx.n_plans = n_plans;
    for (int64_t p = 0; p < n_plans; p++) {
        gc_plan *plan = &ctx.plans[p];
        const int64_t *row = plan_flat + 5 * p;
        plan->u = row[0];
        plan->nc = row[1];
        plan->cons = (const gc_constraint *)(cons_flat + row[2]);
        plan->mask = row[3] >= 0 ? mask_ptrs[row[3]] : NULL;
        if (row[4] >= 0) {
            plan->statics = static_ptrs[row[4]];
            plan->static_len = static_lens[row[4]];
        }
        if (!gc_map_init(&plan->cand, GC_MEMO_MAX) ||
            !gc_map_init(&plan->cnt, GC_MEMO_MAX))
            goto done;
    }
    for (int64_t d = 0; d < nq; d++) {
        const int64_t *row = depth_flat + 5 * d;
        ctx.depths[d].u = row[0];
        ctx.depths[d].plan = row[1];
        ctx.depths[d].sep = sep_flat + row[2];
        ctx.depths[d].sep_len = row[3];
        ctx.depths[d].leaf_ok = row[4];
    }
    if (!gc_map_init(&ctx.count_memo, GC_MEMO_MAX))
        goto done;

    double deadline = time_limit > 0 ? monotonic_seconds() + time_limit : 0;
    int has_deadline = time_limit > 0;

    /* --- the explicit-stack loop, node for node _search_sealed ------ */
    int64_t depth = 0;
    int nframes = 0;
    int has_ret = 0;
    gc_count_t ret = 0;
    int aborted = 0;
    rc = GC_OK;
    for (;;) {
        if (!has_ret) {
            steps++;
            if ((steps & 63) == 0 && has_deadline &&
                monotonic_seconds() > deadline) {
                aborted = 1;
                break;
            }
            if (depth == nq) { /* one complete embedding */
                count += 1;
                if (count >= cap) {
                    aborted = 1;
                    break;
                }
                ret = 1;
                has_ret = 1;
                continue;
            }
            gc_depth *de = &ctx.depths[depth];
            int64_t key[GC_MAX_KEY];
            int32_t key_len = -1;
            if (de->sep_len >= 0) { /* memoizable subtree */
                key[0] = depth;
                for (int64_t i = 0; i < de->sep_len; i++)
                    key[1 + i] = ctx.assignment[de->sep[i]];
                key_len = (int32_t)(de->sep_len + 1);
                int64_t v0, v1;
                if (gc_map_get(&ctx.count_memo, key, key_len, &v0, &v1)) {
                    ret = v0;
                    has_ret = 1;
                    count = sat_add(count, ret);
                    if (count >= cap) {
                        count = cap;
                        aborted = 1;
                        break;
                    }
                    continue;
                }
            }
            if (de->leaf_ok) { /* suffix independence: leaf product */
                gc_count_t product = 1;
                for (int64_t d = depth; d < nq; d++) {
                    product = sat_mul(
                        product, plan_count(&ctx, &ctx.plans[leaf_plan[d]]));
                    if (product == 0)
                        break;
                }
                count = sat_add(count, product);
                if (count >= cap) {
                    count = cap;
                    aborted = 1;
                    break;
                }
                if (key_len >= 0)
                    gc_map_put(&ctx.count_memo, key, key_len,
                               (int64_t)product, 0);
                ret = product;
                has_ret = 1;
                continue;
            }
            const int64_t *cands;
            int64_t ncand;
            if (!plan_candidates(&ctx, &ctx.plans[de->plan], &cands,
                                 &ncand)) {
                rc = GC_ERR_ALLOC;
                break;
            }
            if (ncand == 0) { /* empty subtree */
                if (key_len >= 0)
                    gc_map_put(&ctx.count_memo, key, key_len, 0, 0);
                ret = 0;
                has_ret = 1;
                continue;
            }
            ctx.assignment[de->u] = cands[0];
            gc_frame *frame = &frames[nframes++];
            frame->u = de->u;
            frame->key_len = key_len;
            if (key_len > 0)
                memcpy(frame->key, key, (size_t)key_len * sizeof(int64_t));
            frame->cands = cands;
            frame->ncand = ncand;
            frame->next = 1;
            frame->total = 0;
            depth++;
            continue;
        }
        /* a subtree finished with `ret` completions */
        if (nframes == 0)
            break; /* the root returned: search complete */
        gc_frame *frame = &frames[nframes - 1];
        frame->total = sat_add(frame->total, ret);
        if (frame->next < frame->ncand) { /* next sibling binding */
            ctx.assignment[frame->u] = frame->cands[frame->next++];
            has_ret = 0;
            continue;
        }
        nframes--;
        if (frame->key_len >= 0)
            gc_map_put(&ctx.count_memo, frame->key, frame->key_len,
                       (int64_t)frame->total, 0);
        ret = frame->total;
        depth--;
    }
    if (aborted)
        complete = 0;

done:
    if (ctx.plans) {
        for (int64_t p = 0; p < ctx.n_plans; p++) {
            gc_map_free(&ctx.plans[p].cand);
            gc_map_free(&ctx.plans[p].cnt);
        }
        free(ctx.plans);
    }
    free(ctx.depths);
    free(ctx.assignment);
    free(frames);
    gc_arena_free(&ctx.arena);
    gc_map_free(&ctx.count_memo);
    if (rc == GC_OK) {
        out[0] = (int64_t)count;
        out[1] = steps;
        out[2] = complete;
    }
    return rc;
}

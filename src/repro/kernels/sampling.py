"""Frontier-batched sampling that preserves scalar RNG streams.

G-CARE's reproducibility contract pins every estimate to a per-cell
``random.Random`` seed, and ``randrange`` consumes the underlying
Mersenne-Twister stream via rejection sampling — so a *vectorized* RNG
could never replay the same draw sequence.  The batching here therefore
happens one level up: a whole frontier's indices are drawn through a
single kernel call that performs the exact scalar draw sequence, and
the *post-draw* work (gathering the sampled tuples out of the CSR pair
arenas, building slot tables) is what gets vectorized.  A frontier of
``k`` draws consumes the stream exactly like ``k`` scalar
``rng.randrange(n)`` calls — the seed-stream property test pins this.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .backend import get_native, get_numpy


def draw_indices(rng, n: int, k: int) -> List[int]:
    """``k`` uniform indices in ``[0, n)`` — the scalar draw sequence.

    One kernel call per frontier; element ``i`` equals the value the
    ``i``-th consecutive ``rng.randrange(n)`` call would have produced.
    On the ``c`` backend large frontiers run the exact CPython
    Mersenne-Twister rejection sampler natively and round-trip the
    generator state, so the stream property holds bit-for-bit there too.
    """
    lib = get_native()
    if lib is not None:
        from . import native

        if k >= native.NATIVE_DRAW_MIN:
            drawn = native.draw_indices(lib, rng, n, k)
            if drawn is not None:
                return drawn
    randrange = rng.randrange
    return [randrange(n) for _ in range(k)]


def gather_pairs(
    pairs: Sequence[Tuple[int, int]],
    indices: Sequence[int],
) -> List[Tuple[int, int]]:
    """``[pairs[i] for i in indices]`` — the frontier's sampled tuples.

    Deliberately scalar: the pair tuples are already materialized in the
    cached relation, so indexing them allocates nothing, while a numpy
    fancy-index gather has to re-box every endpoint into fresh tuples
    (``zip`` over two ``tolist()`` columns) and measured 4-8x *slower*
    at every frontier size on this workload.  The kernel win for
    sampling is :func:`draw_indices` batching, not the gather.
    """
    return [pairs[i] for i in indices]


def interleave_pairs(
    pairs: Sequence[Tuple[int, int]],
    arrays=None,
    out: Optional[List[int]] = None,
) -> List[int]:
    """Flatten pairs endpoint-wise: ``[s0, d0, s1, d1, ...]``.

    This is IMPR's slot table shape — slot ``2i`` is the source and slot
    ``2i + 1`` the destination of edge ``i`` — built per label in one
    vectorized interleave instead of a per-edge append loop.  ``out``
    accumulates across labels.
    """
    result = out if out is not None else []
    np = get_numpy()
    if np is not None and arrays is not None and len(pairs) >= 8:
        src, dst = arrays
        merged = np.empty(2 * len(src), dtype=np.int64)
        merged[0::2] = src
        merged[1::2] = dst
        result.extend(merged.tolist())
        return result
    lib = get_native()
    if lib is not None and arrays is not None and len(pairs) >= 8:
        from . import native

        result.extend(native.interleave_pairs(lib, pairs, arrays))
        return result
    for s, d in pairs:
        result.append(s)
        result.append(d)
    return result

"""`gcare soak`: a seeded chaos-soak harness for the serving stack.

The batch chaos suite (`repro.faults` + the sweep contract tests) proves
the *estimation pipeline* degrades cleanly under injected faults.  This
module proves the *service* does: it boots a real daemon (real sockets,
real worker processes, real shared memory) and drives it for a bounded
wall-clock window through a deterministic schedule of hostile-client and
infrastructure faults, checking service-level invariants the whole time:

1. **every response is well-formed** — whatever a client sends (garbage
   frames, oversized bodies, expired deadlines, half-a-request), what
   comes back is a parseable protocol envelope with a known status, or a
   clean connection close for the slow-loris case;
2. **successful estimates are bit-identical to batch** — every 200's
   ``estimate`` must equal the corresponding :func:`run_cell` reference
   computed in-process before the daemon boots (``repr`` equality, the
   same comparison the serial-vs-parallel contract uses);
3. **zero leaked shared memory** — the set of ``/dev/shm`` segments
   after shutdown equals the set before boot;
4. **supervision accounting is consistent** — breaker state agrees with
   its open/close counters, per-reason recycle counters sum to the
   recycle total, and the service-side rejection counter equals the sum
   over breakers.

The fault *schedule* is a pure function of ``(plan, seed, client, step)``
via :func:`repro.faults.plan.stable_uniform` — the same run can be
replayed byte-for-byte.  What is *not* deterministic is how many steps
fit in the wall-clock window; the invariants are therefore stated over
whatever happened, not over an exact transcript.

Faults come from a :class:`~repro.faults.plan.FaultPlan` with
``service``-site specs (``malformed`` / ``expired_deadline`` /
``slowloris`` / ``swap`` / ``delta_swap`` / ``torn_journal``) plus
optionally ``worker:crash`` specs, which the harness realizes by
SIGKILLing live worker processes mid-run.

The two incremental-graph faults churn the update boundary:
``delta_swap`` streams *content-neutral* mutation batches (add an absent
edge, remove it again) through ``POST /swap``'s delta mode — the graph's
generation advances, summaries are maintained in place, caches retarget,
workers take the ``reload_delta`` fast path, yet every estimate must
stay bit-identical to the pre-computed batch references because the
content never changes; ``torn_journal`` sends delta payloads the daemon
must reject with a 400 envelope and *no* published generation (unknown
ops, truncated records, phantom removes, both-modes-at-once).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import shm as shm_mod
from ..bench.runner import NamedQuery, run_cell
from ..core.registry import create_estimator
from ..faults.plan import (
    NO_FAULTS,
    SERVICE_SITE,
    WORKER_SITE,
    FaultPlan,
    stable_uniform,
)
from ..graph.query import QueryGraph
from ..obs.metrics import parse_metrics
from . import protocol
from .daemon import ServeDaemon
from .service import EstimationService, ServiceConfig

#: the default soak plan: every hostile-client fault at a low rate plus
#: occasional worker kills — roughly one perturbation per ten requests
DEFAULT_PLAN_TOKENS = (
    "service:malformed:0.04,service:expired_deadline:0.04,"
    "service:slowloris:0.02,service:swap:0.02,"
    "service:delta_swap:0.04,service:torn_journal:0.02,"
    "worker:crash:0.03"
)

_MAX_VIOLATIONS = 50


@dataclass
class SoakConfig:
    """Tunables of one soak run; everything defaults to CI-sized."""

    duration_s: float = 60.0
    seed: int = 0
    clients: int = 4
    techniques: Optional[Sequence[str]] = None
    workers: int = 2
    runs: int = 2
    plan: FaultPlan = field(default_factory=lambda: NO_FAULTS)
    #: per-request estimation budget of the service under soak (small:
    #: the point is churn, not long estimations)
    time_limit: Optional[float] = 5.0
    kill_grace: float = 2.0
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    watchdog_interval: float = 0.5
    recycle_after: Optional[int] = 50
    #: daemon read timeout — kept short so slow-loris probes resolve
    #: inside the soak window
    read_timeout: float = 1.0
    request_timeout: float = 30.0
    #: how often the chaos thread consults the worker-kill schedule
    chaos_interval: float = 0.25


@dataclass
class SoakReport:
    """Everything one soak run observed, JSON-serializable."""

    duration_s: float = 0.0
    requests: int = 0
    actions: Dict[str, int] = field(default_factory=dict)
    status_counts: Dict[int, int] = field(default_factory=dict)
    worker_kills: int = 0
    violations: List[str] = field(default_factory=list)
    breakers: Dict[str, dict] = field(default_factory=dict)
    watchdog: dict = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    leaked_segments: List[str] = field(default_factory=list)
    metrics_sampled: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "actions": dict(sorted(self.actions.items())),
            "status_counts": {
                str(status): count
                for status, count in sorted(self.status_counts.items())
            },
            "worker_kills": self.worker_kills,
            "violations": self.violations,
            "breakers": self.breakers,
            "watchdog": self.watchdog,
            "counters": dict(sorted(self.counters.items())),
            "leaked_segments": self.leaked_segments,
            "metrics_sampled": self.metrics_sampled,
        }


# ---------------------------------------------------------------------------
# batch references
# ---------------------------------------------------------------------------
def batch_references(
    graph,
    workload: Mapping[str, QueryGraph],
    techniques: Sequence[str],
    config: SoakConfig,
) -> Dict[Tuple[str, str, int], Tuple[Optional[str], Optional[str]]]:
    """``(technique, query, run) -> (estimate-repr, error)`` via the batch path.

    Computed with the *same* constructor parameters the service workers
    use, so a daemon 200 whose estimate differs from its reference is a
    determinism violation, not a configuration mismatch.
    """
    references: Dict[Tuple[str, str, int], Tuple[Optional[str], Optional[str]]] = {}
    for technique in techniques:
        estimator = create_estimator(
            technique,
            graph,
            sampling_ratio=0.03,
            seed=config.seed,
            time_limit=config.time_limit,
        )
        for name, query in sorted(workload.items()):
            named = NamedQuery(name=name, query=query, true_cardinality=0)
            for run in range(config.runs):
                record = run_cell(
                    technique, estimator, named, run,
                    base_seed=config.seed, reseed=True,
                )
                references[(technique, name, run)] = (
                    repr(record.estimate) if record.error is None else None,
                    record.error,
                )
    return references


# ---------------------------------------------------------------------------
# transport helpers
# ---------------------------------------------------------------------------
def _post_json(
    url: str, payload: bytes, timeout: float
) -> Tuple[int, bytes]:
    """POST raw bytes; returns (status, body) for any HTTP status."""
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _get(url: str, timeout: float) -> Tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _raw_exchange(
    host: str, port: int, frame: bytes, timeout: float
) -> bytes:
    """Send a raw (possibly malformed) frame; return whatever comes back."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        if frame:
            sock.sendall(frame)
        chunks = []
        try:
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
        return b"".join(chunks)


def _envelope_of(body: bytes) -> Optional[dict]:
    """The protocol envelope inside an HTTP body, or None if malformed."""
    try:
        payload = json.loads(body.decode())
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict) or not isinstance(
        payload.get("status"), int
    ):
        return None
    return payload


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------
class _SoakState:
    """Shared accounting across client threads (lock-guarded)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.requests = 0
        self.actions: Dict[str, int] = {}
        self.status_counts: Dict[int, int] = {}
        self.violations: List[str] = []
        self.worker_kills = 0
        self.metrics_sampled = 0

    def record(self, action: str, status: Optional[int]) -> None:
        with self.lock:
            self.requests += 1
            self.actions[action] = self.actions.get(action, 0) + 1
            if status is not None:
                self.status_counts[status] = (
                    self.status_counts.get(status, 0) + 1
                )

    def violate(self, message: str) -> None:
        with self.lock:
            if len(self.violations) < _MAX_VIOLATIONS:
                self.violations.append(message)


def _neutral_batches(
    graph, seed: int, count: int = 64
) -> List[List[List[int]]]:
    """Content-neutral delta payloads: add an absent edge, remove it.

    Each batch leaves the graph's *content* exactly where it was while
    still driving the whole delta-swap machinery (reseal, summary
    maintenance, cache retargeting, worker ``reload_delta``), so batch
    references stay valid across any number of them.  Candidate edges
    are drawn deterministically from the seed and are guaranteed absent
    from the served graph — and each batch restores that absence, so
    batches can repeat and interleave freely (swaps are serialized by
    the service's swap lock).
    """
    try:
        n = int(graph.num_vertices)
        present = set(graph.edges())
    except Exception:
        return []
    if not n:
        return []
    labels = sorted({label for _, _, label in present}) or [0]
    batches: List[List[List[int]]] = []
    seen = set()
    attempts = 0
    while len(batches) < count and attempts < count * 50:
        attempts += 1
        candidate = (
            int(stable_uniform(seed, "nb-src", attempts) * n) % n,
            int(stable_uniform(seed, "nb-dst", attempts) * n) % n,
            labels[
                int(stable_uniform(seed, "nb-lab", attempts) * len(labels))
                % len(labels)
            ],
        )
        if candidate in present or candidate in seen:
            continue
        seen.add(candidate)
        src, dst, label = candidate
        batches.append(
            [["add_edge", src, dst, label],
             ["remove_edge", src, dst, label]]
        )
    return batches


def _torn_case(draw: float) -> Tuple[str, dict]:
    """One torn-journal ``/swap`` payload the daemon must reject."""
    cases = [
        ("unknown-op", {"deltas": [["frobnicate", 1, 2, 3]]}),
        ("short-record", {"deltas": [["add_edge", 1]]}),
        ("phantom-remove", {"deltas": [["remove_edge", 0, 0, 999983]]}),
        ("both-modes", {"graph": "/nonexistent", "deltas": []}),
        ("non-list", {"deltas": "nope"}),
    ]
    return cases[int(draw * len(cases)) % len(cases)]


def _malformed_case(draw: float, body_cap: int) -> Tuple[str, bytes, Tuple[int, ...]]:
    """One malformed-request case chosen by a uniform draw.

    Returns ``(kind, json-body-or-None, allowed statuses)``; frame-level
    cases (bad request line) are handled separately by the caller.
    """
    cases = [
        ("bad-json", b"{nope", (400,)),
        ("missing-technique", json.dumps({"query": None}).encode(), (400,)),
        (
            "bad-run",
            json.dumps(
                {"technique": "x", "query": {"vertex_labels": [], "edges": []},
                 "run": "zero"}
            ).encode(),
            (400,),
        ),
        (
            "bad-deadline",
            json.dumps(
                {"technique": "x", "query": {"vertex_labels": [], "edges": []},
                 "deadline_ms": -5}
            ).encode(),
            (400,),
        ),
        ("oversized", b"[" + b"0," * (body_cap // 2) + b"0]", (413,)),
    ]
    return cases[int(draw * len(cases)) % len(cases)]


def run_soak(
    graph,
    workload: Mapping[str, QueryGraph],
    config: Optional[SoakConfig] = None,
    graph_path: Optional[str] = None,
) -> SoakReport:
    """Boot service + daemon, soak them, tear down, report.

    ``graph_path`` (a file reloadable by ``load_graph``) enables the
    ``swap`` fault — swap storms reload the *same* graph file, so batch
    references stay valid across generations.  When given, the served
    graph is (re)loaded from that file too: a dump/load roundtrip need
    not reproduce an in-memory graph's internal ordering bit for bit, and
    sampling estimates are only identical on the *identical* graph.
    Without it, scheduled swaps degrade to normal requests.
    """
    config = config or SoakConfig()
    from .daemon import MAX_BODY_BYTES

    if graph_path is not None:
        from ..graph.io import load_graph

        graph = load_graph(graph_path)

    segments_before = set(shm_mod.list_segments())
    service = EstimationService(
        graph,
        ServiceConfig(
            techniques=config.techniques,
            seed=config.seed,
            time_limit=config.time_limit,
            kill_grace=config.kill_grace,
            workers=config.workers,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown,
            watchdog_interval=config.watchdog_interval,
            recycle_after=config.recycle_after,
        ),
    )
    techniques = list(service.techniques)
    references = batch_references(graph, workload, techniques, config)
    query_names = sorted(workload)
    payloads = {
        name: protocol.query_to_payload(query)
        for name, query in workload.items()
    }
    neutral_batches = _neutral_batches(graph, config.seed)

    state = _SoakState()
    report = SoakReport()
    stop = threading.Event()
    started = time.monotonic()

    service.start()
    daemon_box: List[ServeDaemon] = []
    ready = threading.Event()

    def _daemon_main() -> None:
        import asyncio

        async def _run() -> None:
            daemon = await ServeDaemon(
                service, port=0, read_timeout=config.read_timeout
            ).start()
            daemon_box.append(daemon)
            ready.set()
            try:
                await daemon.serve_forever()
            except asyncio.CancelledError:
                pass

        try:
            asyncio.run(_run())
        except Exception:
            ready.set()

    daemon_thread = threading.Thread(
        target=_daemon_main, name="gcare-soak-daemon", daemon=True
    )
    daemon_thread.start()
    if not ready.wait(timeout=30.0) or not daemon_box:
        service.close()
        raise RuntimeError("soak daemon failed to start")
    daemon = daemon_box[0]
    base = daemon.address
    host, port = daemon.host, daemon.port

    # ------------------------------------------------------------------
    def _check_estimate(
        action: str, technique: str, name: str, run: int, status: int,
        envelope: Optional[dict],
    ) -> None:
        if envelope is None:
            state.violate(f"{action}: non-envelope response (status {status})")
            return
        expected, ref_error = references[(technique, name, run)]
        if status == 200:
            if expected is None:
                state.violate(
                    f"{action}: 200 for {technique}/{name}/r{run} but the "
                    f"batch reference errored ({ref_error})"
                )
            elif repr(envelope.get("estimate")) != expected:
                state.violate(
                    f"{action}: estimate mismatch {technique}/{name}/r{run}: "
                    f"served {envelope.get('estimate')!r}, batch {expected}"
                )
        elif status == 400:
            # a 400 is the batch pipeline's own verdict (e.g. a technique
            # that cannot decompose this query shape) — legitimate only
            # when the batch reference agrees
            if ref_error is None:
                state.violate(
                    f"{action}: 400 for {technique}/{name}/r{run} but the "
                    f"batch reference succeeded"
                )
        elif status not in (429, 500, 503, 504):
            state.violate(
                f"{action}: unexpected status {status} for "
                f"{technique}/{name}/r{run}"
            )

    def _client(client: int) -> None:
        step = 0
        while not stop.is_set():
            step += 1
            technique = techniques[
                int(stable_uniform(config.seed, "tech", client, step)
                    * len(techniques)) % len(techniques)
            ]
            name = query_names[
                int(stable_uniform(config.seed, "query", client, step)
                    * len(query_names)) % len(query_names)
            ]
            run = int(
                stable_uniform(config.seed, "run", client, step) * config.runs
            ) % max(1, config.runs)
            spec = config.plan.decide(
                SERVICE_SITE, technique, name, run, invocation=step * 1000 + client
            )
            fault = spec.fault if spec is not None else None
            if fault == "swap" and graph_path is None:
                fault = None
            if fault == "delta_swap" and not neutral_batches:
                fault = None
            try:
                if fault is None:
                    body = {"technique": technique, "query": payloads[name],
                            "run": run}
                    if stable_uniform(config.seed, "dl", client, step) < 0.25:
                        body["deadline_ms"] = 30_000
                    status, raw = _post_json(
                        base + "/estimate", json.dumps(body).encode(),
                        config.request_timeout,
                    )
                    state.record("estimate", status)
                    _check_estimate(
                        "estimate", technique, name, run, status,
                        _envelope_of(raw),
                    )
                elif fault == "malformed":
                    draw = stable_uniform(config.seed, "mal", client, step)
                    if draw < 0.2:
                        # frame-level garbage: not even a request line
                        raw = _raw_exchange(
                            host, port,
                            b"NOT-HTTP\r\n\r\n",
                            min(5.0, config.request_timeout),
                        )
                        state.record("malformed-frame", None)
                        if raw and b" 400 " not in raw.split(b"\r\n", 1)[0]:
                            state.violate(
                                "malformed-frame: expected 400 status line, "
                                f"got {raw[:60]!r}"
                            )
                    else:
                        kind, body_bytes, allowed = _malformed_case(
                            draw, MAX_BODY_BYTES
                        )
                        status, raw = _post_json(
                            base + "/estimate", body_bytes,
                            config.request_timeout,
                        )
                        state.record(f"malformed-{kind}", status)
                        envelope = _envelope_of(raw)
                        if envelope is None:
                            state.violate(
                                f"malformed-{kind}: non-envelope response"
                            )
                        elif status not in allowed:
                            state.violate(
                                f"malformed-{kind}: status {status}, "
                                f"expected one of {allowed}"
                            )
                elif fault == "expired_deadline":
                    body = {"technique": technique, "query": payloads[name],
                            "run": run, "deadline_ms": 1}
                    status, raw = _post_json(
                        base + "/estimate", json.dumps(body).encode(),
                        config.request_timeout,
                    )
                    state.record("expired-deadline", status)
                    # a 200 here is a cache hit beating the deadline check
                    # — still must be bit-identical
                    _check_estimate(
                        "expired-deadline", technique, name, run, status,
                        _envelope_of(raw),
                    )
                elif fault == "slowloris":
                    raw = _raw_exchange(
                        host, port,
                        b"POST /estimate HTTP/1.1\r\nContent-Length: 100\r\n",
                        config.read_timeout + 5.0,
                    )
                    state.record("slowloris", None)
                    # acceptable outcomes: a 408 envelope, or a clean close
                    if raw and b" 408 " not in raw.split(b"\r\n", 1)[0]:
                        state.violate(
                            f"slowloris: expected 408 or close, got "
                            f"{raw[:60]!r}"
                        )
                elif fault == "swap":
                    status, raw = _post_json(
                        base + "/swap",
                        json.dumps({"graph": graph_path}).encode(),
                        config.request_timeout,
                    )
                    state.record("swap", status)
                    envelope = _envelope_of(raw)
                    if envelope is None:
                        state.violate("swap: non-envelope response")
                    elif status not in (200, 409):
                        state.violate(f"swap: unexpected status {status}")
                elif fault == "delta_swap":
                    batch = neutral_batches[
                        int(stable_uniform(config.seed, "nb", client, step)
                            * len(neutral_batches)) % len(neutral_batches)
                    ]
                    status, raw = _post_json(
                        base + "/swap",
                        json.dumps({"deltas": batch}).encode(),
                        config.request_timeout,
                    )
                    state.record("delta-swap", status)
                    envelope = _envelope_of(raw)
                    if envelope is None:
                        state.violate("delta-swap: non-envelope response")
                    elif status not in (200, 409):
                        state.violate(
                            f"delta-swap: unexpected status {status}"
                        )
                    elif status == 200 and envelope.get("applied") != len(
                        batch
                    ):
                        state.violate(
                            "delta-swap: 200 applied "
                            f"{envelope.get('applied')!r} of {len(batch)}"
                        )
                elif fault == "torn_journal":
                    kind, payload = _torn_case(
                        stable_uniform(config.seed, "torn", client, step)
                    )
                    status, raw = _post_json(
                        base + "/swap", json.dumps(payload).encode(),
                        config.request_timeout,
                    )
                    state.record(f"torn-{kind}", status)
                    envelope = _envelope_of(raw)
                    if envelope is None:
                        state.violate(f"torn-{kind}: non-envelope response")
                    elif status not in (400, 409):
                        state.violate(
                            f"torn-{kind}: status {status}, expected a 400 "
                            "rejection (or 409 mid-swap)"
                        )
            except (OSError, socket.timeout) as exc:
                # transport failures are recorded, not violations: a
                # worker kill can reset an in-flight connection
                state.record(f"transport-{type(exc).__name__}", None)

    def _chaos() -> None:
        """Worker-kill schedule + periodic /metrics scrapes."""
        tick = 0
        while not stop.wait(config.chaos_interval):
            tick += 1
            spec = config.plan.decide(
                WORKER_SITE, "chaos", "soak", 0, invocation=tick
            )
            if spec is not None:
                workers = [
                    worker for worker in service._workers if worker is not None
                ]
                if workers:
                    victim = workers[
                        int(stable_uniform(config.seed, "kill", tick)
                            * len(workers)) % len(workers)
                    ]
                    try:
                        os.kill(victim.process.pid, signal.SIGKILL)
                        with state.lock:
                            state.worker_kills += 1
                    except (OSError, TypeError):
                        pass
            if tick % 8 == 0:
                try:
                    status, raw = _get(
                        base + "/metrics", config.request_timeout
                    )
                    parsed = parse_metrics(raw.decode())
                    with state.lock:
                        state.metrics_sampled += 1
                    if status != 200 or "gcare_generation" not in parsed:
                        state.violate(
                            f"/metrics: status {status}, "
                            f"{len(parsed)} parseable lines"
                        )
                except OSError:
                    pass

    threads = [
        threading.Thread(
            target=_client, args=(client,), name=f"gcare-soak-{client}",
            daemon=True,
        )
        for client in range(config.clients)
    ]
    chaos_thread = threading.Thread(
        target=_chaos, name="gcare-soak-chaos", daemon=True
    )
    try:
        for thread in threads:
            thread.start()
        chaos_thread.start()
        stop.wait(config.duration_s)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=config.request_timeout + 10.0)
        chaos_thread.join(timeout=10.0)
        # final accounting *before* teardown
        try:
            stats = service.stats()
        except Exception:
            stats = {}
        _check_supervision(stats, state)
        report.breakers = stats.get("breakers", {})
        report.watchdog = stats.get("watchdog", {})
        report.counters = dict(stats.get("counters", {}))
        # teardown, then the leak check
        import asyncio

        if daemon_box:
            loop_daemon = daemon_box[0]
            server = loop_daemon._server
            if server is not None:
                loop = server.get_loop()
                loop.call_soon_threadsafe(
                    lambda: asyncio.ensure_future(loop_daemon.stop())
                )
        service.close()
        daemon_thread.join(timeout=10.0)
    leaked = sorted(set(shm_mod.list_segments()) - segments_before)
    if leaked:
        state.violate(f"leaked shm segments: {leaked}")
    report.leaked_segments = leaked
    report.duration_s = time.monotonic() - started
    report.requests = state.requests
    report.actions = state.actions
    report.status_counts = state.status_counts
    report.worker_kills = state.worker_kills
    report.violations = state.violations
    report.metrics_sampled = state.metrics_sampled
    return report


def _check_supervision(stats: dict, state: _SoakState) -> None:
    """Invariant 4: breaker + watchdog accounting is self-consistent."""
    counters = stats.get("counters", {})
    breakers = stats.get("breakers", {})
    rejected_total = 0
    for technique, snapshot in breakers.items():
        rejected_total += snapshot.get("rejected", 0)
        opens, closes = snapshot.get("opens", 0), snapshot.get("closes", 0)
        breaker_state = snapshot.get("state")
        # a close needs a preceding open, and a non-closed breaker has an
        # open with no matching close yet; reopens from half-open mean
        # ``opens`` can exceed ``closes`` even when currently closed
        if opens < closes:
            state.violate(
                f"breaker {technique}: opens={opens} < closes={closes}"
            )
        elif breaker_state in ("open", "half_open") and opens < closes + 1:
            state.violate(
                f"breaker {technique}: {breaker_state} but opens={opens} "
                f"closes={closes}"
            )
        elif breaker_state not in ("closed", "open", "half_open"):
            state.violate(
                f"breaker {technique}: unknown state {breaker_state!r}"
            )
    if counters.get("serve.breaker_rejected", 0) != rejected_total:
        state.violate(
            f"breaker rejection accounting: service counter "
            f"{counters.get('serve.breaker_rejected', 0)} != breaker sum "
            f"{rejected_total}"
        )
    recycles = counters.get("watchdog.recycles", 0)
    by_reason = sum(
        count for name, count in counters.items()
        if name.startswith("watchdog.recycle.")
    )
    if recycles != by_reason:
        state.violate(
            f"watchdog accounting: recycles={recycles} != per-reason "
            f"sum {by_reason}"
        )

"""Query-fingerprint result cache: TTL expiry + LRU eviction.

The serving hot path: estimates are pure functions of (technique,
canonical query, derived seed, estimator parameters, graph generation) —
exactly what :func:`repro.serve.protocol.query_fingerprint` hashes — so a
repeated request can be answered from memory without touching a worker.
The cache is the reason the warm-path p50 beats the cold path by an
order of magnitude in ``BENCH_PR7.json``.

Semantics:

* **TTL** — entries older than ``ttl`` seconds are expired on access
  (lazy) and by :meth:`sweep` (eager); a TTL of ``None`` disables expiry.
* **LRU** — at most ``max_entries`` live entries; inserting past
  capacity evicts the least-recently-*used* entry (a get refreshes
  recency, an expired get does not).
* **injectable clock** — both the tests and the hot-swap logic need
  deterministic time; the constructor takes any ``() -> float`` monotonic
  clock and never calls ``time`` directly.
* **generation fencing** — the service clears the cache on graph swap;
  entries additionally remember the generation that produced them so a
  racing put from an in-flight old-generation request can never resurrect
  a stale result after the swap (:meth:`put` drops mismatched writes).
* **delta retargeting** — a *delta* swap (an incremental update shipping
  a mutation journal instead of a whole graph) calls :meth:`retarget`
  instead of :meth:`clear`: entries whose technique is delta-local and
  whose recorded label scope is disjoint from the labels the batch
  touched are provably unaffected, so they survive re-stamped to the new
  generation; everything else (and every unscoped entry) is dropped.

Thread safety: one lock around every operation; the critical sections
are dictionary moves, so contention is negligible next to an estimate.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple


@dataclass(frozen=True)
class CacheScope:
    """What one cached estimate provably depends on.

    ``delta_local`` mirrors the technique's
    :attr:`~repro.core.framework.Estimator.delta_local` contract: the
    estimate reads only graph state within the query's label scope
    (assuming connected queries).  ``edge_labels`` / ``vertex_labels``
    are the query's label sets.  An entry survives a delta swap iff the
    technique is delta-local and both scopes are disjoint from the labels
    the delta batch touched.
    """

    delta_local: bool
    edge_labels: frozenset
    vertex_labels: frozenset

    @classmethod
    def for_query(cls, delta_local: bool, query) -> "CacheScope":
        return cls(
            delta_local=bool(delta_local),
            edge_labels=frozenset(label for _, _, label in query.edges),
            vertex_labels=frozenset(
                label
                for labels in query.vertex_labels
                for label in labels
            ),
        )

    def survives(
        self,
        touched_edge_labels: frozenset,
        touched_vertex_labels: frozenset,
    ) -> bool:
        return (
            self.delta_local
            and not (self.edge_labels & touched_edge_labels)
            and not (self.vertex_labels & touched_vertex_labels)
        )


class ResultCache:
    """TTL + LRU cache of response payloads keyed by query fingerprint."""

    def __init__(
        self,
        max_entries: int = 1024,
        ttl: Optional[float] = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self.max_entries = max_entries
        self.ttl = ttl
        self.clock = clock
        #: fingerprint -> (stored_at, generation, payload, scope)
        self._entries: "OrderedDict[str, Tuple[float, int, dict, Optional[CacheScope]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        #: current graph generation; puts from other generations are dropped
        self.generation = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> Optional[dict]:
        """The cached payload, or None on miss/expiry.

        A hit refreshes LRU recency.  The caller owns the returned dict
        (the cache stores its own copy), so response post-processing
        (e.g. stamping ``cached: true``) never mutates the cached value.
        """
        now = self.clock()
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            stored_at = entry[0]
            payload = entry[2]
            if self.ttl is not None and now - stored_at >= self.ttl:
                del self._entries[fingerprint]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return dict(payload)

    def put(
        self,
        fingerprint: str,
        payload: dict,
        generation: int,
        scope: Optional[CacheScope] = None,
    ) -> bool:
        """Store a payload; returns False when the write was fenced off.

        ``generation`` must match the cache's current generation —
        an in-flight request that started before a graph swap completes
        after :meth:`clear` ran, and its stale result must not be cached
        against the new graph.

        ``scope`` (optional) records what the estimate depends on; only
        scoped entries are eligible to survive a :meth:`retarget`.
        """
        if self.max_entries == 0:
            return False
        with self._lock:
            if generation != self.generation:
                return False
            self._entries[fingerprint] = (
                self.clock(), generation, dict(payload), scope,
            )
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            return True

    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Eagerly drop every expired entry; returns how many were dropped."""
        if self.ttl is None:
            return 0
        now = self.clock()
        dropped = 0
        with self._lock:
            for fingerprint in list(self._entries):
                stored_at = self._entries[fingerprint][0]
                if now - stored_at >= self.ttl:
                    del self._entries[fingerprint]
                    self.expirations += 1
                    dropped += 1
        return dropped

    def clear(self, new_generation: Optional[int] = None) -> None:
        """Drop everything (graph swap); optionally advance the generation."""
        with self._lock:
            self._entries.clear()
            if new_generation is not None:
                self.generation = new_generation

    def retarget(
        self,
        new_generation: int,
        touched_edge_labels: Iterable[int] = (),
        touched_vertex_labels: Iterable[int] = (),
    ) -> Tuple[int, int]:
        """Delta swap: keep provably-unaffected entries, drop the rest.

        An entry survives iff its :class:`CacheScope` says the producing
        technique is delta-local *and* the entry's label scopes are
        disjoint from the labels the delta batch touched.  Survivors are
        re-stamped to ``new_generation`` (their payload's ``generation``
        field still names the generation that computed them — a truthful
        provenance, since delta-locality guarantees the estimate is
        bit-identical under the new one).  Returns ``(kept, dropped)``.
        """
        edge_labels = frozenset(touched_edge_labels)
        vertex_labels = frozenset(touched_vertex_labels)
        kept = 0
        dropped = 0
        with self._lock:
            for fingerprint in list(self._entries):
                stored_at, _, payload, scope = self._entries[fingerprint]
                if scope is not None and scope.survives(
                    edge_labels, vertex_labels
                ):
                    self._entries[fingerprint] = (
                        stored_at, new_generation, payload, scope,
                    )
                    kept += 1
                else:
                    del self._entries[fingerprint]
                    dropped += 1
            self.generation = new_generation
        return kept, dropped

    # ------------------------------------------------------------------
    def keys(self):
        """Fingerprints in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "generation": self.generation,
            }

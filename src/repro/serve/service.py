"""The estimation service core: a worker pool behind a request API.

This is the long-lived counterpart of one ``gcare sweep`` invocation:
the graph seals once, every technique's summary prepares once, both are
published into named ``/dev/shm`` arenas (:mod:`repro.shm`), and a pool
of persistent worker processes answers per-query estimation requests
until told to stop.  The HTTP daemon (:mod:`repro.serve.daemon`) and the
load generator (:mod:`repro.serve.loadgen`) are thin clients of this
class; everything contractual lives here:

* **bit-identical estimates** — a request ``(technique, query, run)`` is
  executed by :func:`repro.bench.runner.run_cell` inside a worker with
  ``derive_seed(base_seed, run)``, exactly the batch sweep's code path,
  so a daemon answer equals the corresponding sweep cell bit for bit;
* **request-scoped estimation** — workers hold each technique's prepared
  estimator and re-scope it per request (seed assignment + the RNG reset
  inside ``estimate()``), the PostBOUND ``setup_for_query`` /
  ``estimate_for`` shape adapted to Algorithm 1;
* **result cache** — responses are memoized by query fingerprint
  (:class:`~repro.serve.cache.ResultCache`, TTL + LRU, generation-fenced
  so a graph swap can never serve a stale estimate);
* **admission control** — per-technique max in-flight and queue depth;
  a request past both limits is rejected immediately with a 429-style
  payload instead of growing an unbounded backlog;
* **hard per-request timeout** — the sweep kill machinery, re-used: a
  worker that exceeds ``time_limit + kill_grace`` is terminated and
  replaced, and the request resolves to a 504-style payload;
* **crash containment** — a worker dying mid-request (segfault, OOM
  kill, injected ``worker:crash`` fault) resolves that request to a
  well-formed 500-style payload and the pool respawns the slot;
* **hot swap** — :meth:`EstimationService.swap_graph` prepares the new
  graph's summaries off to the side, atomically publishes the new
  generation, clears the cache, and lets workers reload between requests
  — a response always comes from one coherent (graph, summary)
  generation, never a torn mix;
* **observability** — request/latency accounting in
  :class:`~repro.obs.histogram.LatencyHistogram` per technique plus
  counters, exported by :meth:`stats` (the daemon's ``/stats``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import shm as shm_mod
from ..bench.runner import NamedQuery, derive_seed, run_cell
from ..bench.summary_cache import blobs_from_shm, blobs_to_shm, hydrate_from_blob
from ..core.registry import available_techniques, create_estimator
from ..faults.inject import maybe_die
from ..faults.plan import FaultPlan
from ..graph.query import QueryGraph
from ..obs.histogram import LatencyHistogram
from ..shm import ShmRef
from . import protocol
from .cache import ResultCache

#: wall-clock grace past ``time_limit`` before a busy worker is killed
#: (mirrors the sweep runner's backstop semantics)
DEFAULT_KILL_GRACE = 5.0

#: hard budget for a worker reload/startup acknowledgement; generous —
#: hydration from blobs is milliseconds, a cold prepare can be seconds
DEFAULT_RELOAD_TIMEOUT = 120.0


class AdmissionRejected(RuntimeError):
    """Raised by :meth:`EstimationService.submit` when a technique's
    in-flight + queue budget is exhausted (maps to a 429 payload)."""


@dataclass
class ServiceConfig:
    """Tunables of one :class:`EstimationService` instance."""

    #: technique names served (default: every available technique)
    techniques: Optional[Sequence[str]] = None
    sampling_ratio: float = 0.03
    #: base seed; request ``run`` r executes under ``derive_seed(seed, r)``
    seed: int = 0
    #: per-request cooperative estimation budget (seconds)
    time_limit: Optional[float] = 10.0
    #: worker processes in the pool
    workers: int = 2
    #: seconds past ``time_limit`` before the hard kill fires
    kill_grace: float = DEFAULT_KILL_GRACE
    #: result-cache capacity (0 disables caching)
    cache_entries: int = 1024
    #: result-cache TTL in seconds (None = entries never expire)
    cache_ttl: Optional[float] = 300.0
    #: per-technique concurrent executions admitted before queueing
    max_inflight: int = 4
    #: per-technique queued requests admitted before rejection
    queue_depth: int = 16
    #: deterministic fault plan for chaos testing (None = disabled)
    fault_plan: Optional[FaultPlan] = None
    #: ship graph/summaries via shared memory (None = auto when sealed)
    use_shm: Optional[bool] = None
    #: multiprocessing start method (None = fork where available)
    start_method: Optional[str] = None
    #: per-technique estimator constructor overrides
    estimator_kwargs: Mapping[str, Mapping] = field(default_factory=dict)
    #: hard budget for worker startup/reload acknowledgement
    reload_timeout: float = DEFAULT_RELOAD_TIMEOUT


@dataclass
class _Generation:
    """One published (graph, summaries) state; immutable once built."""

    number: int
    graph_payload: object  # the graph itself, or a ShmRef to it
    blob_payload: object  # blob mapping, ShmRef, or None
    handles: List[object] = field(default_factory=list)

    def release(self) -> None:
        for handle in self.handles:
            try:
                handle.release()
            except Exception:  # pragma: no cover - defensive
                pass
        self.handles = []


class _Request:
    """One in-flight estimation request (parent side)."""

    __slots__ = (
        "id", "technique", "query", "run", "name", "fingerprint",
        "seed", "future", "submitted_at",
    )

    def __init__(
        self, id: int, technique: str, query: QueryGraph, run: int,
        name: str, fingerprint: str, seed: int, submitted_at: float,
    ) -> None:
        self.id = id
        self.technique = technique
        self.query = query
        self.run = run
        self.name = name
        self.fingerprint = fingerprint
        self.seed = seed
        self.future: Future = Future()
        self.submitted_at = submitted_at


_SHUTDOWN = object()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _materialize(graph_payload, blob_payload):
    """Turn shipped payloads (objects or ShmRefs) into usable state."""
    graph = graph_payload
    if isinstance(graph, ShmRef):
        from ..graph.compact import CompactGraph

        graph = CompactGraph.from_shm(graph)
    blobs = blob_payload
    if isinstance(blobs, ShmRef):
        blobs = blobs_from_shm(blobs)
    return graph, blobs


def _build_estimators(
    graph,
    techniques: Sequence[str],
    sampling_ratio: float,
    seed: int,
    time_limit: Optional[float],
    estimator_kwargs: Mapping[str, Mapping],
    blobs: Optional[Mapping[str, bytes]],
) -> Dict[str, object]:
    """One estimator per technique, hydrated from blobs when available.

    A technique without a blob stays unprepared — its first request pays
    the build inside ``run_cell`` (and, under a fault plan, exposes the
    prepare site to injection, mirroring the sweep pipeline).
    """
    estimators: Dict[str, object] = {}
    for name in techniques:
        kwargs = dict(estimator_kwargs.get(name, {}))
        estimator = create_estimator(
            name,
            graph,
            sampling_ratio=sampling_ratio,
            seed=seed,
            time_limit=time_limit,
            **kwargs,
        )
        blob = blobs.get(name) if blobs is not None else None
        if blob is not None:
            hydrate_from_blob(estimator, blob)
        estimators[name] = estimator
    return estimators


def _serve_worker(
    conn,
    graph_payload,
    blob_payload,
    generation: int,
    techniques: Sequence[str],
    sampling_ratio: float,
    seed: int,
    time_limit: Optional[float],
    estimator_kwargs: Mapping[str, Mapping],
    fault_plan: Optional[FaultPlan],
) -> None:
    """Serve-worker loop: estimate requests, reloads, shutdown.

    Messages from the parent:

    * ``("estimate", req_id, technique, query, run, name)`` — run one
      cell via :func:`run_cell` (the batch code path — this is what the
      bit-identical contract rests on) and reply
      ``("done", req_id, record)`` or ``("failed", req_id, message)``;
    * ``("reload", generation, graph_payload, blob_payload)`` — swap to
      a new graph generation between requests (messages are processed
      strictly sequentially, so a request never observes half a swap)
      and reply ``("reloaded", generation)``;
    * ``None`` — exit.

    The worker acknowledges startup with ``("ready", generation)`` once
    its estimators exist, so the parent can bound cold-start time.
    """
    try:
        graph, blobs = _materialize(graph_payload, blob_payload)
        estimators = _build_estimators(
            graph, techniques, sampling_ratio, seed, time_limit,
            estimator_kwargs, blobs,
        )
        conn.send(("ready", generation))
        while True:
            message = conn.recv()
            if message is None:
                return
            kind = message[0]
            if kind == "reload":
                _, generation, graph_payload, blob_payload = message
                graph, blobs = _materialize(graph_payload, blob_payload)
                estimators = _build_estimators(
                    graph, techniques, sampling_ratio, seed, time_limit,
                    estimator_kwargs, blobs,
                )
                conn.send(("reloaded", generation))
                continue
            _, req_id, technique, query, run, name = message
            try:
                maybe_die(fault_plan, technique, name, run)
                estimator = estimators.get(technique)
                if estimator is None:
                    conn.send(
                        ("failed", req_id, f"unknown technique {technique!r}")
                    )
                    continue
                named = NamedQuery(name=name, query=query, true_cardinality=0)
                record = run_cell(
                    technique, estimator, named, run,
                    base_seed=seed, reseed=True, fault_plan=fault_plan,
                )
                conn.send(("done", req_id, record))
            except Exception as exc:  # keep the worker alive
                conn.send(("failed", req_id, f"{type(exc).__name__}: {exc}"))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        return


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
class _ServeWorker:
    """Parent-side handle of one pooled worker process."""

    def __init__(self, ctx, generation: int, args) -> None:
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_serve_worker, args=(child_conn, *args), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.generation = generation

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=2.0)

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class EstimationService:
    """A running estimation service over one (mutable-by-swap) graph.

    Usable as a context manager; :meth:`start` spawns the pool,
    :meth:`close` drains and reaps it.  ``clock`` is injectable for the
    cache tests (it must be monotonic; the default is
    ``time.monotonic``).
    """

    def __init__(
        self,
        graph,
        config: Optional[ServiceConfig] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.clock = clock
        self.techniques: List[str] = list(
            self.config.techniques
            if self.config.techniques is not None
            else available_techniques()
        )
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            ttl=self.config.cache_ttl,
            clock=clock,
        )
        self._ctx = multiprocessing.get_context(
            self.config.start_method or _default_start_method()
        )
        self._queue: "queue.Queue" = queue.Queue()
        self._request_ids = itertools.count(1)
        self._workers: List[Optional[_ServeWorker]] = []
        self._dispatchers: List[threading.Thread] = []
        self._generation: Optional[_Generation] = None
        self._retired: List[_Generation] = []
        self._swap_lock = threading.Lock()
        self._admission_lock = threading.Lock()
        self._queued: Dict[str, int] = {name: 0 for name in self.techniques}
        self._executing: Dict[str, int] = {name: 0 for name in self.techniques}
        self._stats_lock = threading.Lock()
        self.counters: Dict[str, int] = {}
        self.latency = LatencyHistogram()
        self.per_technique_latency: Dict[str, LatencyHistogram] = {}
        self._started = False
        self._closed = False
        self._started_at: Optional[float] = None
        graph = self._sealed(graph)
        self.graph = graph

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "EstimationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _sealed(graph):
        if not getattr(graph, "sealed", False) and hasattr(graph, "seal"):
            return graph.seal()
        return graph

    def start(self) -> "EstimationService":
        """Prepare summaries, publish arenas, spawn the pool (idempotent)."""
        if self._started:
            return self
        if self._closed:
            raise RuntimeError("service already closed")
        if shm_mod.shm_supported():
            shm_mod.reap_orphans()
        self._generation = self._publish(self.graph, number=1)
        self.cache.clear(new_generation=1)
        workers = max(1, int(self.config.workers))
        self._workers = [None] * workers
        for slot in range(workers):
            self._workers[slot] = self._spawn(self._generation)
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop, args=(slot,), daemon=True,
                name=f"gcare-serve-dispatch-{slot}",
            )
            for slot in range(workers)
        ]
        for thread in self._dispatchers:
            thread.start()
        self._started = True
        self._started_at = self.clock()
        return self

    def close(self) -> None:
        """Drain the queue, stop dispatchers, reap workers, free arenas."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for _ in self._dispatchers:
                self._queue.put(_SHUTDOWN)
            for thread in self._dispatchers:
                thread.join(timeout=30.0)
            for worker in self._workers:
                if worker is not None:
                    worker.shutdown()
        self._workers = []
        # fail anything still queued (submitted after the sentinels)
        try:
            while True:
                request = self._queue.get_nowait()
                if request is _SHUTDOWN:
                    continue
                self._resolve_admitted(
                    request,
                    protocol.error_response(
                        protocol.STATUS_WORKER_CRASHED,
                        "service shut down",
                        technique=request.technique,
                        fingerprint=request.fingerprint,
                        run=request.run,
                    ),
                    dequeued=False,
                )
        except queue.Empty:
            pass
        if self._generation is not None:
            self._generation.release()
            self._generation = None
        for generation in self._retired:
            generation.release()
        self._retired = []

    # ------------------------------------------------------------------
    # publication (graph + summaries -> payloads, shm where possible)
    # ------------------------------------------------------------------
    def _build_blobs(self, graph) -> Optional[Dict[str, bytes]]:
        """Prepare every technique once in the parent; serialize summaries.

        Skipped entirely under a fault plan, exactly like the sweep
        pipeline: workers must build their own summaries inside
        ``run_cell`` so prepare-site faults can reach them.
        """
        plan = self.config.fault_plan
        if plan is not None and plan.enabled:
            return None
        blobs: Dict[str, bytes] = {}
        for name in self.techniques:
            kwargs = dict(self.config.estimator_kwargs.get(name, {}))
            try:
                estimator = create_estimator(
                    name,
                    graph,
                    sampling_ratio=self.config.sampling_ratio,
                    seed=self.config.seed,
                    time_limit=self.config.time_limit,
                    **kwargs,
                )
                estimator.prepare()
                blobs[name] = estimator.export_summary()
            except Exception:
                continue  # worker prepares locally; requests may still fail
        return blobs

    def _publish(self, graph, number: int) -> _Generation:
        """Build one immutable generation: summaries + shm publication."""
        blobs = self._build_blobs(graph)
        graph_payload: object = graph
        blob_payload: object = blobs
        handles: List[object] = []
        use_shm = self.config.use_shm
        if use_shm is None:
            use_shm = shm_mod.shm_supported() and bool(
                getattr(graph, "sealed", False)
            )
        if use_shm and shm_mod.shm_supported():
            if getattr(graph, "sealed", False) and hasattr(graph, "to_shm"):
                try:
                    handle, ref = graph.to_shm()
                except Exception:
                    pass  # unshareable graph: ship the object itself
                else:
                    handles.append(handle)
                    graph_payload = ref
            if blobs:
                try:
                    handle, ref = blobs_to_shm(blobs)
                except Exception:
                    pass
                else:
                    handles.append(handle)
                    blob_payload = ref
        return _Generation(number, graph_payload, blob_payload, handles)

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------
    def _spawn(self, generation: _Generation) -> _ServeWorker:
        worker = _ServeWorker(
            self._ctx,
            generation.number,
            (
                generation.graph_payload,
                generation.blob_payload,
                generation.number,
                tuple(self.techniques),
                self.config.sampling_ratio,
                self.config.seed,
                self.config.time_limit,
                dict(self.config.estimator_kwargs),
                self.config.fault_plan,
            ),
        )
        # bound cold start: a worker that cannot even build its
        # estimators is useless — kill and let the dispatcher respawn
        if not self._await(worker, "ready", self.config.reload_timeout):
            worker.kill()
        return worker

    @staticmethod
    def _await(worker: _ServeWorker, kind: str, timeout: float) -> bool:
        """Wait for one ``(kind, ...)`` acknowledgement message."""
        try:
            if not worker.conn.poll(timeout):
                return False
            message = worker.conn.recv()
        except (EOFError, OSError):
            return False
        return bool(message) and message[0] == kind

    def _ensure_generation(self, slot: int) -> _ServeWorker:
        """The slot's worker, reloaded/respawned to the current generation."""
        current = self._generation
        worker = self._workers[slot]
        if worker is None or not worker.process.is_alive():
            worker = self._respawn(slot, count_respawn=worker is not None)
            return worker
        if worker.generation == current.number:
            return worker
        try:
            worker.conn.send(
                (
                    "reload",
                    current.number,
                    current.graph_payload,
                    current.blob_payload,
                )
            )
            ok = self._await(worker, "reloaded", self.config.reload_timeout)
        except (OSError, BrokenPipeError):
            ok = False
        if not ok:
            worker.kill()
            return self._respawn(slot)
        worker.generation = current.number
        self._incr("serve.reloads")
        return worker

    def _respawn(self, slot: int, count_respawn: bool = True) -> _ServeWorker:
        worker = self._spawn(self._generation)
        self._workers[slot] = worker
        if count_respawn:
            self._incr("serve.respawns")
        return worker

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _incr(self, name: str, n: int = 1) -> None:
        with self._stats_lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def _record_latency(self, technique: str, seconds: float) -> None:
        with self._stats_lock:
            self.latency.record(seconds)
            histogram = self.per_technique_latency.get(technique)
            if histogram is None:
                histogram = LatencyHistogram()
                self.per_technique_latency[technique] = histogram
            histogram.record(seconds)

    def stats(self) -> dict:
        """A JSON-serializable snapshot (the daemon's ``/stats`` body)."""
        with self._stats_lock:
            counters = dict(self.counters)
            latency = self.latency.summary()
            per_technique = {
                name: histogram.summary()
                for name, histogram in self.per_technique_latency.items()
            }
        with self._admission_lock:
            admission = {
                name: {
                    "executing": self._executing.get(name, 0),
                    "queued": self._queued.get(name, 0),
                    "max_inflight": self.config.max_inflight,
                    "queue_depth": self.config.queue_depth,
                }
                for name in self.techniques
            }
        generation = self._generation.number if self._generation else 0
        uptime = (
            self.clock() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return {
            "generation": generation,
            "workers": len(self._workers),
            "techniques": list(self.techniques),
            "uptime_s": uptime,
            "counters": counters,
            "latency": latency,
            "per_technique": per_technique,
            "admission": admission,
            "cache": self.cache.stats(),
        }

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self, technique: str, query: QueryGraph, run: int = 0,
        name: Optional[str] = None,
    ) -> Future:
        """Enqueue one estimation request; returns a response future.

        Resolution is always a protocol response dict — cache hits
        resolve immediately, admission rejections resolve immediately
        with a 429-style payload, everything else resolves when a worker
        (or its kill machinery) finishes.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running")
        submitted_at = self.clock()
        self._incr("serve.requests")
        future: Future = Future()
        if technique not in self._executing:
            self._incr("serve.unknown_technique")
            future.set_result(
                protocol.error_response(
                    protocol.STATUS_UNKNOWN_TECHNIQUE,
                    f"unknown technique {technique!r}; "
                    f"serving {sorted(self._executing)}",
                    technique=technique,
                    run=run,
                )
            )
            return future
        seed = derive_seed(self.config.seed, run)
        fingerprint = protocol.query_fingerprint(
            technique, query, seed,
            self.config.sampling_ratio, self.config.time_limit,
        )
        cached = self.cache.get(fingerprint)
        if cached is not None:
            self._incr("serve.cache_hits")
            cached["cached"] = True
            self._record_latency(technique, self.clock() - submitted_at)
            future.set_result(cached)
            return future
        with self._admission_lock:
            executing = self._executing[technique]
            queued = self._queued[technique]
            if (
                executing >= self.config.max_inflight
                and queued >= self.config.queue_depth
            ):
                admitted = False
            else:
                self._queued[technique] = queued + 1
                admitted = True
        if not admitted:
            self._incr("serve.rejected")
            future.set_result(
                protocol.error_response(
                    protocol.STATUS_REJECTED,
                    (
                        f"technique {technique!r} saturated: "
                        f"{executing} executing (max "
                        f"{self.config.max_inflight}), {queued} queued "
                        f"(depth {self.config.queue_depth})"
                    ),
                    technique=technique,
                    fingerprint=fingerprint,
                    run=run,
                )
            )
            return future
        request = _Request(
            id=next(self._request_ids),
            technique=technique,
            query=query,
            run=run,
            name=name or fingerprint,
            fingerprint=fingerprint,
            seed=seed,
            submitted_at=submitted_at,
        )
        request.future = future
        self._queue.put(request)
        return future

    def estimate(
        self, technique: str, query: QueryGraph, run: int = 0,
        name: Optional[str] = None, timeout: Optional[float] = None,
    ) -> dict:
        """Blocking :meth:`submit` (the in-process client API)."""
        return self.submit(technique, query, run, name=name).result(
            timeout=timeout
        )

    # ------------------------------------------------------------------
    def _resolve_admitted(
        self, request: _Request, response: dict, dequeued: bool = True
    ) -> None:
        """Resolve an admitted request and release its admission slot."""
        with self._admission_lock:
            counter = self._executing if dequeued else self._queued
            if request.technique in counter:
                counter[request.technique] = max(
                    0, counter[request.technique] - 1
                )
        self._record_latency(
            request.technique, self.clock() - request.submitted_at
        )
        if not request.future.done():
            request.future.set_result(response)

    def _dispatch_loop(self, slot: int) -> None:
        """One dispatcher thread per worker slot: queue -> worker -> future."""
        while True:
            request = self._queue.get()
            if request is _SHUTDOWN:
                return
            with self._admission_lock:
                self._queued[request.technique] = max(
                    0, self._queued[request.technique] - 1
                )
                self._executing[request.technique] += 1
            try:
                response = self._execute(slot, request)
            except Exception as exc:  # pragma: no cover - defensive
                response = protocol.error_response(
                    protocol.STATUS_WORKER_CRASHED,
                    f"dispatch failure: {type(exc).__name__}: {exc}",
                    technique=request.technique,
                    fingerprint=request.fingerprint,
                    run=request.run,
                )
            self._resolve_admitted(request, response)

    def _execute(self, slot: int, request: _Request) -> dict:
        """Run one request on the slot's worker, enforcing the hard kill."""
        worker = self._ensure_generation(slot)
        generation = worker.generation
        try:
            worker.conn.send(
                (
                    "estimate",
                    request.id,
                    request.technique,
                    request.query,
                    request.run,
                    request.name,
                )
            )
        except (OSError, BrokenPipeError):
            worker.kill()
            self._respawn(slot)
            self._incr("serve.crashes")
            return protocol.error_response(
                protocol.STATUS_WORKER_CRASHED,
                "worker died before accepting the request",
                technique=request.technique,
                fingerprint=request.fingerprint,
                run=request.run,
                generation=generation,
            )
        budget = None
        if self.config.time_limit is not None:
            budget = self.config.time_limit + self.config.kill_grace
        deadline = time.monotonic() + budget if budget is not None else None
        while True:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                # the sweep kill machinery, serving edition: terminate
                # the wedged worker, respawn the slot, fail the request
                worker.kill()
                self._respawn(slot)
                self._incr("serve.timeouts")
                return protocol.error_response(
                    protocol.STATUS_TIMEOUT,
                    f"request exceeded {budget:.1f}s hard budget",
                    technique=request.technique,
                    fingerprint=request.fingerprint,
                    run=request.run,
                    generation=generation,
                )
            try:
                if not worker.conn.poll(
                    remaining if remaining is not None else 1.0
                ):
                    continue
                message = worker.conn.recv()
            except (EOFError, OSError):
                worker.kill()
                self._respawn(slot)
                self._incr("serve.crashes")
                return protocol.error_response(
                    protocol.STATUS_WORKER_CRASHED,
                    "worker crashed mid-request",
                    technique=request.technique,
                    fingerprint=request.fingerprint,
                    run=request.run,
                    generation=generation,
                )
            kind = message[0]
            if kind == "done" and message[1] == request.id:
                record = message[2]
                return self._response_from_record(request, record, generation)
            if kind == "failed" and message[1] == request.id:
                self._incr("serve.errors")
                return protocol.error_response(
                    protocol.STATUS_WORKER_CRASHED,
                    f"worker error: {message[2]}",
                    technique=request.technique,
                    fingerprint=request.fingerprint,
                    run=request.run,
                    generation=generation,
                )
            # stray message from a previous (killed) request on a reused
            # pipe cannot happen — each slot is single-threaded and kills
            # its worker on timeout — but drop defensively rather than
            # mis-deliver
            continue

    def _response_from_record(
        self, request: _Request, record, generation: int
    ) -> dict:
        if record.error is None:
            response = protocol.success_response(
                request.technique,
                request.fingerprint,
                record.estimate,
                record.elapsed,
                request.seed,
                request.run,
                generation,
                cached=False,
            )
            self.cache.put(request.fingerprint, response, generation)
            self._incr("serve.estimates")
            return response
        self._incr("serve.errors")
        self._incr(f"serve.error.{record.error.split(':', 1)[0]}")
        return protocol.error_response(
            protocol.status_for_record_error(record.error),
            record.error,
            technique=request.technique,
            fingerprint=request.fingerprint,
            run=request.run,
            generation=generation,
        )

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    def swap_graph(self, graph) -> dict:
        """Hot-reload the service onto a new data graph.

        The new generation's summaries are prepared **before** anything
        is published — traffic keeps being served from the old
        generation throughout — then the switch is atomic: publish the
        new generation, clear (and re-fence) the result cache, and let
        each worker reload lazily before its next request.  A response
        is always computed against one coherent generation, and its
        ``generation`` field says which.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running")
        graph = self._sealed(graph)
        with self._swap_lock:
            current = self._generation
            new = self._publish(graph, number=current.number + 1)
            self.graph = graph
            self._generation = new
            self.cache.clear(new_generation=new.number)
            self._retired.append(current)
            # segments two generations back can no longer be needed by a
            # reload (reloads only ever read the current generation), and
            # POSIX keeps already-attached mappings alive past unlink —
            # so releasing them here cannot tear an in-flight request
            while len(self._retired) > 1:
                self._retired.pop(0).release()
            self._incr("serve.swaps")
        return {"generation": new.number, "graph": repr(graph)}

"""The estimation service core: a worker pool behind a request API.

This is the long-lived counterpart of one ``gcare sweep`` invocation:
the graph seals once, every technique's summary prepares once, both are
published into named ``/dev/shm`` arenas (:mod:`repro.shm`), and a pool
of persistent worker processes answers per-query estimation requests
until told to stop.  The HTTP daemon (:mod:`repro.serve.daemon`) and the
load generator (:mod:`repro.serve.loadgen`) are thin clients of this
class; everything contractual lives here:

* **bit-identical estimates** — a request ``(technique, query, run)`` is
  executed by :func:`repro.bench.runner.run_cell` inside a worker with
  ``derive_seed(base_seed, run)``, exactly the batch sweep's code path,
  so a daemon answer equals the corresponding sweep cell bit for bit;
* **request-scoped estimation** — workers hold each technique's prepared
  estimator and re-scope it per request (seed assignment + the RNG reset
  inside ``estimate()``), the PostBOUND ``setup_for_query`` /
  ``estimate_for`` shape adapted to Algorithm 1;
* **result cache** — responses are memoized by query fingerprint
  (:class:`~repro.serve.cache.ResultCache`, TTL + LRU, generation-fenced
  so a graph swap can never serve a stale estimate);
* **admission control** — per-technique max in-flight and queue depth;
  a request past both limits is rejected immediately with a 429-style
  payload instead of growing an unbounded backlog;
* **hard per-request timeout** — the sweep kill machinery, re-used: a
  worker that exceeds ``time_limit + kill_grace`` is terminated and
  replaced, and the request resolves to a 504-style payload;
* **crash containment** — a worker dying mid-request (segfault, OOM
  kill, injected ``worker:crash`` fault) resolves that request to a
  well-formed 500-style payload and the pool respawns the slot;
* **hot swap** — :meth:`EstimationService.swap_graph` prepares the new
  graph's summaries off to the side, atomically publishes the new
  generation, clears the cache, and lets workers reload between requests
  — a response always comes from one coherent (graph, summary)
  generation, never a torn mix;
* **delta swap** — :meth:`EstimationService.swap_deltas` ships a
  mutation journal instead of a graph: the parent reseals its graph in
  O(delta), maintains its prepared summaries via
  ``Estimator.apply_deltas``, and publishes a generation that *shares*
  the base arenas plus the accumulated journal.  Live workers advance
  with a ``reload_delta`` message (reseal + summary update, no arena
  re-publication); respawned workers replay the journal on top of the
  base payloads.  The result cache is *retargeted*, not cleared:
  entries of delta-local techniques whose query labels are disjoint
  from the touched labels survive.  Once the accumulated journal
  exceeds ``delta_compact_after``, the swap compacts into a full
  publish;
* **observability** — request/latency accounting in
  :class:`~repro.obs.histogram.LatencyHistogram` per technique plus
  counters, exported by :meth:`stats` (the daemon's ``/stats``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import kernels, shm as shm_mod
from ..bench.runner import NamedQuery, derive_seed, run_cell
from ..bench.summary_cache import (
    blobs_from_shm,
    blobs_to_shm,
    graph_fingerprint,
    hydrate_from_blob,
)
from ..core.registry import (
    available_techniques,
    create_estimator,
    estimator_class,
)
from ..faults.inject import maybe_die
from ..faults.plan import FaultPlan
from ..graph.delta import touched_labels
from ..graph.query import QueryGraph
from ..obs import metrics as metrics_mod
from ..obs.histogram import LatencyHistogram
from ..shm import ShmRef
from . import protocol
from .cache import CacheScope, ResultCache
from .supervisor import (
    BREAKER_STATE_CODES,
    CircuitBreaker,
    GenerationManifest,
    WatchdogPolicy,
    worker_rss_bytes,
)

#: wall-clock grace past ``time_limit`` before a busy worker is killed
#: (mirrors the sweep runner's backstop semantics)
DEFAULT_KILL_GRACE = 5.0

#: hard budget for a worker reload/startup acknowledgement; generous —
#: hydration from blobs is milliseconds, a cold prepare can be seconds
DEFAULT_RELOAD_TIMEOUT = 120.0


class AdmissionRejected(RuntimeError):
    """Raised by :meth:`EstimationService.submit` when a technique's
    in-flight + queue budget is exhausted (maps to a 429 payload)."""


class SwapInProgress(RuntimeError):
    """Raised by :meth:`EstimationService.swap_graph` when another swap
    already holds the lock (maps to a 409 payload): swaps serialize by
    *rejection*, not queueing — a stacked-up swap burst would otherwise
    rebuild summaries N times back to back."""


@dataclass
class ServiceConfig:
    """Tunables of one :class:`EstimationService` instance."""

    #: technique names served (default: every available technique)
    techniques: Optional[Sequence[str]] = None
    sampling_ratio: float = 0.03
    #: base seed; request ``run`` r executes under ``derive_seed(seed, r)``
    seed: int = 0
    #: per-request cooperative estimation budget (seconds)
    time_limit: Optional[float] = 10.0
    #: worker processes in the pool
    workers: int = 2
    #: seconds past ``time_limit`` before the hard kill fires
    kill_grace: float = DEFAULT_KILL_GRACE
    #: result-cache capacity (0 disables caching)
    cache_entries: int = 1024
    #: result-cache TTL in seconds (None = entries never expire)
    cache_ttl: Optional[float] = 300.0
    #: per-technique concurrent executions admitted before queueing
    max_inflight: int = 4
    #: per-technique queued requests admitted before rejection
    queue_depth: int = 16
    #: deterministic fault plan for chaos testing (None = disabled)
    fault_plan: Optional[FaultPlan] = None
    #: ship graph/summaries via shared memory (None = auto when sealed)
    use_shm: Optional[bool] = None
    #: multiprocessing start method (None = fork where available)
    start_method: Optional[str] = None
    #: per-technique estimator constructor overrides
    estimator_kwargs: Mapping[str, Mapping] = field(default_factory=dict)
    #: hard budget for worker startup/reload acknowledgement
    reload_timeout: float = DEFAULT_RELOAD_TIMEOUT
    #: consecutive infrastructure failures (crash/timeout) that open a
    #: technique's circuit breaker; 0 disables breakers entirely
    breaker_threshold: int = 5
    #: seconds an open breaker rejects before admitting a half-open probe
    breaker_cooldown: float = 30.0
    #: watchdog patrol period in seconds; 0 disables the watchdog thread
    watchdog_interval: float = 5.0
    #: recycle a worker whose RSS exceeds this many bytes (None = no cap)
    max_worker_rss: Optional[int] = None
    #: proactively recycle a worker after serving this many requests
    recycle_after: Optional[int] = None
    #: directory for the warm-restart generation manifest (None = the
    #: arenas die with the service, exactly the pre-supervision behavior)
    state_dir: Optional[str] = None
    #: accumulated journal length past which a delta swap compacts into
    #: a full publish (bounds worker-respawn replay cost)
    delta_compact_after: int = 256


@dataclass
class _Generation:
    """One published (graph, summaries) state; immutable once built.

    ``handles`` are creator-side :class:`~repro.shm.SealedArena` handles
    (this process made the segments); ``inherited`` names segments a warm
    restart reattached from a dead predecessor's manifest — no handle
    exists for those, but retiring the generation must still unlink them.
    """

    number: int
    graph_payload: object  # the graph itself, or a ShmRef to it
    blob_payload: object  # blob mapping, ShmRef, or None
    handles: List[object] = field(default_factory=list)
    inherited: List[str] = field(default_factory=list)
    #: delta-chain metadata, set on generations made by ``swap_deltas``:
    #: ``base_number`` names the full publish whose payloads this
    #: generation shares, ``batches`` the per-swap journal slices since
    #: it (``(generation_number, deltas)`` pairs, oldest first)
    base_number: Optional[int] = None
    batches: List[Tuple[int, list]] = field(default_factory=list)

    def journal(self) -> list:
        """The accumulated deltas since the base publish, flattened."""
        return [delta for _, batch in self.batches for delta in batch]

    def delta_suffix(self, since: int) -> Optional[list]:
        """Deltas advancing a worker at generation ``since`` to this one.

        None means the worker's state is not on this delta chain (or
        this is a full generation) and a full reload is required.
        """
        if not self.batches or self.base_number is None:
            return None
        if not (self.base_number <= since <= self.number):
            return None
        return [
            delta
            for number, batch in self.batches
            if number > since
            for delta in batch
        ]

    def segment_names(self) -> List[str]:
        return [handle.name for handle in self.handles] + list(self.inherited)

    def release(self) -> None:
        for handle in self.handles:
            try:
                handle.release()
            except Exception:  # pragma: no cover - defensive
                pass
        self.handles = []
        for name in self.inherited:
            shm_mod.unlink_segment(name)
        self.inherited = []

    def disown(self) -> None:
        """Close handles without unlinking: the warm-restart handoff.

        Inherited segments are simply forgotten — they were never
        registered for cleanup in this process to begin with.
        """
        for handle in self.handles:
            shm_mod.disown_segment(handle.name)
        self.handles = []
        self.inherited = []


class _Request:
    """One in-flight estimation request (parent side)."""

    __slots__ = (
        "id", "technique", "query", "run", "name", "fingerprint",
        "seed", "future", "submitted_at", "deadline",
    )

    def __init__(
        self, id: int, technique: str, query: QueryGraph, run: int,
        name: str, fingerprint: str, seed: int, submitted_at: float,
        deadline: Optional[float] = None,
    ) -> None:
        self.id = id
        self.technique = technique
        self.query = query
        self.run = run
        self.name = name
        self.fingerprint = fingerprint
        self.seed = seed
        self.future: Future = Future()
        self.submitted_at = submitted_at
        #: absolute ``time.monotonic`` client deadline (None = no deadline)
        self.deadline = deadline


_SHUTDOWN = object()
_UNSET = object()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _materialize(graph_payload, blob_payload):
    """Turn shipped payloads (objects or ShmRefs) into usable state."""
    graph = graph_payload
    if isinstance(graph, ShmRef):
        from ..graph.compact import CompactGraph

        graph = CompactGraph.from_shm(graph)
    blobs = blob_payload
    if isinstance(blobs, ShmRef):
        blobs = blobs_from_shm(blobs)
    return graph, blobs


def _advance(graph, deltas):
    """The post-delta graph: O(delta) reseal on sealed graphs.

    Sealed graphs (including shm-attached ones, whose base arenas are
    read-only — reseal is copy-on-write) go through ``reseal``; a
    mutable graph applies the journal in place.
    """
    if not deltas:
        return graph
    if hasattr(graph, "reseal"):
        return graph.reseal(deltas)
    graph.apply(deltas)
    return graph


def _apply_or_reset(estimator, graph, deltas) -> str:
    """``apply_deltas`` with a cold-prepare fallback that cannot fail.

    Any maintenance error degrades to dropping the summary — the next
    request pays a cold prepare against the post-delta graph, which is
    always sound.
    """
    try:
        if estimator.prepared:
            return estimator.apply_deltas(graph, deltas)
    except Exception:
        pass
    estimator.graph = graph
    estimator.reset_summary()
    return "reprepare"


def _replay_journal(graph, estimators, journal):
    """Advance base-state graph + estimators by an accumulated journal."""
    if not journal:
        return graph
    graph = _advance(graph, journal)
    for estimator in estimators.values():
        _apply_or_reset(estimator, graph, journal)
    return graph


def _build_estimators(
    graph,
    techniques: Sequence[str],
    sampling_ratio: float,
    seed: int,
    time_limit: Optional[float],
    estimator_kwargs: Mapping[str, Mapping],
    blobs: Optional[Mapping[str, bytes]],
) -> Dict[str, object]:
    """One estimator per technique, hydrated from blobs when available.

    A technique without a blob stays unprepared — its first request pays
    the build inside ``run_cell`` (and, under a fault plan, exposes the
    prepare site to injection, mirroring the sweep pipeline).
    """
    estimators: Dict[str, object] = {}
    for name in techniques:
        kwargs = dict(estimator_kwargs.get(name, {}))
        estimator = create_estimator(
            name,
            graph,
            sampling_ratio=sampling_ratio,
            seed=seed,
            time_limit=time_limit,
            **kwargs,
        )
        blob = blobs.get(name) if blobs is not None else None
        if blob is not None:
            hydrate_from_blob(estimator, blob)
        estimators[name] = estimator
    return estimators


def _serve_worker(
    conn,
    graph_payload,
    blob_payload,
    journal,
    generation: int,
    techniques: Sequence[str],
    sampling_ratio: float,
    seed: int,
    time_limit: Optional[float],
    estimator_kwargs: Mapping[str, Mapping],
    fault_plan: Optional[FaultPlan],
) -> None:
    """Serve-worker loop: estimate requests, reloads, heartbeats, shutdown.

    Messages from the parent:

    * ``("estimate", req_id, technique, query, run, name, budget)`` —
      run one cell via :func:`run_cell` (the batch code path — this is
      what the bit-identical contract rests on) and reply
      ``("done", req_id, record)`` or ``("failed", req_id, message)``.
      ``budget`` is the client deadline's remaining seconds (None = no
      deadline): the estimator's cooperative ``time_limit`` is lowered
      to it for the duration of the request, so a nearly-expired request
      degrades into a fast ``timeout`` record instead of burning the
      full service budget.  A deadline can only *shorten* the run, never
      change a completed estimate, which keeps caching sound;
    * ``("ping", token)`` — watchdog heartbeat; reply
      ``("pong", token, rss_bytes)``;
    * ``("reload", generation, graph_payload, blob_payload, journal)`` —
      swap to a new graph generation between requests (messages are
      processed strictly sequentially, so a request never observes half
      a swap) and reply ``("reloaded", generation)``; a non-empty
      ``journal`` means the payloads are a delta generation's *base*
      state and the worker replays the journal on top;
    * ``("reload_delta", generation, deltas)`` — advance the *live*
      state by a journal suffix: O(delta) reseal plus per-estimator
      ``apply_deltas``, no payload re-materialization.  Reply
      ``("reloaded", generation)``;
    * ``None`` — exit.

    The worker acknowledges startup with ``("ready", generation)`` once
    its estimators exist, so the parent can bound cold-start time.
    """
    try:
        graph, blobs = _materialize(graph_payload, blob_payload)
        estimators = _build_estimators(
            graph, techniques, sampling_ratio, seed, time_limit,
            estimator_kwargs, blobs,
        )
        graph = _replay_journal(graph, estimators, journal)
        conn.send(("ready", generation))
        while True:
            message = conn.recv()
            if message is None:
                return
            kind = message[0]
            if kind == "ping":
                conn.send(("pong", message[1], worker_rss_bytes(os.getpid())))
                continue
            if kind == "reload":
                _, generation, graph_payload, blob_payload, journal = message
                graph, blobs = _materialize(graph_payload, blob_payload)
                estimators = _build_estimators(
                    graph, techniques, sampling_ratio, seed, time_limit,
                    estimator_kwargs, blobs,
                )
                graph = _replay_journal(graph, estimators, journal)
                conn.send(("reloaded", generation))
                continue
            if kind == "reload_delta":
                _, generation, deltas = message
                graph = _advance(graph, deltas)
                for estimator in estimators.values():
                    _apply_or_reset(estimator, graph, deltas)
                conn.send(("reloaded", generation))
                continue
            _, req_id, technique, query, run, name, budget = message
            try:
                maybe_die(fault_plan, technique, name, run)
                estimator = estimators.get(technique)
                if estimator is None:
                    conn.send(
                        ("failed", req_id, f"unknown technique {technique!r}")
                    )
                    continue
                named = NamedQuery(name=name, query=query, true_cardinality=0)
                original_limit = estimator.time_limit
                if budget is not None:
                    estimator.time_limit = (
                        budget
                        if original_limit is None
                        else min(original_limit, budget)
                    )
                try:
                    record = run_cell(
                        technique, estimator, named, run,
                        base_seed=seed, reseed=True, fault_plan=fault_plan,
                    )
                finally:
                    estimator.time_limit = original_limit
                conn.send(("done", req_id, record))
            except Exception as exc:  # keep the worker alive
                conn.send(("failed", req_id, f"{type(exc).__name__}: {exc}"))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        return


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
class _ServeWorker:
    """Parent-side handle of one pooled worker process."""

    def __init__(self, ctx, generation: int, args) -> None:
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_serve_worker, args=(child_conn, *args), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.generation = generation

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=2.0)

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class EstimationService:
    """A running estimation service over one (mutable-by-swap) graph.

    Usable as a context manager; :meth:`start` spawns the pool,
    :meth:`close` drains and reaps it.  ``clock`` is injectable for the
    cache tests (it must be monotonic; the default is
    ``time.monotonic``).
    """

    def __init__(
        self,
        graph,
        config: Optional[ServiceConfig] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.clock = clock
        self.techniques: List[str] = list(
            self.config.techniques
            if self.config.techniques is not None
            else available_techniques()
        )
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            ttl=self.config.cache_ttl,
            clock=clock,
        )
        self._ctx = multiprocessing.get_context(
            self.config.start_method or _default_start_method()
        )
        self._queue: "queue.Queue" = queue.Queue()
        self._request_ids = itertools.count(1)
        self._workers: List[Optional[_ServeWorker]] = []
        self._dispatchers: List[threading.Thread] = []
        self._generation: Optional[_Generation] = None
        self._retired: List[_Generation] = []
        self._swap_lock = threading.Lock()
        self._admission_lock = threading.Lock()
        self._queued: Dict[str, int] = {name: 0 for name in self.techniques}
        self._executing: Dict[str, int] = {name: 0 for name in self.techniques}
        self._stats_lock = threading.Lock()
        self.counters: Dict[str, int] = {}
        self.latency = LatencyHistogram()
        self.per_technique_latency: Dict[str, LatencyHistogram] = {}
        self.breakers: Dict[str, CircuitBreaker] = {}
        if self.config.breaker_threshold > 0:
            self.breakers = {
                name: CircuitBreaker(
                    threshold=self.config.breaker_threshold,
                    cooldown=self.config.breaker_cooldown,
                    clock=clock,
                )
                for name in self.techniques
            }
        self._slot_locks: List[threading.Lock] = []
        self._slot_served: List[int] = []
        self._slot_rss: List[Optional[int]] = []
        self._watchdog_thread: Optional[threading.Thread] = None
        self._watchdog_stop = threading.Event()
        self._ping_tokens = itertools.count(1)
        self._state_dir: Optional[Path] = (
            Path(self.config.state_dir)
            if self.config.state_dir is not None
            else None
        )
        self._started = False
        self._closed = False
        self._started_at: Optional[float] = None
        #: prepared estimators kept by ``_build_blobs`` so delta swaps
        #: can maintain summaries incrementally in the parent
        self._parent_estimators: Dict[str, object] = {}
        graph = self._sealed(graph)
        self.graph = graph

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "EstimationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _sealed(graph):
        if not getattr(graph, "sealed", False) and hasattr(graph, "seal"):
            return graph.seal()
        return graph

    def start(self) -> "EstimationService":
        """Prepare summaries, publish arenas, spawn the pool (idempotent).

        With a ``state_dir``, a generation manifest left by a previous
        daemon is tried first: checksum-verified reattach of the live
        arenas (no cold ``prepare``), quarantine + cold rebuild when any
        segment fails verification.  A failure partway through startup
        releases everything already published — no half-started service
        leaks its arenas.
        """
        if self._started:
            return self
        if self._closed:
            raise RuntimeError("service already closed")
        manifest = None
        if self._state_dir is not None:
            manifest = GenerationManifest.load(self._state_dir)
        if shm_mod.shm_supported():
            shm_mod.reap_orphans(
                keep=manifest.segments if manifest is not None else ()
            )
        generation = None
        if manifest is not None:
            generation = self._try_warm_attach(manifest)
        if generation is None:
            self._incr("serve.cold_starts")
            number = manifest.generation + 1 if manifest is not None else 1
            generation = self._publish(self.graph, number=number)
        try:
            self._generation = generation
            self.cache.clear(new_generation=generation.number)
            workers = max(1, int(self.config.workers))
            self._workers = [None] * workers
            self._slot_locks = [threading.Lock() for _ in range(workers)]
            self._slot_served = [0] * workers
            self._slot_rss = [None] * workers
            for slot in range(workers):
                self._workers[slot] = self._spawn(self._generation)
            self._dispatchers = [
                threading.Thread(
                    target=self._dispatch_loop, args=(slot,), daemon=True,
                    name=f"gcare-serve-dispatch-{slot}",
                )
                for slot in range(workers)
            ]
            for thread in self._dispatchers:
                thread.start()
        except BaseException:
            for worker in self._workers:
                if worker is not None:
                    worker.kill()
            self._workers = []
            generation.release()
            self._generation = None
            raise
        # persist *now*, not at close: warm restart must survive SIGKILL
        self._persist_manifest()
        if self.config.watchdog_interval and self.config.watchdog_interval > 0:
            self._watchdog_stop.clear()
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop, daemon=True,
                name="gcare-serve-watchdog",
            )
            self._watchdog_thread.start()
        self._started = True
        self._started_at = self.clock()
        return self

    def close(self) -> None:
        """Drain the queue, stop dispatchers, reap workers, free arenas.

        With a ``state_dir``, the current generation's arenas are
        *disowned* instead of unlinked and the manifest is refreshed —
        the warm handoff to the next daemon.  Without one, every segment
        this service created is gone when ``close`` returns.
        """
        if self._closed:
            return
        self._closed = True
        if self._watchdog_thread is not None:
            self._watchdog_stop.set()
            self._watchdog_thread.join(timeout=30.0)
            self._watchdog_thread = None
        if self._started:
            for _ in self._dispatchers:
                self._queue.put(_SHUTDOWN)
            for thread in self._dispatchers:
                thread.join(timeout=30.0)
            for worker in self._workers:
                if worker is not None:
                    worker.shutdown()
        self._workers = []
        # fail anything still queued (submitted after the sentinels)
        try:
            while True:
                request = self._queue.get_nowait()
                if request is _SHUTDOWN:
                    continue
                self._resolve_admitted(
                    request,
                    protocol.error_response(
                        protocol.STATUS_WORKER_CRASHED,
                        "service shut down",
                        technique=request.technique,
                        fingerprint=request.fingerprint,
                        run=request.run,
                    ),
                    dequeued=False,
                )
        except queue.Empty:
            pass
        if self._generation is not None:
            if self._state_dir is not None and isinstance(
                self._generation.graph_payload, ShmRef
            ):
                self._persist_manifest()
                self._generation.disown()
            else:
                self._generation.release()
            self._generation = None
        for generation in self._retired:
            generation.release()
        self._retired = []

    # ------------------------------------------------------------------
    # publication (graph + summaries -> payloads, shm where possible)
    # ------------------------------------------------------------------
    def _build_blobs(self, graph) -> Optional[Dict[str, bytes]]:
        """Prepare every technique once in the parent; serialize summaries.

        Skipped entirely under a fault plan, exactly like the sweep
        pipeline: workers must build their own summaries inside
        ``run_cell`` so prepare-site faults can reach them.
        """
        plan = self.config.fault_plan
        self._parent_estimators = {}
        if plan is not None and plan.enabled:
            return None
        blobs: Dict[str, bytes] = {}
        for name in self.techniques:
            kwargs = dict(self.config.estimator_kwargs.get(name, {}))
            try:
                estimator = create_estimator(
                    name,
                    graph,
                    sampling_ratio=self.config.sampling_ratio,
                    seed=self.config.seed,
                    time_limit=self.config.time_limit,
                    **kwargs,
                )
                estimator.prepare()
                blobs[name] = estimator.export_summary()
                self._parent_estimators[name] = estimator
            except Exception:
                continue  # worker prepares locally; requests may still fail
        return blobs

    def _publish(
        self, graph, number: int, blobs: object = _UNSET
    ) -> _Generation:
        """Build one immutable generation: summaries + shm publication.

        ``blobs`` overrides the cold ``_build_blobs`` pass — the delta
        compaction path exports the parent's incrementally-maintained
        summaries instead of re-preparing from scratch.
        """
        if blobs is _UNSET:
            blobs = self._build_blobs(graph)
        graph_payload: object = graph
        blob_payload: object = blobs
        handles: List[object] = []
        use_shm = self.config.use_shm
        if use_shm is None:
            use_shm = shm_mod.shm_supported() and bool(
                getattr(graph, "sealed", False)
            )
        if use_shm and shm_mod.shm_supported():
            if getattr(graph, "sealed", False) and hasattr(graph, "to_shm"):
                try:
                    handle, ref = graph.to_shm()
                except Exception:
                    pass  # unshareable graph: ship the object itself
                else:
                    handles.append(handle)
                    graph_payload = ref
            if blobs:
                try:
                    handle, ref = blobs_to_shm(blobs)
                except Exception:
                    pass
                else:
                    handles.append(handle)
                    blob_payload = ref
        return _Generation(number, graph_payload, blob_payload, handles)

    # ------------------------------------------------------------------
    # warm restart (generation manifest persistence + verified reattach)
    # ------------------------------------------------------------------
    def _config_identity(self) -> Dict[str, object]:
        """The serving parameters a successor must match to reuse arenas.

        Summary blobs were prepared under these exact parameters; a
        daemon booted with different ones would serve subtly different
        estimates off the inherited blobs, so any mismatch forces a cold
        rebuild instead.
        """
        return {
            "techniques": sorted(self.techniques),
            "sampling_ratio": self.config.sampling_ratio,
            "seed": self.config.seed,
            "time_limit": self.config.time_limit,
            "estimator_kwargs": repr(
                sorted(
                    (name, sorted(dict(kwargs).items()))
                    for name, kwargs in self.config.estimator_kwargs.items()
                )
            ),
        }

    def _try_warm_attach(
        self, manifest: GenerationManifest
    ) -> Optional[_Generation]:
        """Reattach a predecessor's arenas, or None to force a cold boot.

        Declines (returning None) on: no shm support, parameter or graph
        mismatch, and any segment that is missing or fails its checksum.
        Corrupt segments are quarantined on the way out so nothing can
        attach them afterwards — the cold rebuild that follows starts
        from a clean namespace.
        """
        if not shm_mod.shm_supported() or manifest.graph_ref is None:
            return None
        if not manifest.config_matches(self._config_identity()):
            self._incr("restart.config_mismatch")
            self._reclaim_stale(manifest)
            return None
        try:
            fingerprint = graph_fingerprint(self.graph)
        except Exception:
            self._reclaim_stale(manifest)
            return None
        if fingerprint != manifest.graph_fingerprint:
            self._incr("restart.fingerprint_mismatch")
            self._reclaim_stale(manifest)
            return None
        verdicts = manifest.verify()
        bad = {
            name: verdict
            for name, verdict in verdicts.items()
            if verdict != "ok"
        }
        if bad:
            self._incr("restart.integrity_failures")
            self._reclaim_stale(manifest, verdicts)
            return None
        from ..graph.compact import CompactGraph

        try:
            self.graph = CompactGraph.from_shm(manifest.graph_ref)
        except Exception:
            self._incr("restart.attach_failures")
            self._reclaim_stale(manifest, verdicts)
            return None
        # the checksum-verified arenas *are* the content the manifest
        # fingerprinted: stamp the memo instead of re-hashing every
        # vertex and edge (otherwise the dominant cost of a warm boot,
        # paid again by _persist_manifest moments later)
        self.graph._fingerprint = manifest.graph_fingerprint
        self._incr("serve.warm_restarts")
        return _Generation(
            manifest.generation,
            manifest.graph_ref,
            manifest.blob_ref,
            handles=[],
            inherited=list(manifest.segments),
        )

    def _reclaim_stale(
        self,
        manifest: GenerationManifest,
        verdicts: Optional[Dict[str, str]] = None,
    ) -> None:
        """Reclaim a declined manifest's segments before the cold rebuild.

        Nothing will ever attach these arenas again (this daemon is about
        to publish fresh ones and overwrite the manifest), so leaving
        them live would leak ``/dev/shm`` on every declined restart.
        Corrupt segments are quarantined (kept, renamed, for post-mortem
        while this process lives); the rest are simply unlinked.
        """
        verdicts = verdicts or {}
        for name in manifest.segments:
            if verdicts.get(name) == "corrupt":
                try:
                    shm_mod.quarantine_segment(name)
                    self._incr("restart.quarantined")
                except OSError:  # pragma: no cover - racing reaper
                    pass
            else:
                shm_mod.unlink_segment(name)

    def _persist_manifest(self) -> None:
        """Write the generation manifest (atomic), if persistence is on."""
        if self._state_dir is None or self._generation is None:
            return
        generation = self._generation
        if generation.batches:
            # delta generations are ephemeral: the manifest keeps
            # describing the last full publish (whose arenas this chain
            # shares, unmodified — reseal is copy-on-write), and a warm
            # successor resumes from that state
            return
        if not isinstance(generation.graph_payload, ShmRef):
            return  # nothing shm-published, nothing a successor could reuse
        checksums: Dict[str, str] = {}
        for name in generation.segment_names():
            try:
                checksums[name] = shm_mod.checksum_segment(name)
            except OSError:  # pragma: no cover - segment vanished mid-save
                return
        blob_ref = generation.blob_payload
        GenerationManifest(
            generation=generation.number,
            graph_fingerprint=graph_fingerprint(self.graph),
            graph_ref=generation.graph_payload,
            blob_ref=blob_ref if isinstance(blob_ref, ShmRef) else None,
            checksums=checksums,
            config=self._config_identity(),
            pid=os.getpid(),
            saved_at=time.time(),
        ).save(self._state_dir)

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------
    def _spawn(self, generation: _Generation) -> _ServeWorker:
        worker = _ServeWorker(
            self._ctx,
            generation.number,
            (
                generation.graph_payload,
                generation.blob_payload,
                generation.journal(),
                generation.number,
                tuple(self.techniques),
                self.config.sampling_ratio,
                self.config.seed,
                self.config.time_limit,
                dict(self.config.estimator_kwargs),
                self.config.fault_plan,
            ),
        )
        # bound cold start: a worker that cannot even build its
        # estimators is useless — kill and let the dispatcher respawn
        if not self._await(worker, "ready", self.config.reload_timeout):
            worker.kill()
        return worker

    @staticmethod
    def _await(worker: _ServeWorker, kind: str, timeout: float) -> bool:
        """Wait for one ``(kind, ...)`` acknowledgement message."""
        try:
            if not worker.conn.poll(timeout):
                return False
            message = worker.conn.recv()
        except (EOFError, OSError):
            return False
        return bool(message) and message[0] == kind

    def _ensure_generation(self, slot: int) -> _ServeWorker:
        """The slot's worker, reloaded/respawned to the current generation."""
        current = self._generation
        worker = self._workers[slot]
        if worker is None or not worker.process.is_alive():
            worker = self._respawn(slot, count_respawn=worker is not None)
            return worker
        if worker.generation == current.number:
            return worker
        # delta-chain fast path: a worker whose live state is on the
        # current chain advances by the journal suffix alone (O(delta));
        # everything else pays the full payload reload + journal replay
        suffix = current.delta_suffix(worker.generation)
        try:
            if suffix is not None:
                worker.conn.send(("reload_delta", current.number, suffix))
            else:
                worker.conn.send(
                    (
                        "reload",
                        current.number,
                        current.graph_payload,
                        current.blob_payload,
                        current.journal(),
                    )
                )
            ok = self._await(worker, "reloaded", self.config.reload_timeout)
        except (OSError, BrokenPipeError):
            ok = False
        if not ok:
            worker.kill()
            return self._respawn(slot)
        worker.generation = current.number
        self._incr("serve.reloads")
        if suffix is not None:
            self._incr("serve.delta_reloads")
        return worker

    def _respawn(self, slot: int, count_respawn: bool = True) -> _ServeWorker:
        worker = self._spawn(self._generation)
        self._workers[slot] = worker
        self._slot_served[slot] = 0
        if count_respawn:
            self._incr("serve.respawns")
        return worker

    # ------------------------------------------------------------------
    # watchdog (heartbeats, RSS caps, proactive recycle)
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        policy = WatchdogPolicy(
            max_rss_bytes=self.config.max_worker_rss,
            recycle_after=self.config.recycle_after,
        )
        while not self._watchdog_stop.wait(self.config.watchdog_interval):
            try:
                self._watchdog_tick(policy)
            except Exception:  # pragma: no cover - patrols must not die
                self._incr("watchdog.tick_errors")

    def _watchdog_tick(self, policy: WatchdogPolicy) -> None:
        """One patrol: heartbeat idle workers, recycle per the policy.

        Only *idle* slots are examined (non-blocking slot-lock acquire):
        a busy worker is already under the dispatcher's hard-kill budget,
        which is strictly tighter supervision than a patrol.  The cache
        gets an eager TTL sweep as part of the patrol — self-healing
        includes not hoarding dead entries until someone happens to
        touch them.
        """
        self._incr("watchdog.ticks")
        swept = self.cache.sweep()
        if swept:
            self._incr("watchdog.cache_swept", swept)
        for slot in range(len(self._workers)):
            lock = self._slot_locks[slot]
            if not lock.acquire(blocking=False):
                continue
            try:
                worker = self._workers[slot]
                if worker is None:
                    continue
                alive = worker.process.is_alive()
                rss: Optional[int] = None
                if alive:
                    rss, ok = self._heartbeat(worker)
                    if not ok:
                        self._recycle(slot, worker, "heartbeat")
                        continue
                    self._slot_rss[slot] = rss
                reason = policy.verdict(alive, rss, self._slot_served[slot])
                if reason is not None:
                    self._recycle(slot, worker, reason)
            finally:
                lock.release()

    def _heartbeat(
        self, worker: _ServeWorker
    ) -> Tuple[Optional[int], bool]:
        """Ping an idle worker; returns ``(rss_bytes, responded)``.

        An idle worker answers in microseconds, so an unanswered ping
        within the patrol interval means the process is wedged outside a
        request (importer deadlock, runaway GC) — the one hang the
        dispatcher's per-request budget can never see.
        """
        token = next(self._ping_tokens)
        try:
            worker.conn.send(("ping", token))
            deadline = time.monotonic() + max(
                1.0, self.config.watchdog_interval
            )
            while time.monotonic() < deadline:
                if not worker.conn.poll(0.05):
                    continue
                message = worker.conn.recv()
                if (
                    message
                    and message[0] == "pong"
                    and message[1] == token
                ):
                    return message[2], True
                # stale pong from a previous patrol: keep draining
            return None, False
        except (OSError, BrokenPipeError, EOFError):
            return None, False

    def _recycle(self, slot: int, worker: _ServeWorker, reason: str) -> None:
        """Replace a worker (graceful for proactive reasons, reap if dead)."""
        if reason == "dead":
            worker.kill()  # reaps the corpse; conn close is idempotent
        else:
            worker.shutdown()
        self._respawn(slot, count_respawn=False)
        # one lock acquisition for both counters: a stats() snapshot must
        # never observe the total and the per-reason breakdown disagreeing
        with self._stats_lock:
            self.counters["watchdog.recycles"] = (
                self.counters.get("watchdog.recycles", 0) + 1
            )
            key = f"watchdog.recycle.{reason}"
            self.counters[key] = self.counters.get(key, 0) + 1

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _incr(self, name: str, n: int = 1) -> None:
        with self._stats_lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def _record_latency(self, technique: str, seconds: float) -> None:
        with self._stats_lock:
            self.latency.record(seconds)
            histogram = self.per_technique_latency.get(technique)
            if histogram is None:
                histogram = LatencyHistogram()
                self.per_technique_latency[technique] = histogram
            histogram.record(seconds)

    def stats(self) -> dict:
        """A JSON-serializable snapshot (the daemon's ``/stats`` body)."""
        with self._stats_lock:
            counters = dict(self.counters)
            latency = self.latency.summary()
            per_technique = {
                name: histogram.summary()
                for name, histogram in self.per_technique_latency.items()
            }
        with self._admission_lock:
            admission = {
                name: {
                    "executing": self._executing.get(name, 0),
                    "queued": self._queued.get(name, 0),
                    "max_inflight": self.config.max_inflight,
                    "queue_depth": self.config.queue_depth,
                }
                for name in self.techniques
            }
        generation = self._generation.number if self._generation else 0
        journal_len = (
            len(self._generation.journal()) if self._generation else 0
        )
        uptime = (
            self.clock() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return {
            "generation": generation,
            "graph_generation": getattr(self.graph, "generation", 0),
            "journal_len": journal_len,
            "workers": len(self._workers),
            "techniques": list(self.techniques),
            "kernel_backend": kernels.active_backend(),
            "uptime_s": uptime,
            "counters": counters,
            "latency": latency,
            "per_technique": per_technique,
            "admission": admission,
            "cache": self.cache.stats(),
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in self.breakers.items()
            },
            "watchdog": {
                "interval_s": self.config.watchdog_interval,
                "max_worker_rss": self.config.max_worker_rss,
                "recycle_after": self.config.recycle_after,
                "recycles": counters.get("watchdog.recycles", 0),
                "slots": [
                    {
                        "served": self._slot_served[slot]
                        if slot < len(self._slot_served)
                        else 0,
                        "rss_bytes": self._slot_rss[slot]
                        if slot < len(self._slot_rss)
                        else None,
                    }
                    for slot in range(len(self._workers))
                ],
            },
        }

    def metrics_text(self) -> str:
        """The daemon's ``/metrics`` body: flat-text exposition.

        Everything an external scraper needs to alert on without parsing
        the richer ``/stats`` JSON: counters, cache hit/miss, breaker
        states (numeric-coded), watchdog recycles, and the latency
        histogram shards (global + per technique) as sparse cumulative
        buckets.
        """
        with self._stats_lock:
            counters = dict(self.counters)
            global_hist = LatencyHistogram.from_dict(self.latency.to_dict())
            per_technique = {
                name: LatencyHistogram.from_dict(histogram.to_dict())
                for name, histogram in self.per_technique_latency.items()
            }
        lines: List[str] = []
        generation = self._generation.number if self._generation else 0
        uptime = (
            self.clock() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        lines.append(metrics_mod.format_line("gcare_uptime_seconds", uptime))
        lines.append(metrics_mod.format_line("gcare_generation", generation))
        lines.append(
            metrics_mod.format_line(
                "gcare_graph_generation",
                getattr(self.graph, "generation", 0),
            )
        )
        lines.append(
            metrics_mod.format_line(
                "gcare_journal_length",
                len(self._generation.journal()) if self._generation else 0,
            )
        )
        backend = kernels.active_backend()
        lines.append(
            metrics_mod.format_line(
                "gcare_kernel_backend",
                kernels.backend_code(backend),
                {"backend": backend},
            )
        )
        lines.append(
            metrics_mod.format_line("gcare_workers", len(self._workers))
        )
        lines.extend(metrics_mod.counter_lines(counters))
        cache_stats = self.cache.stats()
        for key in (
            "entries", "hits", "misses", "evictions", "expirations",
        ):
            lines.append(
                metrics_mod.format_line(f"gcare_cache_{key}", cache_stats[key])
            )
        for name, breaker in sorted(self.breakers.items()):
            snapshot = breaker.snapshot()
            labels = {"technique": name}
            lines.append(
                metrics_mod.format_line(
                    "gcare_breaker_state",
                    BREAKER_STATE_CODES[snapshot["state"]],
                    labels,
                )
            )
            for key in ("opens", "closes", "probes", "rejected"):
                lines.append(
                    metrics_mod.format_line(
                        f"gcare_breaker_{key}_total", snapshot[key], labels
                    )
                )
        lines.append(
            metrics_mod.format_line(
                "gcare_watchdog_recycles_total",
                counters.get("watchdog.recycles", 0),
            )
        )
        lines.extend(
            metrics_mod.histogram_lines(
                "gcare_request_latency_seconds", global_hist
            )
        )
        for name, histogram in sorted(per_technique.items()):
            lines.extend(
                metrics_mod.histogram_lines(
                    "gcare_request_latency_seconds",
                    histogram,
                    {"technique": name},
                )
            )
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self, technique: str, query: QueryGraph, run: int = 0,
        name: Optional[str] = None, deadline_s: Optional[float] = None,
    ) -> Future:
        """Enqueue one estimation request; returns a response future.

        Resolution is always a protocol response dict — cache hits
        resolve immediately, admission rejections resolve immediately
        with a 429-style payload, breaker rejections with a 503-style
        payload, everything else resolves when a worker (or its kill
        machinery) finishes.

        ``deadline_s`` is the client's remaining budget in seconds.  An
        expired deadline is rejected before admission; an admitted
        request carries its absolute deadline through the queue (expiry
        there resolves to a fast 504 without touching a worker) and into
        the worker as a shortened cooperative ``time_limit``.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running")
        submitted_at = self.clock()
        self._incr("serve.requests")
        future: Future = Future()
        if technique not in self._executing:
            self._incr("serve.unknown_technique")
            future.set_result(
                protocol.error_response(
                    protocol.STATUS_UNKNOWN_TECHNIQUE,
                    f"unknown technique {technique!r}; "
                    f"serving {sorted(self._executing)}",
                    technique=technique,
                    run=run,
                )
            )
            return future
        seed = derive_seed(self.config.seed, run)
        fingerprint = protocol.query_fingerprint(
            technique, query, seed,
            self.config.sampling_ratio, self.config.time_limit,
        )
        if deadline_s is not None and deadline_s <= 0:
            self._incr("serve.deadline_rejected")
            future.set_result(
                protocol.error_response(
                    protocol.STATUS_TIMEOUT,
                    "deadline expired before admission",
                    technique=technique,
                    fingerprint=fingerprint,
                    run=run,
                )
            )
            return future
        cached = self.cache.get(fingerprint)
        if cached is not None:
            self._incr("serve.cache_hits")
            cached["cached"] = True
            self._record_latency(technique, self.clock() - submitted_at)
            future.set_result(cached)
            return future
        breaker = self.breakers.get(technique)
        if breaker is not None:
            allowed, retry_after = breaker.allow()
            if not allowed:
                self._incr("serve.breaker_rejected")
                future.set_result(
                    protocol.error_response(
                        protocol.STATUS_UNAVAILABLE,
                        f"circuit breaker open for technique {technique!r}",
                        technique=technique,
                        fingerprint=fingerprint,
                        run=run,
                        retry_after=retry_after,
                    )
                )
                return future
        with self._admission_lock:
            executing = self._executing[technique]
            queued = self._queued[technique]
            if (
                executing >= self.config.max_inflight
                and queued >= self.config.queue_depth
            ):
                admitted = False
            else:
                self._queued[technique] = queued + 1
                admitted = True
        if not admitted:
            self._incr("serve.rejected")
            future.set_result(
                protocol.error_response(
                    protocol.STATUS_REJECTED,
                    (
                        f"technique {technique!r} saturated: "
                        f"{executing} executing (max "
                        f"{self.config.max_inflight}), {queued} queued "
                        f"(depth {self.config.queue_depth})"
                    ),
                    technique=technique,
                    fingerprint=fingerprint,
                    run=run,
                )
            )
            return future
        request = _Request(
            id=next(self._request_ids),
            technique=technique,
            query=query,
            run=run,
            name=name or fingerprint,
            fingerprint=fingerprint,
            seed=seed,
            submitted_at=submitted_at,
            deadline=(
                time.monotonic() + deadline_s
                if deadline_s is not None
                else None
            ),
        )
        request.future = future
        self._queue.put(request)
        return future

    def estimate(
        self, technique: str, query: QueryGraph, run: int = 0,
        name: Optional[str] = None, timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> dict:
        """Blocking :meth:`submit` (the in-process client API)."""
        return self.submit(
            technique, query, run, name=name, deadline_s=deadline_s
        ).result(timeout=timeout)

    # ------------------------------------------------------------------
    def _resolve_admitted(
        self, request: _Request, response: dict, dequeued: bool = True
    ) -> None:
        """Resolve an admitted request and release its admission slot."""
        with self._admission_lock:
            counter = self._executing if dequeued else self._queued
            if request.technique in counter:
                counter[request.technique] = max(
                    0, counter[request.technique] - 1
                )
        self._record_latency(
            request.technique, self.clock() - request.submitted_at
        )
        if not request.future.done():
            request.future.set_result(response)

    def _dispatch_loop(self, slot: int) -> None:
        """One dispatcher thread per worker slot: queue -> worker -> future.

        Expired-deadline requests resolve to a fast 504 here, *before*
        touching the worker: the whole point of deadline propagation is
        that work nobody is waiting for anymore costs a dictionary
        lookup, not a worker slot.  The slot lock serializes request
        execution against watchdog recycles of the same slot.
        """
        while True:
            request = self._queue.get()
            if request is _SHUTDOWN:
                return
            with self._admission_lock:
                self._queued[request.technique] = max(
                    0, self._queued[request.technique] - 1
                )
                self._executing[request.technique] += 1
            expired_in_queue = (
                request.deadline is not None
                and time.monotonic() >= request.deadline
            )
            if expired_in_queue:
                self._incr("serve.deadline_expired")
                response = protocol.error_response(
                    protocol.STATUS_TIMEOUT,
                    "deadline expired while queued",
                    technique=request.technique,
                    fingerprint=request.fingerprint,
                    run=request.run,
                )
            else:
                try:
                    with self._slot_locks[slot]:
                        response = self._execute(slot, request)
                        self._slot_served[slot] += 1
                except Exception as exc:  # pragma: no cover - defensive
                    response = protocol.error_response(
                        protocol.STATUS_WORKER_CRASHED,
                        f"dispatch failure: {type(exc).__name__}: {exc}",
                        technique=request.technique,
                        fingerprint=request.fingerprint,
                        run=request.run,
                    )
                self._breaker_outcome(request, response)
            self._resolve_admitted(request, response)

    def _breaker_outcome(self, request: _Request, response: dict) -> None:
        """Feed one executed request's outcome into its breaker.

        Only infrastructure outcomes count: 200 closes/reset, 500 is
        always a failure, 504 is a failure only when the request carried
        no client deadline (a 50 ms client budget expiring is the
        *client's* condition, and must not poison the technique for
        everyone else).  Anything else is neutral.
        """
        breaker = self.breakers.get(request.technique)
        if breaker is None:
            return
        status = response.get("status")
        if status == protocol.STATUS_OK:
            breaker.record_success()
        elif status == protocol.STATUS_WORKER_CRASHED or (
            status == protocol.STATUS_TIMEOUT and request.deadline is None
        ):
            breaker.record_failure()

    def _execute(self, slot: int, request: _Request) -> dict:
        """Run one request on the slot's worker, enforcing the hard kill.

        A client deadline, when present, shrinks both budgets: the
        worker's cooperative ``check_deadline`` budget becomes
        ``min(time_limit, remaining)`` and the parent-side hard kill
        follows suit, so a request nobody waits for is abandoned at the
        client's horizon instead of the service's.
        """
        worker = self._ensure_generation(slot)
        generation = worker.generation
        client_remaining: Optional[float] = None
        if request.deadline is not None:
            client_remaining = request.deadline - time.monotonic()
            if client_remaining <= 0:
                self._incr("serve.deadline_expired")
                return protocol.error_response(
                    protocol.STATUS_TIMEOUT,
                    "deadline expired before execution",
                    technique=request.technique,
                    fingerprint=request.fingerprint,
                    run=request.run,
                    generation=generation,
                )
        effective_limit = self.config.time_limit
        if client_remaining is not None:
            effective_limit = (
                client_remaining
                if effective_limit is None
                else min(effective_limit, client_remaining)
            )
        try:
            worker.conn.send(
                (
                    "estimate",
                    request.id,
                    request.technique,
                    request.query,
                    request.run,
                    request.name,
                    effective_limit,
                )
            )
        except (OSError, BrokenPipeError):
            worker.kill()
            self._respawn(slot)
            self._incr("serve.crashes")
            return protocol.error_response(
                protocol.STATUS_WORKER_CRASHED,
                "worker died before accepting the request",
                technique=request.technique,
                fingerprint=request.fingerprint,
                run=request.run,
                generation=generation,
            )
        budget = None
        if effective_limit is not None:
            budget = effective_limit + self.config.kill_grace
        deadline = time.monotonic() + budget if budget is not None else None
        while True:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                # the sweep kill machinery, serving edition: terminate
                # the wedged worker, respawn the slot, fail the request
                worker.kill()
                self._respawn(slot)
                self._incr("serve.timeouts")
                return protocol.error_response(
                    protocol.STATUS_TIMEOUT,
                    f"request exceeded {budget:.1f}s hard budget",
                    technique=request.technique,
                    fingerprint=request.fingerprint,
                    run=request.run,
                    generation=generation,
                )
            try:
                if not worker.conn.poll(
                    remaining if remaining is not None else 1.0
                ):
                    continue
                message = worker.conn.recv()
            except (EOFError, OSError):
                worker.kill()
                self._respawn(slot)
                self._incr("serve.crashes")
                return protocol.error_response(
                    protocol.STATUS_WORKER_CRASHED,
                    "worker crashed mid-request",
                    technique=request.technique,
                    fingerprint=request.fingerprint,
                    run=request.run,
                    generation=generation,
                )
            kind = message[0]
            if kind == "done" and message[1] == request.id:
                record = message[2]
                return self._response_from_record(request, record, generation)
            if kind == "failed" and message[1] == request.id:
                self._incr("serve.errors")
                return protocol.error_response(
                    protocol.STATUS_WORKER_CRASHED,
                    f"worker error: {message[2]}",
                    technique=request.technique,
                    fingerprint=request.fingerprint,
                    run=request.run,
                    generation=generation,
                )
            # stray message from a previous (killed) request on a reused
            # pipe cannot happen — each slot is single-threaded and kills
            # its worker on timeout — but drop defensively rather than
            # mis-deliver
            continue

    def _cache_scope(self, request: _Request) -> Optional[CacheScope]:
        """The entry's dependence scope, for delta-swap retargeting."""
        try:
            delta_local = bool(estimator_class(request.technique).delta_local)
        except Exception:
            delta_local = False
        return CacheScope.for_query(delta_local, request.query)

    def _response_from_record(
        self, request: _Request, record, generation: int
    ) -> dict:
        if record.error is None:
            response = protocol.success_response(
                request.technique,
                request.fingerprint,
                record.estimate,
                record.elapsed,
                request.seed,
                request.run,
                generation,
                cached=False,
            )
            self.cache.put(
                request.fingerprint,
                response,
                generation,
                scope=self._cache_scope(request),
            )
            self._incr("serve.estimates")
            return response
        self._incr("serve.errors")
        self._incr(f"serve.error.{record.error.split(':', 1)[0]}")
        return protocol.error_response(
            protocol.status_for_record_error(record.error),
            record.error,
            technique=request.technique,
            fingerprint=request.fingerprint,
            run=request.run,
            generation=generation,
        )

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    def swap_graph(self, graph) -> dict:
        """Hot-reload the service onto a new data graph.

        The new generation's summaries are prepared **before** anything
        is published — traffic keeps being served from the old
        generation throughout — then the switch is atomic: publish the
        new generation, clear (and re-fence) the result cache, and let
        each worker reload lazily before its next request.  A response
        is always computed against one coherent generation, and its
        ``generation`` field says which.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running")
        # swaps serialize by *rejection*, not queueing: a second swap
        # arriving mid-swap gets an immediate conflict (the daemon maps
        # it to 409) rather than silently stacking generations
        if not self._swap_lock.acquire(blocking=False):
            self._incr("serve.swap_conflicts")
            raise SwapInProgress("a graph swap is already in progress")
        try:
            graph = self._sealed(graph)
            current = self._generation
            new = self._publish(graph, number=current.number + 1)
            self.graph = graph
            self._generation = new
            self.cache.clear(new_generation=new.number)
            self._retired.append(current)
            # segments two generations back can no longer be needed by a
            # reload (reloads only ever read the current generation), and
            # POSIX keeps already-attached mappings alive past unlink —
            # so releasing them here cannot tear an in-flight request
            while len(self._retired) > 1:
                self._retired.pop(0).release()
            self._incr("serve.swaps")
            self._persist_manifest()
        finally:
            self._swap_lock.release()
        return {"generation": new.number, "graph": repr(graph)}

    def swap_deltas(self, deltas) -> dict:
        """Hot-advance the service by a mutation journal (delta swap).

        The O(delta) sibling of :meth:`swap_graph`: instead of a new
        graph, the caller ships the journal slice that produced it.  The
        parent reseals its graph, maintains its prepared summaries via
        ``Estimator.apply_deltas`` (incremental where the technique
        supports it, re-prepare otherwise), and publishes a generation
        that *shares* the base arenas — nothing is re-serialized or
        re-published; the shm handle ownership simply moves forward
        along the chain.  Workers advance lazily: live ones by the
        journal suffix, respawned ones by replaying the accumulated
        journal on the base payloads.  The result cache is retargeted,
        keeping provably-unaffected entries.

        Once the accumulated journal exceeds
        ``config.delta_compact_after``, the swap compacts: the parent's
        maintained summaries are exported and a full generation is
        published (no cold re-prepare).

        Delta generations are **ephemeral**: the warm-restart manifest
        keeps describing the last full publish, so a daemon restart
        resumes from that state and the journal since it is lost.

        Raises :class:`~repro.graph.delta.DeltaError` when the slice
        does not apply cleanly (torn journal — nothing is published),
        ``ValueError`` when the served graph cannot reseal, and
        :class:`SwapInProgress` on a concurrent swap.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running")
        if not self._swap_lock.acquire(blocking=False):
            self._incr("serve.swap_conflicts")
            raise SwapInProgress("a graph swap is already in progress")
        try:
            deltas = list(deltas)
            current = self._generation
            if not deltas:
                return {
                    "generation": current.number,
                    "applied": 0,
                    "mode": "noop",
                    "cache_kept": len(self.cache),
                    "cache_dropped": 0,
                }
            if not hasattr(self.graph, "reseal"):
                raise ValueError(
                    "delta swap requires a sealed (reseal-capable) graph"
                )
            # DeltaError here aborts the swap with nothing published
            new_graph = self.graph.reseal(deltas)
            number = current.number + 1
            # parent-side summary maintenance (empty under fault plans
            # and after warm attach — workers then own their summaries)
            for estimator in self._parent_estimators.values():
                mode = _apply_or_reset(estimator, new_graph, deltas)
                self._incr(f"serve.summary_update.{mode}")
            base_number = (
                current.base_number if current.batches else current.number
            )
            batches = list(current.batches) + [(number, deltas)]
            journal_len = sum(len(batch) for _, batch in batches)
            compacted = journal_len > max(0, self.config.delta_compact_after)
            if compacted:
                if self._parent_estimators:
                    blobs: Dict[str, bytes] = {}
                    for name, estimator in self._parent_estimators.items():
                        try:
                            if not estimator.prepared:
                                estimator.prepare()
                            blobs[name] = estimator.export_summary()
                        except Exception:
                            continue
                    new = self._publish(new_graph, number=number, blobs=blobs)
                else:
                    new = self._publish(new_graph, number=number)
                self._incr("serve.delta_compacts")
            else:
                new = _Generation(
                    number,
                    current.graph_payload,
                    current.blob_payload,
                    handles=current.handles,
                    inherited=current.inherited,
                    base_number=base_number,
                    batches=batches,
                )
                # ownership transfer: the retired generation must not
                # release the arenas the chain still shares
                current.handles = []
                current.inherited = []
            self.graph = new_graph
            self._generation = new
            edge_labels, vertex_labels = touched_labels(deltas)
            kept, dropped = self.cache.retarget(
                number, edge_labels, vertex_labels
            )
            self._incr("serve.cache_retained", kept)
            self._incr("serve.cache_retarget_dropped", dropped)
            self._retired.append(current)
            while len(self._retired) > 1:
                self._retired.pop(0).release()
            self._incr("serve.delta_swaps")
            if compacted:
                self._persist_manifest()
        finally:
            self._swap_lock.release()
        return {
            "generation": new.number,
            "applied": len(deltas),
            "mode": "compacted" if compacted else "delta",
            "graph_generation": getattr(new_graph, "generation", 0),
            "journal_len": 0 if compacted else journal_len,
            "cache_kept": kept,
            "cache_dropped": dropped,
        }

"""Wire protocol of the estimation service: JSON payloads + fingerprints.

One request shape, one response shape, shared by every transport (the
in-process :class:`~repro.serve.service.EstimationService` API, the HTTP
daemon, and the load generator):

Request::

    {
      "technique": "wj",             # registry name
      "query": {                     # structured query graph, or ...
        "vertices": [[0], [], [2]],  # one label list per vertex
        "edges": [[0, 1, 0], [1, 2, 2]]
      },
      "run": 0                       # repetition index (drives the seed)
    }

Response (success)::

    {
      "status": 200,
      "technique": "wj",
      "fingerprint": "ab12...",      # query-identity cache key
      "estimate": 3.0,
      "elapsed_ms": 0.42,            # worker-side on-line estimation time
      "seed": 1,                     # the derived per-request seed
      "run": 0,
      "generation": 1,               # graph generation that served it
      "cached": false,               # true when served from the result cache
      "error": null
    }

Failures keep the same envelope with ``estimate: null`` and an ``error``
string; ``status`` follows HTTP semantics (400 malformed, 404 unknown
technique, 429 admission rejection, 500 worker crash, 504 timeout).

The **fingerprint** is the service's cache identity: a content hash of
the technique, the canonical query structure, the derived seed, and the
estimator parameters.  Two requests with equal fingerprints are
guaranteed identical answers (on the same graph generation), which is
what makes the result cache sound.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from ..graph.query import QueryGraph

#: HTTP-style status codes used across transports
STATUS_OK = 200
STATUS_BAD_REQUEST = 400
STATUS_UNKNOWN_TECHNIQUE = 404
STATUS_CONFLICT = 409
STATUS_REJECTED = 429
STATUS_WORKER_CRASHED = 500
STATUS_UNAVAILABLE = 503
STATUS_TIMEOUT = 504

#: ``EvalRecord.error`` value -> response status (anything else maps 500)
_ERROR_STATUS = {
    "timeout": STATUS_TIMEOUT,
    "unsupported": STATUS_BAD_REQUEST,
}


class ProtocolError(ValueError):
    """A malformed request payload (maps to a 400 response).

    ``field`` names the offending request field when known, so the 400
    body can carry a per-field diagnostic instead of a bare message.
    """

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.field = field


def query_to_payload(query: QueryGraph) -> Dict[str, Any]:
    """Structured JSON form of a query graph (inverse of
    :func:`query_from_payload`)."""
    return {
        "vertices": [sorted(labels) for labels in query.vertex_labels],
        "edges": [[u, v, label] for u, v, label in query.edges],
    }


def query_from_payload(payload: Mapping) -> QueryGraph:
    """Parse the structured query form; raises :class:`ProtocolError`."""
    try:
        vertices = payload["vertices"]
        edges = payload["edges"]
        if not isinstance(vertices, (list, tuple)):
            raise TypeError("vertices must be a list")
        if not isinstance(edges, (list, tuple)):
            raise TypeError("edges must be a list")
        parsed_vertices = [
            [int(label) for label in labels] for labels in vertices
        ]
        parsed_edges = [
            (int(u), int(v), int(label)) for u, v, label in edges
        ]
        return QueryGraph(parsed_vertices, parsed_edges)
    except ProtocolError:
        raise
    except KeyError as exc:
        raise ProtocolError(
            f"query is missing {exc.args[0]!r}", field=f"query.{exc.args[0]}"
        ) from exc
    except Exception as exc:
        raise ProtocolError(
            f"malformed query payload: {exc}", field="query"
        ) from exc


def canonical_query(query: QueryGraph) -> str:
    """Deterministic text identity of a query's structure.

    Vertex order and edge order are part of query identity (estimators
    decompose in input order), so the canonical form preserves both —
    only label-set ordering inside a vertex is normalized.
    """
    return json.dumps(query_to_payload(query), separators=(",", ":"))


def query_fingerprint(
    technique: str,
    query: QueryGraph,
    seed: int,
    sampling_ratio: float,
    time_limit: Optional[float],
) -> str:
    """Cache key: technique + canonical query + the exact seed/parameters.

    The *derived* per-request seed goes in (not the base seed + run pair),
    so two routes to the same seed share one cache entry, and the key is
    indifferent to how the caller numbered its runs.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(technique.encode())
    digest.update(b"|")
    digest.update(canonical_query(query).encode())
    digest.update(
        f"|s={seed}|p={sampling_ratio!r}|t={time_limit!r}".encode()
    )
    return digest.hexdigest()


def parse_request(payload: Mapping) -> Dict[str, Any]:
    """Validate a request envelope into ``{technique, query, run, deadline_ms}``.

    Raises :class:`ProtocolError` on any malformation; the caller maps
    that to a 400 response carrying the offending ``field``.

    ``deadline_ms`` is the optional client deadline budget: "this answer
    is worthless after N milliseconds".  It is validated here and turned
    into an absolute deadline by the transport at admission time.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError("request body must be a JSON object", field="body")
    technique = payload.get("technique")
    if not isinstance(technique, str) or not technique:
        raise ProtocolError(
            "request needs a 'technique' string", field="technique"
        )
    query_payload = payload.get("query")
    if not isinstance(query_payload, Mapping):
        raise ProtocolError("request needs a 'query' object", field="query")
    run = payload.get("run", 0)
    if not isinstance(run, int) or isinstance(run, bool) or run < 0:
        raise ProtocolError(
            "'run' must be a non-negative integer", field="run"
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if (
            not isinstance(deadline_ms, (int, float))
            or isinstance(deadline_ms, bool)
            or deadline_ms <= 0
        ):
            raise ProtocolError(
                "'deadline_ms' must be a positive number", field="deadline_ms"
            )
        deadline_ms = float(deadline_ms)
    return {
        "technique": technique,
        "query": query_from_payload(query_payload),
        "run": run,
        "deadline_ms": deadline_ms,
    }


def success_response(
    technique: str,
    fingerprint: str,
    estimate: float,
    elapsed_s: float,
    seed: int,
    run: int,
    generation: int,
    cached: bool = False,
) -> Dict[str, Any]:
    return {
        "status": STATUS_OK,
        "technique": technique,
        "fingerprint": fingerprint,
        "estimate": estimate,
        "elapsed_ms": elapsed_s * 1000.0,
        "seed": seed,
        "run": run,
        "generation": generation,
        "cached": cached,
        "error": None,
    }


def error_response(
    status: int,
    error: str,
    technique: Optional[str] = None,
    fingerprint: Optional[str] = None,
    run: int = 0,
    generation: Optional[int] = None,
    field: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    """A well-formed failure envelope (same fields as success, no estimate).

    ``field`` (400s) names the malformed request field; ``retry_after``
    (503s) is the circuit breaker's remaining cooldown in seconds, echoed
    by the HTTP layer as a ``Retry-After`` header.
    """
    payload = {
        "status": status,
        "technique": technique,
        "fingerprint": fingerprint,
        "estimate": None,
        "elapsed_ms": None,
        "seed": None,
        "run": run,
        "generation": generation,
        "cached": False,
        "error": error,
    }
    if field is not None:
        payload["field"] = field
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return payload


def status_for_record_error(error: str) -> int:
    """Map a structured :class:`EvalRecord` error onto a response status."""
    return _ERROR_STATUS.get(error, STATUS_WORKER_CRASHED)

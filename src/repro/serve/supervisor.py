"""Self-healing primitives of the estimation service.

Three concerns, one module — everything the service uses to *stay* up
rather than merely start up:

* :class:`CircuitBreaker` — per-technique failure containment.  N
  consecutive infrastructure failures (worker crashes, hard timeouts)
  open the breaker; while open, requests are rejected immediately with a
  503 + ``Retry-After`` instead of being fed to a technique that is
  currently burning a worker per request.  After a cooldown the breaker
  goes *half-open* and admits a single probe request: success closes it,
  failure re-opens it for another cooldown.
* :class:`WatchdogPolicy` + :func:`worker_rss_bytes` — the decision
  logic of the worker watchdog: recycle a worker proactively after K
  requests or past an RSS cap, and respawn one whose heartbeat dies,
  *before* it wedges mid-request.
* :class:`GenerationManifest` — crash-safe warm restart.  The daemon
  persists what it published to ``/dev/shm`` (segment names, blake2b
  checksums, the graph fingerprint, its serving parameters) into a small
  JSON file; a restarted daemon verifies the checksums and reattaches
  the live arenas, skipping the cold ``prepare`` entirely.  A segment
  whose bytes no longer match is quarantined
  (:func:`repro.shm.quarantine_segment`) and the daemon falls back to a
  cold rebuild — corruption degrades to slowness, never to wrong
  estimates.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from .. import shm as shm_mod
from ..shm import ShmRef

# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: numeric encoding for the /metrics exposition (gauges must be numbers)
BREAKER_STATE_CODES = {
    BREAKER_CLOSED: 0,
    BREAKER_OPEN: 1,
    BREAKER_HALF_OPEN: 2,
}


class CircuitBreaker:
    """Closed → open → half-open failure containment for one technique.

    Only *infrastructure* outcomes drive the state machine: a worker
    crash or hard timeout is a failure, a served estimate is a success,
    and client-side outcomes (400s, 429s) are neutral.  All methods are
    thread-safe; ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("breaker cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opens = 0
        self.closes = 0
        self.probes = 0
        self.rejected = 0
        self._probe_inflight = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def allow(self) -> "tuple[bool, float]":
        """May a request proceed?  Returns ``(allowed, retry_after_s)``.

        While open, ``retry_after_s`` is the remaining cooldown.  In the
        half-open state exactly one in-flight probe is admitted; further
        requests are rejected with a minimal retry hint until the probe
        resolves.
        """
        with self._lock:
            if self.state == BREAKER_CLOSED:
                return True, 0.0
            now = self.clock()
            if self.state == BREAKER_OPEN:
                remaining = self.opened_at + self.cooldown - now
                if remaining > 0:
                    self.rejected += 1
                    return False, remaining
                self.state = BREAKER_HALF_OPEN
                self._probe_inflight = False
            if self._probe_inflight:
                self.rejected += 1
                return False, min(1.0, self.cooldown)
            self._probe_inflight = True
            self.probes += 1
            return True, 0.0

    def record_success(self) -> None:
        with self._lock:
            if self.state != BREAKER_CLOSED:
                self.closes += 1
            self.state = BREAKER_CLOSED
            self.consecutive_failures = 0
            self._probe_inflight = False
            self.opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            probe_failed = (
                self.state == BREAKER_HALF_OPEN and self._probe_inflight
            )
            self._probe_inflight = False
            if probe_failed or self.consecutive_failures >= self.threshold:
                if self.state != BREAKER_OPEN:
                    self.opens += 1
                self.state = BREAKER_OPEN
                self.opened_at = self.clock()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable state for ``/stats`` and ``/metrics``."""
        with self._lock:
            retry_after = 0.0
            if self.state == BREAKER_OPEN and self.opened_at is not None:
                retry_after = max(
                    0.0, self.opened_at + self.cooldown - self.clock()
                )
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "opens": self.opens,
                "closes": self.closes,
                "probes": self.probes,
                "rejected": self.rejected,
                "retry_after_s": retry_after,
            }


# ---------------------------------------------------------------------------
# worker watchdog
# ---------------------------------------------------------------------------
_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def worker_rss_bytes(pid: int) -> Optional[int]:
    """Current resident set size of a process, or None off-Linux."""
    try:
        with open(f"/proc/{pid}/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


@dataclass
class WatchdogPolicy:
    """When to recycle a worker; pure decision logic, trivially testable.

    ``recycle_after`` bounds requests served by one process (leak
    containment: a slow per-request leak never accumulates past K
    requests); ``max_rss_bytes`` is the hard memory cap.  Either being
    ``None`` disables that check.
    """

    max_rss_bytes: Optional[int] = None
    recycle_after: Optional[int] = None

    def verdict(
        self,
        alive: bool,
        rss_bytes: Optional[int],
        requests_served: int,
    ) -> Optional[str]:
        """The recycle reason for a worker in this state, or None."""
        if not alive:
            return "dead"
        if (
            self.recycle_after is not None
            and requests_served >= self.recycle_after
        ):
            return "requests"
        if (
            self.max_rss_bytes is not None
            and rss_bytes is not None
            and rss_bytes > self.max_rss_bytes
        ):
            return "rss"
        return None


# ---------------------------------------------------------------------------
# generation manifest (crash-safe warm restart)
# ---------------------------------------------------------------------------
MANIFEST_NAME = "generation.json"
MANIFEST_VERSION = 1


def manifest_path(state_dir) -> Path:
    return Path(state_dir) / MANIFEST_NAME


def _encode_ref(ref: Optional[ShmRef]) -> Optional[str]:
    """ShmRef manifests have tuple keys (CSR item addressing), which JSON
    cannot carry; they ride as pickled base64 inside the JSON document,
    while everything an operator needs to *inspect* (segments, checksums,
    fingerprint, config) stays plain JSON at the top level."""
    if ref is None:
        return None
    return base64.b64encode(
        pickle.dumps((ref.kind, ref.manifest), protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode_ref(blob: Optional[str]) -> Optional[ShmRef]:
    if blob is None:
        return None
    kind, manifest = pickle.loads(base64.b64decode(blob))
    return ShmRef(kind, manifest)


@dataclass
class GenerationManifest:
    """What one daemon published, recorded for its successor.

    ``checksums`` maps every referenced segment name to the blake2b
    digest of its bytes at publish time; arenas are immutable once
    published, so any later mismatch is corruption by definition.
    ``config`` is the serving-parameter identity — a successor whose
    parameters differ must rebuild, because the summary blobs were
    prepared under the recorded ones.
    """

    generation: int
    graph_fingerprint: str
    graph_ref: Optional[ShmRef]
    blob_ref: Optional[ShmRef]
    checksums: Dict[str, str] = field(default_factory=dict)
    config: Dict[str, object] = field(default_factory=dict)
    pid: int = 0
    saved_at: float = 0.0

    @property
    def segments(self) -> List[str]:
        return sorted(self.checksums)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "version": MANIFEST_VERSION,
                "generation": self.generation,
                "graph_fingerprint": self.graph_fingerprint,
                "segments": self.segments,
                "checksums": self.checksums,
                "config": self.config,
                "pid": self.pid,
                "saved_at": self.saved_at,
                "graph_ref": _encode_ref(self.graph_ref),
                "blob_ref": _encode_ref(self.blob_ref),
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "GenerationManifest":
        payload = json.loads(text)
        if payload.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {payload.get('version')!r}"
            )
        return cls(
            generation=int(payload["generation"]),
            graph_fingerprint=payload["graph_fingerprint"],
            graph_ref=_decode_ref(payload.get("graph_ref")),
            blob_ref=_decode_ref(payload.get("blob_ref")),
            checksums=dict(payload.get("checksums", {})),
            config=dict(payload.get("config", {})),
            pid=int(payload.get("pid", 0)),
            saved_at=float(payload.get("saved_at", 0.0)),
        )

    # ------------------------------------------------------------------
    def save(self, state_dir) -> Path:
        """Atomic write (tmp + rename): a crash mid-save leaves either
        the old manifest or the new one, never a torn file."""
        path = manifest_path(state_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(self.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, state_dir) -> Optional["GenerationManifest"]:
        """The persisted manifest, or None when absent/unreadable.

        Unreadable manifests (torn writes on a dying filesystem, version
        skew) are treated exactly like absent ones: the caller cold
        boots and overwrites.
        """
        path = manifest_path(state_dir)
        try:
            return cls.from_json(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError, pickle.UnpicklingError):
            return None

    # ------------------------------------------------------------------
    def config_matches(self, config: Mapping[str, object]) -> bool:
        return dict(self.config) == dict(config)

    def verify(self) -> Dict[str, str]:
        """Per-segment integrity verdicts: ``ok`` / ``missing`` / ``corrupt``.

        ``corrupt`` means the segment exists but its bytes hash to
        something other than the recorded digest — the one verdict that
        triggers quarantine rather than plain rebuild.
        """
        verdicts: Dict[str, str] = {}
        live = set(shm_mod.list_segments())
        for name, expected in self.checksums.items():
            if name not in live:
                verdicts[name] = "missing"
                continue
            try:
                actual = shm_mod.checksum_segment(name)
            except OSError:
                verdicts[name] = "missing"
                continue
            verdicts[name] = "ok" if actual == expected else "corrupt"
        return verdicts


def discard_state(state_dir) -> List[str]:
    """Tear down a persisted generation: unlink its segments + manifest.

    The inverse of a warm handoff — used when the operator (or the
    bench/test harness) is done with the daemon lineage and wants the
    shared memory back.  Returns the unlinked segment names.
    """
    manifest = GenerationManifest.load(state_dir)
    removed: List[str] = []
    if manifest is not None:
        for name in manifest.segments:
            if name in shm_mod.list_segments():
                shm_mod.unlink_segment(name)
                removed.append(name)
    try:
        os.unlink(manifest_path(state_dir))
    except OSError:
        pass
    return removed

"""Estimation-as-a-service: the long-lived ``gcare serve`` subsystem.

Layers, bottom up:

* :mod:`repro.serve.protocol` — the JSON request/response envelope and
  the query fingerprint (cache identity), shared by every transport;
* :mod:`repro.serve.cache` — TTL + LRU result cache with generation
  fencing across graph hot-swaps;
* :mod:`repro.serve.service` — the core: a pool of persistent worker
  processes attached to shared-memory graph/summary arenas, admission
  control, the hard-kill timeout, crash respawn, hot swap, and stats;
* :mod:`repro.serve.supervisor` — the self-healing layer: per-technique
  circuit breakers, the worker watchdog's recycle policy, and the
  crash-safe warm-restart generation manifest;
* :mod:`repro.serve.daemon` — a dependency-free asyncio HTTP front-end;
* :mod:`repro.serve.loadgen` — the deterministic closed-loop load
  generator behind ``gcare load`` and the serving benchmarks;
* :mod:`repro.serve.soak` — the seeded chaos-soak harness behind
  ``gcare soak`` (hostile clients + worker kills against a live daemon,
  with bit-identical-estimate and zero-leak invariants).

The contract that makes the service trustworthy as a benchmark artifact:
an estimate served by the daemon is **bit-identical** to the same
(technique, query, run) cell of a batch ``gcare sweep`` — workers call
the very same :func:`repro.bench.runner.run_cell` under the very same
derived seed (``tests/test_serve.py`` asserts this per technique on both
kernel backends).
"""

from .cache import ResultCache
from .daemon import ServeDaemon, run_daemon
from .loadgen import (
    LoadGenerator,
    LoadRequest,
    LoadResult,
    build_schedule,
    example_workload,
    http_executor,
    load_workload,
    local_executor,
)
from .protocol import (
    ProtocolError,
    canonical_query,
    parse_request,
    query_fingerprint,
    query_from_payload,
    query_to_payload,
)
from .service import (
    AdmissionRejected,
    EstimationService,
    ServiceConfig,
    SwapInProgress,
)
from .soak import SoakConfig, SoakReport, run_soak
from .supervisor import (
    CircuitBreaker,
    GenerationManifest,
    WatchdogPolicy,
    discard_state,
    worker_rss_bytes,
)

__all__ = [
    "AdmissionRejected",
    "CircuitBreaker",
    "EstimationService",
    "GenerationManifest",
    "LoadGenerator",
    "LoadRequest",
    "LoadResult",
    "ProtocolError",
    "ResultCache",
    "ServeDaemon",
    "ServiceConfig",
    "SoakConfig",
    "SoakReport",
    "SwapInProgress",
    "WatchdogPolicy",
    "build_schedule",
    "discard_state",
    "canonical_query",
    "example_workload",
    "http_executor",
    "load_workload",
    "local_executor",
    "parse_request",
    "query_fingerprint",
    "query_from_payload",
    "query_to_payload",
    "run_daemon",
    "run_soak",
    "worker_rss_bytes",
]

"""`gcare serve`: an asyncio HTTP front-end for the estimation service.

Dependency-free by construction (the container bakes in no web
framework): a hand-rolled HTTP/1.1 server on ``asyncio.start_server``
that speaks just enough of the protocol for JSON request/response
bodies.  The daemon owns no estimation logic — every route delegates to
one :class:`~repro.serve.service.EstimationService`:

* ``POST /estimate`` — body per :func:`repro.serve.protocol.parse_request`;
  the response body is the protocol envelope, and the HTTP status code
  mirrors its ``status`` field (an optional ``deadline_ms`` propagates
  as the request's end-to-end budget);
* ``GET /stats`` — the service's observability snapshot (counters,
  latency histograms, admission state, cache stats, breaker states);
* ``GET /metrics`` — flat-text exposition of the same state
  (:meth:`EstimationService.metrics_text`, ``text/plain``);
* ``GET /healthz`` — liveness probe;
* ``POST /swap`` — ``{"graph": "<path>"}``: hot-reload the service onto
  a new data graph file without dropping the listener (a concurrent
  swap gets a 409).  Delta mode — ``{"deltas": [[op, ...], ...]}`` (the
  wire form of :func:`repro.graph.delta.deltas_to_payload`) — advances
  the served graph by a mutation journal instead: O(delta) reseal +
  incremental summary maintenance, with the result cache retargeted
  rather than cleared.  A torn journal gets a 400 and changes nothing.

Blocking service calls never run on the event loop: estimation futures
are bridged with :func:`asyncio.wrap_future` and the (slow, summary-
building) graph swap goes through ``run_in_executor``.

Robustness contract: **no input reaching the socket can produce an
unhandled exception**.  Malformed frames get a 400 with a per-field
diagnostic, oversized bodies a 413, clients that trickle bytes (slow
loris) a 408 after ``read_timeout``, and any surviving route bug a
well-formed 500 envelope rather than a dropped connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from . import protocol
from .service import EstimationService, SwapInProgress

#: request bodies past this size are rejected outright (1 MiB is orders
#: of magnitude above any realistic query payload)
MAX_BODY_BYTES = 1 << 20

#: one request (line + headers + body) must arrive within this many
#: seconds once the connection is readable — the slow-loris backstop
READ_TIMEOUT_S = 30.0

_MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


async def _read_request(reader: asyncio.StreamReader) -> Tuple[str, str, bytes]:
    """Parse one HTTP/1.1 request into (method, path, body)."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionResetError
    try:
        method, target, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _HttpError(400, "malformed request line")
    content_length = 0
    for _ in range(_MAX_HEADER_LINES):
        try:
            line = await reader.readline()
        except ValueError:
            # StreamReader's limit (64 KiB) tripped: a single header
            # line that long is an attack or a bug, never a query
            raise _HttpError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise _HttpError(400, "malformed Content-Length")
            if content_length < 0:
                raise _HttpError(400, "negative Content-Length")
    else:
        raise _HttpError(400, "too many headers")
    if content_length > MAX_BODY_BYTES:
        # drain (bounded) before answering: if we close with the body
        # still in flight, TCP resets the connection and the client gets
        # ECONNRESET instead of the 413 we carefully composed
        try:
            await reader.readexactly(min(content_length, 8 * MAX_BODY_BYTES))
        except asyncio.IncompleteReadError:
            pass
        raise _HttpError(413, "request body too large")
    body = await reader.readexactly(content_length) if content_length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, body


def _headers_from_payload(payload: dict) -> Optional[dict]:
    retry_after = payload.get("retry_after")
    if retry_after is None:
        return None
    # ceil to a whole second: Retry-After is integer-valued in HTTP, and
    # rounding *down* would invite a retry inside the cooldown window
    return {"Retry-After": str(max(1, int(-(-float(retry_after) // 1))))}


def _http_response(
    status: int,
    payload: dict,
    headers: Optional[dict] = None,
) -> bytes:
    body = json.dumps(payload).encode()
    return _http_head(status, len(body), "application/json", headers) + body


def _http_text_response(
    status: int, text: str, headers: Optional[dict] = None
) -> bytes:
    body = text.encode()
    return _http_head(status, len(body), "text/plain; version=0.0.4", headers) + body


def _http_head(
    status: int,
    content_length: int,
    content_type: str,
    headers: Optional[dict] = None,
) -> bytes:
    reason = _REASONS.get(status, "Status")
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {content_length}\r\n"
        f"{extra}"
        f"Connection: keep-alive\r\n\r\n"
    ).encode("latin-1")


class ServeDaemon:
    """The HTTP listener wrapping one :class:`EstimationService`."""

    def __init__(
        self,
        service: EstimationService,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout: float = READ_TIMEOUT_S,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self) -> "ServeDaemon":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    method, path, body = await asyncio.wait_for(
                        _read_request(reader), timeout=self.read_timeout
                    )
                except (
                    ConnectionResetError,
                    asyncio.IncompleteReadError,
                ):
                    return
                except asyncio.TimeoutError:
                    # slow loris: the request never finished arriving —
                    # answer 408 and drop the connection so the socket
                    # cannot be held open by a byte-per-minute client
                    writer.write(
                        _http_response(
                            408,
                            protocol.error_response(
                                408, "request not received in time"
                            ),
                        )
                    )
                    await writer.drain()
                    return
                except _HttpError as exc:
                    writer.write(
                        _http_response(
                            exc.status,
                            protocol.error_response(exc.status, exc.message),
                        )
                    )
                    await writer.drain()
                    return
                try:
                    status, payload = await self._route(method, path, body)
                except Exception as exc:  # noqa: BLE001 - the 500 backstop
                    status, payload = 500, protocol.error_response(
                        500, f"internal error: {type(exc).__name__}: {exc}"
                    )
                if isinstance(payload, str):
                    writer.write(_http_text_response(status, payload))
                else:
                    writer.write(
                        _http_response(
                            status, payload, _headers_from_payload(payload)
                        )
                    )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # client vanished
            return
        except asyncio.CancelledError:  # loop teardown with the line open
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict]:
        if path == "/healthz":
            if method != "GET":
                return 405, protocol.error_response(405, "GET only")
            return 200, {"status": 200, "ok": True}
        if path == "/stats":
            if method != "GET":
                return 405, protocol.error_response(405, "GET only")
            return 200, self.service.stats()
        if path == "/metrics":
            if method != "GET":
                return 405, protocol.error_response(405, "GET only")
            return 200, self.service.metrics_text()
        if path == "/estimate":
            if method != "POST":
                return 405, protocol.error_response(405, "POST only")
            return await self._estimate(body)
        if path == "/swap":
            if method != "POST":
                return 405, protocol.error_response(405, "POST only")
            return await self._swap(body)
        return 404, protocol.error_response(404, f"no route {path!r}")

    async def _estimate(self, body: bytes) -> Tuple[int, dict]:
        try:
            payload = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, protocol.error_response(
                400, f"invalid JSON: {exc}", field="body"
            )
        try:
            request = protocol.parse_request(payload)
        except protocol.ProtocolError as exc:
            return 400, protocol.error_response(
                400, str(exc), field=exc.field
            )
        deadline_ms = request.get("deadline_ms")
        future = self.service.submit(
            request["technique"],
            request["query"],
            request["run"],
            deadline_s=(
                deadline_ms / 1000.0 if deadline_ms is not None else None
            ),
        )
        response = await asyncio.wrap_future(future)
        return int(response["status"]), response

    async def _swap(self, body: bytes) -> Tuple[int, dict]:
        from ..graph.delta import DeltaError, deltas_from_payload

        try:
            payload = json.loads(body.decode() or "null")
            if not isinstance(payload, dict) or (
                isinstance(payload.get("graph"), str)
                == isinstance(payload.get("deltas"), (list, tuple))
            ):
                raise ValueError(
                    "body must be {'graph': '<path>'} or "
                    "{'deltas': [[op, ...], ...]}"
                )
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, protocol.error_response(400, f"bad swap request: {exc}")
        loop = asyncio.get_running_loop()

        if payload.get("deltas") is not None:
            try:
                deltas = deltas_from_payload(payload["deltas"])
            except DeltaError as exc:
                return 400, protocol.error_response(
                    400, f"torn journal: {exc}"
                )

            def _do_swap() -> dict:
                return self.service.swap_deltas(deltas)

        else:

            def _do_swap() -> dict:
                from ..graph.io import load_graph

                graph = load_graph(payload["graph"])
                return self.service.swap_graph(graph)

        try:
            result = await loop.run_in_executor(None, _do_swap)
        except (FileNotFoundError, DeltaError, ValueError) as exc:
            return 400, protocol.error_response(400, str(exc))
        except SwapInProgress as exc:
            return 409, protocol.error_response(409, str(exc))
        except Exception as exc:
            return 500, protocol.error_response(
                500, f"swap failed: {type(exc).__name__}: {exc}"
            )
        return 200, {"status": 200, **result}


def run_daemon(
    service: EstimationService, host: str = "127.0.0.1", port: int = 8642,
    ready_callback=None,
) -> None:
    """Blocking entry point used by ``gcare serve``.

    ``ready_callback(address)`` fires once the socket is bound — the CI
    smoke job and the tests use it to avoid sleep-and-poll startup.

    SIGTERM stops the listener and returns (instead of Python's default
    die-without-cleanup), so the caller's ``service.close()`` runs and
    the shared-memory arenas are unlinked rather than left for the next
    process's ``reap_orphans()``.
    """
    import signal

    async def _main() -> None:
        daemon = await ServeDaemon(service, host=host, port=port).start()
        if ready_callback is not None:
            ready_callback(daemon.address)
        server = asyncio.ensure_future(daemon.serve_forever())
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, server.cancel)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or platform without signal support
        try:
            await server
        except asyncio.CancelledError:  # signal exit
            pass
        finally:
            try:
                loop.remove_signal_handler(signal.SIGTERM)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
            await daemon.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - operator Ctrl-C
        pass

"""Closed-loop load generator for the estimation service.

The SLO methodology (``docs/serving.md``) needs a traffic source whose
behaviour is a pure function of its parameters, so a latency regression
can never hide behind workload noise:

* **deterministic schedule** — ``build_schedule(..., seed)`` expands one
  seeded RNG into a global request sequence and deals it round-robin
  onto clients: same (workload, techniques, request count, client count,
  seed) → the identical per-client schedules, every time, on every
  machine;
* **closed loop** — each client issues its next request only after the
  previous response lands (classic closed-loop load model), so offered
  load self-regulates to service capacity and the latency histogram is
  not polluted by coordinated-omission artifacts of an open-loop queue;
* **shard-exact accounting** — every client records into its own
  :class:`~repro.obs.histogram.LatencyHistogram` shard; the aggregate is
  the *exact* merge of the shards, and the response multiset (what
  estimate did each (technique, query, run) get?) is tracked as a
  counter so serial and concurrent executions of the same schedule can
  be compared for bit-identical results.

Transport-agnostic: :meth:`LoadGenerator.run` takes any
``execute(request) -> response-dict`` callable.  Two executors ship —
:func:`local_executor` (in-process service) and :func:`http_executor`
(urllib against a running daemon), so `gcare load` can drive either.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.request
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..graph.query import QueryGraph
from ..obs.histogram import LatencyHistogram
from . import protocol

#: (technique, query_name, run, status, estimate-repr) — the identity of
#: one response for serial-vs-concurrent comparison; ``repr`` of the
#: float keeps the comparison bit-exact
ResponseKey = Tuple[str, str, int, int, str]


@dataclass(frozen=True)
class LoadRequest:
    """One scheduled request (position in the global sequence included)."""

    index: int
    client: int
    technique: str
    query_name: str
    run: int


def build_schedule(
    techniques: Sequence[str],
    query_names: Sequence[str],
    requests: int,
    clients: int,
    seed: int = 0,
    runs: int = 1,
) -> List[List[LoadRequest]]:
    """Per-client request schedules; a pure function of the arguments.

    The global sequence is drawn first from one ``random.Random(seed)``
    and then dealt round-robin, so the *union* of all clients' requests
    is independent of the client count — the property the serial-versus-
    concurrent equivalence test leans on.
    """
    if requests < 0:
        raise ValueError("requests must be >= 0")
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if not techniques or not query_names:
        raise ValueError("need at least one technique and one query")
    rng = random.Random(seed)
    schedules: List[List[LoadRequest]] = [[] for _ in range(clients)]
    for index in range(requests):
        request = LoadRequest(
            index=index,
            client=index % clients,
            technique=rng.choice(list(techniques)),
            query_name=rng.choice(list(query_names)),
            run=rng.randrange(max(1, runs)),
        )
        schedules[request.client].append(request)
    return schedules


@dataclass
class LoadResult:
    """Everything one load run produced, shard-exact."""

    requests: int
    elapsed_s: float
    shards: List[LatencyHistogram]
    responses: "Counter[ResponseKey]" = field(default_factory=Counter)
    status_counts: Dict[int, int] = field(default_factory=dict)
    cached: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def histogram(self) -> LatencyHistogram:
        """Exact merge of the per-client shards."""
        return LatencyHistogram.merged(self.shards)

    @property
    def throughput_rps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.requests / self.elapsed_s

    def to_dict(self) -> dict:
        summary = self.histogram.summary()
        return {
            "requests": self.requests,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "latency": summary,
            "status_counts": {
                str(status): count
                for status, count in sorted(self.status_counts.items())
            },
            "cached": self.cached,
            "errors": self.errors[:10],
        }


class LoadGenerator:
    """A seeded closed-loop load run over a named-query workload."""

    def __init__(
        self,
        workload: Mapping[str, QueryGraph],
        techniques: Sequence[str],
        requests: int = 200,
        clients: int = 4,
        seed: int = 0,
        runs: int = 1,
    ) -> None:
        if not workload:
            raise ValueError("workload must contain at least one query")
        self.workload = dict(workload)
        self.techniques = list(techniques)
        self.clients = clients
        self.seed = seed
        self.schedule = build_schedule(
            self.techniques,
            sorted(self.workload),
            requests,
            clients,
            seed=seed,
            runs=runs,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        execute: Callable[[LoadRequest], dict],
        concurrent: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> LoadResult:
        """Drive the schedule; one thread per client when ``concurrent``.

        Serial mode executes the exact same global sequence in index
        order on the calling thread — same requests, same per-client
        shard attribution — so its :class:`LoadResult` is directly
        comparable to a concurrent run.
        """
        shards = [LatencyHistogram() for _ in self.schedule]
        responses: "Counter[ResponseKey]" = Counter()
        status_counts: "Counter[int]" = Counter()
        errors: List[str] = []
        cached = [0]
        lock = threading.Lock()

        def _issue(request: LoadRequest) -> None:
            started = clock()
            try:
                response = execute(request)
            except Exception as exc:  # transport failure, not a payload
                response = protocol.error_response(
                    protocol.STATUS_WORKER_CRASHED,
                    f"transport: {type(exc).__name__}: {exc}",
                    technique=request.technique,
                    run=request.run,
                )
            latency = clock() - started
            shards[request.client].record(latency)
            status = int(response.get("status", 0))
            key: ResponseKey = (
                request.technique,
                request.query_name,
                request.run,
                status,
                repr(response.get("estimate")),
            )
            with lock:
                responses[key] += 1
                status_counts[status] += 1
                if response.get("cached"):
                    cached[0] += 1
                if response.get("error") and len(errors) < 100:
                    errors.append(str(response["error"]))

        started = clock()
        if concurrent:
            threads = [
                threading.Thread(
                    target=lambda reqs=client_schedule: [
                        _issue(request) for request in reqs
                    ],
                    name=f"gcare-load-client-{client}",
                )
                for client, client_schedule in enumerate(self.schedule)
                if client_schedule
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            flat = sorted(
                (request for client in self.schedule for request in client),
                key=lambda request: request.index,
            )
            for request in flat:
                _issue(request)
        elapsed = clock() - started
        total = sum(len(client) for client in self.schedule)
        return LoadResult(
            requests=total,
            elapsed_s=elapsed,
            shards=shards,
            responses=responses,
            status_counts=dict(status_counts),
            cached=cached[0],
            errors=errors,
        )


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------
def local_executor(
    service, workload: Mapping[str, QueryGraph]
) -> Callable[[LoadRequest], dict]:
    """Drive an in-process :class:`EstimationService` directly."""

    def _execute(request: LoadRequest) -> dict:
        return service.estimate(
            request.technique,
            workload[request.query_name],
            run=request.run,
            name=request.query_name,
        )

    return _execute


def http_executor(
    base_url: str,
    workload: Mapping[str, QueryGraph],
    timeout: float = 60.0,
) -> Callable[[LoadRequest], dict]:
    """Drive a running daemon over HTTP (urllib; one POST per request)."""
    url = base_url.rstrip("/") + "/estimate"
    payloads = {
        name: protocol.query_to_payload(query)
        for name, query in workload.items()
    }

    def _execute(request: LoadRequest) -> dict:
        body = json.dumps(
            {
                "technique": request.technique,
                "query": payloads[request.query_name],
                "run": request.run,
            }
        ).encode()
        http_request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(http_request, timeout=timeout) as reply:
                return json.loads(reply.read().decode())
        except urllib.error.HTTPError as exc:
            # non-2xx still carries the protocol envelope as its body
            try:
                return json.loads(exc.read().decode())
            except Exception:
                return protocol.error_response(
                    exc.code, f"http error {exc.code}",
                    technique=request.technique, run=request.run,
                )

    return _execute


def fetch_metrics(base_url: str, timeout: float = 10.0) -> Dict[str, float]:
    """Scrape a running daemon's ``/metrics`` into a flat dict.

    ``gcare load --url`` calls this at the end of a run so the report can
    pair the client-side latency histogram with the server's own view
    (cache hit rate, breaker state, watchdog recycles).  Returns an empty
    dict when the endpoint is unreachable — scraping is additive, never a
    reason to fail a load run.
    """
    from ..obs.metrics import parse_metrics

    try:
        with urllib.request.urlopen(
            base_url.rstrip("/") + "/metrics", timeout=timeout
        ) as reply:
            return parse_metrics(reply.read().decode())
    except (OSError, ValueError):
        return {}


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------
def example_workload() -> Dict[str, QueryGraph]:
    """The Figure 1 bench workload: the triangle plus its edge/path cuts.

    Small by design — the example graph answers in microseconds, so load
    runs exercise the serving machinery (queueing, cache, admission)
    rather than estimator cost.
    """
    from ..datasets.example import figure1_query

    triangle = figure1_query()
    workload: Dict[str, QueryGraph] = {"triangle": triangle}
    # the three single-edge cuts of the triangle
    for position, (u, v, label) in enumerate(triangle.edges):
        workload[f"edge{position}"] = QueryGraph(
            vertex_labels=[triangle.vertex_labels[u], triangle.vertex_labels[v]],
            edges=[(0, 1, label)],
        )
    # the two-edge path u0 -a-> u1 -b-> u2
    workload["path"] = QueryGraph(
        vertex_labels=list(triangle.vertex_labels),
        edges=[triangle.edges[0], triangle.edges[1]],
    )
    return workload


def load_workload(path: str) -> Dict[str, QueryGraph]:
    """Named queries from a query file or a directory of query files."""
    import os

    from ..graph.io import load_query

    if os.path.isdir(path):
        workload: Dict[str, QueryGraph] = {}
        for entry in sorted(os.listdir(path)):
            full = os.path.join(path, entry)
            if os.path.isfile(full):
                name = os.path.splitext(entry)[0]
                workload[name] = load_query(full)
        if not workload:
            raise ValueError(f"no query files under {path!r}")
        return workload
    return {os.path.splitext(os.path.basename(path))[0]: load_query(path)}

"""Graph substrate: data graphs, query graphs, I/O, topologies."""

from .compact import CompactGraph, SealedGraphError
from .digraph import Graph, GraphStats, UNLABELED
from .io import dump_graph, dump_query, load_graph, load_query, load_triples
from .query import QueryGraph
from .schema import SchemaGraph, extract_schema
from .topology import ACYCLIC_TOPOLOGIES, CYCLIC_TOPOLOGIES, Topology, classify

__all__ = [
    "ACYCLIC_TOPOLOGIES",
    "CYCLIC_TOPOLOGIES",
    "CompactGraph",
    "Graph",
    "SealedGraphError",
    "GraphStats",
    "QueryGraph",
    "SchemaGraph",
    "Topology",
    "UNLABELED",
    "classify",
    "dump_graph",
    "extract_schema",
    "dump_query",
    "load_graph",
    "load_query",
    "load_triples",
]

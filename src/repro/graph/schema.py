"""Schema graph extraction.

The paper's query generator "traverses the schema graph" (Section 5.3).
A schema graph is the label-level quotient of the data graph: one node
per vertex label (plus one for unlabeled vertices) and one edge per
observed (source label, edge label, destination label) combination, with
occurrence counts.  It answers questions like "which edge labels connect
Professors to Courses?" without touching instances, and is useful both
for query authoring and as a compact dataset fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .digraph import Graph

#: schema node used for vertices without any label
UNLABELED_NODE = -1

SchemaEdge = Tuple[int, int, int]  # (src label, dst label, edge label)


@dataclass
class SchemaGraph:
    """Label-level quotient of a data graph with occurrence counts."""

    #: vertex label -> number of data vertices carrying it
    label_counts: Dict[int, int] = field(default_factory=dict)
    #: (src label, dst label, edge label) -> number of data edges
    edge_counts: Dict[SchemaEdge, int] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.label_counts)

    @property
    def num_edges(self) -> int:
        return len(self.edge_counts)

    def edges(self) -> Iterator[SchemaEdge]:
        return iter(self.edge_counts)

    def out_labels(self, vertex_label: int) -> Set[int]:
        """Edge labels observed leaving vertices with ``vertex_label``."""
        return {
            el for (sl, _, el) in self.edge_counts if sl == vertex_label
        }

    def in_labels(self, vertex_label: int) -> Set[int]:
        """Edge labels observed entering vertices with ``vertex_label``."""
        return {
            el for (_, dl, el) in self.edge_counts if dl == vertex_label
        }

    def targets(self, vertex_label: int, edge_label: int) -> Set[int]:
        """Destination vertex labels of ``edge_label`` edges from a label."""
        return {
            dl
            for (sl, dl, el) in self.edge_counts
            if sl == vertex_label and el == edge_label
        }

    def connects(
        self, src_label: int, dst_label: int, edge_label: int
    ) -> bool:
        return (src_label, dst_label, edge_label) in self.edge_counts

    def count(self, src_label: int, dst_label: int, edge_label: int) -> int:
        return self.edge_counts.get((src_label, dst_label, edge_label), 0)


def extract_schema(graph: Graph) -> SchemaGraph:
    """Build the schema graph of a data graph in one pass over its edges.

    Multi-labeled vertices contribute one schema node per label; an
    unlabeled vertex contributes the :data:`UNLABELED_NODE` node.
    """
    schema = SchemaGraph()
    for v in graph.vertices():
        labels = graph.vertex_labels(v) or frozenset({UNLABELED_NODE})
        for label in labels:
            schema.label_counts[label] = schema.label_counts.get(label, 0) + 1
    for src, dst, edge_label in graph.edges():
        src_labels = graph.vertex_labels(src) or frozenset({UNLABELED_NODE})
        dst_labels = graph.vertex_labels(dst) or frozenset({UNLABELED_NODE})
        for sl in src_labels:
            for dl in dst_labels:
                key = (sl, dl, edge_label)
                schema.edge_counts[key] = schema.edge_counts.get(key, 0) + 1
    return schema

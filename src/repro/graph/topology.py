"""Query topology classification.

The paper generates eight classes of test queries (Table 1): chain, star,
tree, cycle, clique, petal, flower and graph.  Definitions (Section 5.3):

* **chain** — a path ``u0 - u1 - ... - un``.
* **star** — ``u1..un`` all connected to a center ``u0``.
* **tree** — any acyclic query that is neither chain nor star.
* **cycle** — a single simple cycle.
* **clique** — complete graph.
* **petal** — a source, a destination, and >= 2 vertex-disjoint paths
  between them (a cycle is the 2-path special case and is classified first).
* **flower** — a source vertex with chain / tree / petal attachments,
  at least one of them a petal (otherwise the query would be a tree).
* **graph** — any other (cyclic) query.

Classification ignores edge directions and labels: it is a property of the
undirected simple skeleton.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set, Tuple

from .query import QueryGraph


class Topology(enum.Enum):
    CHAIN = "chain"
    STAR = "star"
    TREE = "tree"
    CYCLE = "cycle"
    CLIQUE = "clique"
    PETAL = "petal"
    FLOWER = "flower"
    GRAPH = "graph"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Topologies whose skeleton is acyclic.
ACYCLIC_TOPOLOGIES = (Topology.CHAIN, Topology.STAR, Topology.TREE)
#: Topologies whose skeleton contains a cycle.
CYCLIC_TOPOLOGIES = (
    Topology.CYCLE,
    Topology.CLIQUE,
    Topology.PETAL,
    Topology.FLOWER,
    Topology.GRAPH,
)


def _skeleton(query: QueryGraph) -> Dict[int, Set[int]]:
    """Undirected simple adjacency over non-isolated vertices."""
    adj: Dict[int, Set[int]] = {}
    for u, v, _ in query.edges:
        if u == v:
            continue
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    return adj


def _is_connected(adj: Dict[int, Set[int]]) -> bool:
    if not adj:
        return False
    start = next(iter(adj))
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == len(adj)


def _num_skeleton_edges(adj: Dict[int, Set[int]]) -> int:
    return sum(len(nbrs) for nbrs in adj.values()) // 2


def _is_petal(adj: Dict[int, Set[int]]) -> bool:
    """True iff the skeleton is >= 2 internally vertex-disjoint s-t paths."""
    return _petal_endpoints(adj) is not None


def _petal_endpoints(adj: Dict[int, Set[int]]):
    """The (source, destination) pair of a petal skeleton, or None."""
    high = [v for v, nbrs in adj.items() if len(nbrs) != 2]
    if len(high) != 2:
        return None
    s, t = high
    if len(adj[s]) != len(adj[t]) or len(adj[s]) < 2:
        return None
    # Walk from s along each neighbor; every walk must reach t through
    # degree-2 internal vertices without revisiting anything.
    visited_internal: Set[int] = set()
    for first in adj[s]:
        prev, cur = s, first
        while cur != t:
            if cur in visited_internal or len(adj[cur]) != 2:
                return None
            visited_internal.add(cur)
            nxt = next(v for v in adj[cur] if v != prev)
            prev, cur = cur, nxt
    # all internal vertices accounted for
    if len(visited_internal) != len(adj) - 2:
        return None
    return (s, t)


def _is_flower(adj: Dict[int, Set[int]]) -> bool:
    """True iff some vertex's removal leaves chain/tree/petal attachments.

    Each attachment, with the source vertex added back, must be acyclic or a
    petal; at least one petal is required (else the whole query is a tree).
    """
    for c in adj:
        components = _components_without(adj, c)
        if len(components) < 2:
            continue
        saw_petal = False
        ok = True
        for comp in components:
            sub = {
                v: (adj[v] & (comp | {c}))
                for v in comp
            }
            sub[c] = adj[c] & comp
            edges = _num_skeleton_edges(sub)
            if edges == len(sub) - 1:
                continue  # acyclic attachment: chain or tree
            endpoints = _petal_endpoints(sub)
            if endpoints is not None and c in endpoints:
                # a petal attachment must have the flower's source vertex
                # as its own source
                saw_petal = True
                continue
            ok = False
            break
        if ok and saw_petal:
            return True
    return False


def _components_without(
    adj: Dict[int, Set[int]], removed: int
) -> List[Set[int]]:
    remaining = set(adj) - {removed}
    components: List[Set[int]] = []
    while remaining:
        start = next(iter(remaining))
        comp = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if v != removed and v not in comp:
                    comp.add(v)
                    stack.append(v)
        components.append(comp)
        remaining -= comp
    return components


def classify(query: QueryGraph) -> Topology:
    """Classify a connected query into one of the paper's eight topologies."""
    adj = _skeleton(query)
    if not adj:
        raise ValueError("cannot classify an empty query")
    if not _is_connected(adj):
        raise ValueError("cannot classify a disconnected query")
    n = len(adj)
    m = _num_skeleton_edges(adj)
    degrees = sorted(len(nbrs) for nbrs in adj.values())
    if m == n - 1:  # acyclic
        if degrees[-1] <= 2:
            return Topology.CHAIN
        if n >= 3 and degrees[-1] == n - 1 and degrees[-2] == 1:
            return Topology.STAR
        return Topology.TREE
    # cyclic
    if degrees[0] == 2 and degrees[-1] == 2:
        return Topology.CYCLE
    if n >= 3 and m == n * (n - 1) // 2:
        return Topology.CLIQUE
    if _is_petal(adj):
        return Topology.PETAL
    if _is_flower(adj):
        return Topology.FLOWER
    return Topology.GRAPH

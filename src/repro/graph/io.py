"""Text serialization for data and query graphs.

We support the formats used by the original G-CARE release:

**Data / query graph format** (one graph per file)::

    t # 0
    v <id> <label> [<label> ...]
    e <src> <dst> <label>

A vertex label of ``-1`` means *unlabeled* (wildcard for queries, no label
for data vertices).  Collections (the AIDS dataset) concatenate multiple
``t # i`` sections; we load those as a disjoint union with
``Graph.num_graphs`` recording the member count.

**RDF triple format**: whitespace-separated ``<subject> <predicate>
<object>`` lines with arbitrary string tokens; strings are dictionary-encoded
to dense integer ids.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from .digraph import Graph
from .query import QueryGraph

PathLike = Union[str, Path]

#: Sentinel label meaning "no label" in the text format.
NO_LABEL = -1


def load_graph(path: PathLike) -> Graph:
    """Load a data graph (or collection) from the G-CARE text format."""
    graph = Graph()
    num_graphs = 0
    offset = 0
    local_count = 0
    with open(path) as handle:
        for line in handle:
            parts = line.split()
            if not parts or parts[0].startswith("#"):
                continue
            kind = parts[0]
            if kind == "t":
                num_graphs += 1
                offset += local_count
                local_count = 0
            elif kind == "v":
                labels = [int(x) for x in parts[2:] if int(x) != NO_LABEL]
                graph.add_vertex(labels)
                local_count += 1
            elif kind == "e":
                src, dst, label = int(parts[1]), int(parts[2]), int(parts[3])
                graph.add_edge(offset + src, offset + dst, label)
            else:
                raise ValueError(f"unrecognized line kind {kind!r} in {path}")
    graph.num_graphs = max(num_graphs, 1)
    return graph


def dump_graph(graph: Graph, path: PathLike) -> None:
    """Write a data graph in the G-CARE text format (single ``t`` section)."""
    with open(path, "w") as handle:
        handle.write("t # 0\n")
        for v in graph.vertices():
            labels = sorted(graph.vertex_labels(v)) or [NO_LABEL]
            handle.write("v %d %s\n" % (v, " ".join(map(str, labels))))
        for src, dst, label in sorted(graph.edges()):
            handle.write(f"e {src} {dst} {label}\n")


def load_query(path: PathLike) -> QueryGraph:
    """Load a query graph from the G-CARE text format."""
    vertex_labels: List[List[int]] = []
    edges: List[Tuple[int, int, int]] = []
    with open(path) as handle:
        for line in handle:
            parts = line.split()
            if not parts or parts[0] in ("t", "#") or parts[0].startswith("#"):
                continue
            kind = parts[0]
            if kind == "v":
                vertex_labels.append(
                    [int(x) for x in parts[2:] if int(x) != NO_LABEL]
                )
            elif kind == "e":
                edges.append((int(parts[1]), int(parts[2]), int(parts[3])))
            else:
                raise ValueError(f"unrecognized line kind {kind!r} in {path}")
    return QueryGraph(vertex_labels, edges)


def dump_query(query: QueryGraph, path: PathLike) -> None:
    """Write a query graph in the G-CARE text format."""
    with open(path, "w") as handle:
        handle.write("t # 0\n")
        for v in range(query.num_vertices):
            labels = sorted(query.vertex_labels[v]) or [NO_LABEL]
            handle.write("v %d %s\n" % (v, " ".join(map(str, labels))))
        for src, dst, label in query.edges:
            handle.write(f"e {src} {dst} {label}\n")


def load_triples(path: PathLike) -> Tuple[Graph, Dict[str, int], Dict[str, int]]:
    """Load RDF-style triples, dictionary-encoding strings to dense ids.

    Returns ``(graph, vertex_dict, predicate_dict)`` mapping the original
    string tokens to the integer ids used in the graph.
    """
    vertex_ids: Dict[str, int] = {}
    predicate_ids: Dict[str, int] = {}
    graph = Graph()

    def vertex(token: str) -> int:
        vid = vertex_ids.get(token)
        if vid is None:
            vid = graph.add_vertex()
            vertex_ids[token] = vid
        return vid

    with open(path) as handle:
        for line in handle:
            parts = line.split()
            if len(parts) < 3 or parts[0].startswith("#"):
                continue
            subj, pred, obj = parts[0], parts[1], parts[2]
            pid = predicate_ids.setdefault(pred, len(predicate_ids))
            graph.add_edge(vertex(subj), vertex(obj), pid)
    return graph, vertex_ids, predicate_ids


def graph_from_triples(
    triples: Iterable[Tuple[str, str, str]],
) -> Tuple[Graph, Dict[str, int], Dict[str, int]]:
    """Dictionary-encode an in-memory triple iterable into a Graph."""
    vertex_ids: Dict[str, int] = {}
    predicate_ids: Dict[str, int] = {}
    graph = Graph()
    for subj, pred, obj in triples:
        for token in (subj, obj):
            if token not in vertex_ids:
                vertex_ids[token] = graph.add_vertex()
        pid = predicate_ids.setdefault(pred, len(predicate_ids))
        graph.add_edge(vertex_ids[subj], vertex_ids[obj], pid)
    return graph, vertex_ids, predicate_ids

"""Text serialization for data and query graphs.

We support the formats used by the original G-CARE release:

**Data / query graph format** (one graph per file)::

    t # 0
    v <id> <label> [<label> ...]
    e <src> <dst> <label>

A vertex label of ``-1`` means *unlabeled* (wildcard for queries, no label
for data vertices).  Collections (the AIDS dataset) concatenate multiple
``t # i`` sections; we load those as a disjoint union with
``Graph.num_graphs`` recording the member count.

**RDF triple format**: whitespace-separated ``<subject> <predicate>
<object>`` lines with arbitrary string tokens; strings are dictionary-encoded
to dense integer ids.

**Strict vs. lenient loading.**  Real-world snapshot files arrive
truncated, hand-edited, or concatenated badly; a loader that either
crashes with a context-free ``ValueError`` deep in ``int()`` or silently
mis-parses is the worst of both worlds.  Every loader here therefore has
two modes:

* ``strict`` (the default for graph/query files) raises
  :class:`~repro.core.errors.GraphFormatError` — which carries the file,
  the 1-based line number, the offending line and a reason — at the
  *first* malformed line;
* lenient skips malformed lines and records each one as a
  :class:`LineDiagnostic` in a :class:`LoadReport` (via the
  ``*_checked`` variants), which is what ``gcare validate`` uses to show
  every problem in one pass.

``load_triples`` defaults to *lenient* (quietly skipping short lines is
the historical behavior real RDF dumps rely on) but now counts what it
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from sys import intern
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.errors import GraphFormatError
from .digraph import Graph
from .query import QueryGraph

PathLike = Union[str, Path]

#: Sentinel label meaning "no label" in the text format.
NO_LABEL = -1


# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------
@dataclass
class LineDiagnostic:
    """One malformed line found by a lenient load."""

    line_no: int  # 1-based
    line: str
    reason: str

    def __str__(self) -> str:
        return f"line {self.line_no}: {self.reason}: {self.line.strip()!r}"


@dataclass
class LoadReport:
    """Outcome of a checked load: what was kept, what was skipped."""

    path: str
    kind: str  # "graph" | "query" | "triples"
    #: records (vertices+edges / triples) actually loaded
    loaded: int = 0
    diagnostics: List[LineDiagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def skipped(self) -> int:
        return len(self.diagnostics)


class _Lines:
    """Shared per-line bookkeeping for strict/lenient parsing."""

    def __init__(self, path: PathLike, kind: str, strict: bool) -> None:
        self.path = path
        self.strict = strict
        self.report = LoadReport(str(path), kind)
        self.line_no = 0
        self.line = ""

    def bad(self, reason: str) -> bool:
        """Flag the current line as malformed.

        Raises in strict mode; in lenient mode records a diagnostic and
        returns True so the caller can ``continue`` past the line.
        """
        if self.strict:
            raise GraphFormatError(self.path, self.line_no, self.line, reason)
        self.report.diagnostics.append(
            LineDiagnostic(self.line_no, self.line, reason)
        )
        return True

    def ints(self, tokens) -> Optional[List[int]]:
        """Parse tokens as integers, or flag the line and return None."""
        try:
            return [int(token) for token in tokens]
        except ValueError:
            self.bad(f"non-integer token in {self.line.split()!r}")
            return None


# ---------------------------------------------------------------------------
# graph files
# ---------------------------------------------------------------------------
def _load_graph_impl(path: PathLike, strict: bool) -> Tuple[Graph, LoadReport]:
    state = _Lines(path, "graph", strict)
    graph = Graph()
    num_graphs = 0
    offset = 0
    local_count = 0
    with open(path) as handle:
        for state.line_no, state.line in enumerate(handle, 1):
            parts = state.line.split()
            if not parts or parts[0].startswith("#"):
                continue
            kind = parts[0]
            if kind == "t":
                num_graphs += 1
                offset += local_count
                local_count = 0
            elif kind == "v":
                if len(parts) < 2:
                    state.bad("vertex line needs at least an id")
                    continue
                values = state.ints(parts[1:])
                if values is None:
                    continue
                vid, labels = values[0], values[1:]
                if vid != local_count:
                    # catches duplicates, gaps and out-of-order ids alike:
                    # the format requires sequential ids within a section
                    state.bad(
                        f"vertex id {vid} out of sequence "
                        f"(expected {local_count})"
                    )
                    continue
                graph.add_vertex([x for x in labels if x != NO_LABEL])
                local_count += 1
                state.report.loaded += 1
            elif kind == "e":
                if len(parts) != 4:
                    state.bad("edge line needs exactly <src> <dst> <label>")
                    continue
                values = state.ints(parts[1:])
                if values is None:
                    continue
                src, dst, label = values
                if not (0 <= src < local_count and 0 <= dst < local_count):
                    state.bad(
                        f"edge endpoint out of range "
                        f"(section has {local_count} vertices)"
                    )
                    continue
                graph.add_edge(offset + src, offset + dst, label)
                state.report.loaded += 1
            else:
                state.bad(f"unrecognized line kind {kind!r}")
    graph.num_graphs = max(num_graphs, 1)
    return graph, state.report


def load_graph(path: PathLike, strict: bool = True, seal: bool = True) -> Graph:
    """Load a data graph (or collection) from the G-CARE text format.

    ``strict`` (default) raises :class:`GraphFormatError` on the first
    malformed line; ``strict=False`` skips malformed lines (use
    :func:`load_graph_checked` to also see what was skipped).

    ``seal`` (default) returns the compact sealed form the evaluation
    pipeline runs on (see :meth:`Graph.seal`); pass ``seal=False`` to get
    the mutable dict-backed graph instead.
    """
    graph, _ = _load_graph_impl(path, strict)
    return graph.seal() if seal else graph


def load_graph_checked(
    path: PathLike, strict: bool = False, seal: bool = False
) -> Tuple[Graph, LoadReport]:
    """Load a data graph and report every malformed line (lenient default).

    Unsealed by default: this is the diagnostics path (``gcare validate``)
    and usually discards the graph.
    """
    graph, report = _load_graph_impl(path, strict)
    return (graph.seal() if seal else graph), report


def dump_graph(graph: Graph, path: PathLike) -> None:
    """Write a data graph in the G-CARE text format (single ``t`` section)."""
    with open(path, "w") as handle:
        handle.write("t # 0\n")
        for v in graph.vertices():
            labels = sorted(graph.vertex_labels(v)) or [NO_LABEL]
            handle.write("v %d %s\n" % (v, " ".join(map(str, labels))))
        for src, dst, label in sorted(graph.edges()):
            handle.write(f"e {src} {dst} {label}\n")


# ---------------------------------------------------------------------------
# query files
# ---------------------------------------------------------------------------
def _load_query_impl(
    path: PathLike, strict: bool
) -> Tuple[QueryGraph, LoadReport]:
    state = _Lines(path, "query", strict)
    vertex_labels: List[List[int]] = []
    edges: List[Tuple[int, int, int]] = []
    with open(path) as handle:
        for state.line_no, state.line in enumerate(handle, 1):
            parts = state.line.split()
            if not parts or parts[0] in ("t", "#") or parts[0].startswith("#"):
                continue
            kind = parts[0]
            if kind == "v":
                if len(parts) < 2:
                    state.bad("vertex line needs at least an id")
                    continue
                values = state.ints(parts[1:])
                if values is None:
                    continue
                vid, labels = values[0], values[1:]
                if vid != len(vertex_labels):
                    state.bad(
                        f"vertex id {vid} out of sequence "
                        f"(expected {len(vertex_labels)})"
                    )
                    continue
                vertex_labels.append([x for x in labels if x != NO_LABEL])
                state.report.loaded += 1
            elif kind == "e":
                if len(parts) != 4:
                    state.bad("edge line needs exactly <src> <dst> <label>")
                    continue
                values = state.ints(parts[1:])
                if values is None:
                    continue
                src, dst, label = values
                bound = len(vertex_labels)
                if not (0 <= src < bound and 0 <= dst < bound):
                    state.bad(
                        f"edge endpoint out of range "
                        f"(query has {bound} vertices)"
                    )
                    continue
                edges.append((src, dst, label))
                state.report.loaded += 1
            else:
                state.bad(f"unrecognized line kind {kind!r}")
    return QueryGraph(vertex_labels, edges), state.report


def load_query(path: PathLike, strict: bool = True) -> QueryGraph:
    """Load a query graph from the G-CARE text format (strict by default)."""
    query, _ = _load_query_impl(path, strict)
    return query


def load_query_checked(
    path: PathLike, strict: bool = False
) -> Tuple[QueryGraph, LoadReport]:
    """Load a query graph and report every malformed line (lenient default)."""
    return _load_query_impl(path, strict)


def dump_query(query: QueryGraph, path: PathLike) -> None:
    """Write a query graph in the G-CARE text format."""
    with open(path, "w") as handle:
        handle.write("t # 0\n")
        for v in range(query.num_vertices):
            labels = sorted(query.vertex_labels[v]) or [NO_LABEL]
            handle.write("v %d %s\n" % (v, " ".join(map(str, labels))))
        for src, dst, label in query.edges:
            handle.write(f"e {src} {dst} {label}\n")


# ---------------------------------------------------------------------------
# RDF triples
# ---------------------------------------------------------------------------
def load_triples(
    path: PathLike, strict: bool = False, seal: bool = True
) -> Tuple[Graph, Dict[str, int], Dict[str, int]]:
    """Load RDF-style triples, dictionary-encoding strings to dense ids.

    Returns ``(graph, vertex_dict, predicate_dict)`` mapping the original
    string tokens to the integer ids used in the graph.  Lenient by
    default (short lines are skipped, matching historical behavior);
    ``strict=True`` raises :class:`GraphFormatError` instead.  ``seal``
    (default) returns the compact sealed graph; ``seal=False`` keeps it
    mutable.
    """
    graph, vertex_ids, predicate_ids, _ = _load_triples_impl(path, strict)
    return (graph.seal() if seal else graph), vertex_ids, predicate_ids


def load_triples_checked(
    path: PathLike, strict: bool = False
) -> Tuple[Graph, Dict[str, int], Dict[str, int], LoadReport]:
    """Like :func:`load_triples`, plus the :class:`LoadReport`."""
    return _load_triples_impl(path, strict)


def _load_triples_impl(
    path: PathLike, strict: bool
) -> Tuple[Graph, Dict[str, int], Dict[str, int], LoadReport]:
    state = _Lines(path, "triples", strict)
    vertex_ids: Dict[str, int] = {}
    predicate_ids: Dict[str, int] = {}
    graph = Graph()

    def vertex(token: str) -> int:
        vid = vertex_ids.get(token)
        if vid is None:
            vid = graph.add_vertex()
            vertex_ids[token] = vid
        return vid

    with open(path) as handle:
        for state.line_no, state.line in enumerate(handle, 1):
            parts = state.line.split()
            if not parts or parts[0].startswith("#"):
                continue
            if len(parts) < 3:
                state.bad("triple line needs <subject> <predicate> <object>")
                continue
            # intern the tokens: the same subject/predicate string recurs
            # on thousands of lines, and interning both collapses the
            # duplicates to one object and turns the dictionary-encoding
            # lookups (and any later equality checks on the returned
            # dicts) into pointer comparisons
            subj = intern(parts[0])
            pred = intern(parts[1])
            obj = intern(parts[2])
            pid = predicate_ids.setdefault(pred, len(predicate_ids))
            graph.add_edge(vertex(subj), vertex(obj), pid)
            state.report.loaded += 1
    return graph, vertex_ids, predicate_ids, state.report


def graph_from_triples(
    triples: Iterable[Tuple[str, str, str]],
    seal: bool = True,
) -> Tuple[Graph, Dict[str, int], Dict[str, int]]:
    """Dictionary-encode an in-memory triple iterable into a Graph."""
    vertex_ids: Dict[str, int] = {}
    predicate_ids: Dict[str, int] = {}
    graph = Graph()
    for subj, pred, obj in triples:
        subj, pred, obj = intern(subj), intern(pred), intern(obj)
        for token in (subj, obj):
            if token not in vertex_ids:
                vertex_ids[token] = graph.add_vertex()
        pid = predicate_ids.setdefault(pred, len(predicate_ids))
        graph.add_edge(vertex_ids[subj], vertex_ids[obj], pid)
    return (graph.seal() if seal else graph), vertex_ids, predicate_ids

"""Compact sealed graph: CSR adjacency over ``array('q')`` buffers.

The dict-of-lists :class:`~repro.graph.digraph.Graph` is the right shape
for *building* a graph — loaders and generators append freely — but it is
a poor shape for *running* estimators over one: every adjacency list is a
Python list of boxed ints inside a per-vertex dict, every ``has_edge``
probe allocates a tuple to hash into a set of tuples, and nothing can be
memoized because the graph may grow under the caller's feet.

:class:`CompactGraph` is the sealed (immutable) form the evaluation
pipeline actually runs on.  ``Graph.seal()`` produces one; loaders and
dataset generators seal by default.  Layout, per direction (out/in):

* ``lab_off`` / ``lab`` — per-vertex label lists (two-level CSR): vertex
  ``v``'s adjacency is grouped by edge label, labels listed in the same
  order the dict-backed graph held them;
* ``seg_off`` / ``targets`` — one contiguous neighbor segment per
  ``(vertex, label)`` pair, neighbors in original insertion order;
* ``sorted_targets`` — the same segments with neighbors sorted, giving
  ``has_edge`` an O(log d) bisect with no tuple allocation.

**Order preservation is a feature, not an accident.**  Sampling-based
estimators index into adjacency lists and relation scans with their RNG,
so iteration order is part of the determinism contract: every accessor
of the sealed graph returns elements in exactly the order the dict-backed
graph would, which is what makes estimates bit-identical across the two
substrates (see ``tests/test_compact_graph.py``).

**Sealing unlocks memoization.**  Because a sealed graph can never
change, it safely caches derived structures on first use: per-``(vertex,
label)`` neighbor frozensets (the exact-matcher's constraint filters),
per-label vertex membership sets, and label-set member lists.  The
mutable graph cannot offer these without invalidation hazards — which is
precisely why the fast paths downstream key on ``graph.sealed``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .. import kernels as _kernels
from ..kernels import ops as _kops
from ..kernels import views as _kviews
from .digraph import Edge, Graph, GraphStats, UNLABELED


class SealedGraphError(TypeError):
    """Raised when a mutation is attempted on a sealed graph."""


class IntArrayView(Sequence):
    """Immutable view over a slice of an ``array('q')`` buffer.

    Behaves like a read-only list of ints: ``len``, indexing, iteration,
    containment and equality against any sequence all work; mutation does
    not exist.  Views are cheap (three words) and never copy the buffer.
    """

    __slots__ = ("_data", "_start", "_stop")

    def __init__(self, data: array, start: int = 0, stop: Optional[int] = None):
        self._data = data
        self._start = start
        self._stop = len(data) if stop is None else stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        n = self._stop - self._start
        if isinstance(index, slice):
            start, stop, step = index.indices(n)
            if step != 1:
                return tuple(
                    self._data[self._start + i] for i in range(start, stop, step)
                )
            return IntArrayView(self._data, self._start + start, self._start + stop)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("view index out of range")
        return self._data[self._start + index]

    def __iter__(self):
        data = self._data
        for i in range(self._start, self._stop):
            yield data[i]

    def __contains__(self, value) -> bool:
        data = self._data
        for i in range(self._start, self._stop):
            if data[i] == value:
                return True
        return False

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, IntArrayView)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self):  # pragma: no cover - views are not hashable
        raise TypeError("IntArrayView is unhashable; convert to tuple")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"IntArrayView({list(self)!r})"


class PairArrayView(Sequence):
    """Immutable view over parallel src/dst arrays: a list of pairs.

    The sealed counterpart of ``Graph.edges_with_label``'s pair list —
    same length, same order, same ``(src, dst)`` tuples, no mutation.
    """

    __slots__ = ("_src", "_dst")

    def __init__(self, src: array, dst: array) -> None:
        self._src = src
        self._dst = dst

    def __len__(self) -> int:
        return len(self._src)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                (self._src[i], self._dst[i])
                for i in range(*index.indices(len(self._src)))
            ]
        return (self._src[index], self._dst[index])

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return zip(self._src, self._dst)

    def __contains__(self, pair) -> bool:
        try:
            s, d = pair
        except (TypeError, ValueError):
            return False
        return any(
            self._src[i] == s and self._dst[i] == d
            for i in range(len(self._src))
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, PairArrayView)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self):  # pragma: no cover - views are not hashable
        raise TypeError("PairArrayView is unhashable; convert to list")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PairArrayView({list(self)!r})"


_EMPTY = array("q")
_EMPTY_VIEW = IntArrayView(_EMPTY)
_EMPTY_PAIRS = PairArrayView(_EMPTY, _EMPTY)


class _Direction:
    """One direction (out or in) of the two-level CSR adjacency."""

    __slots__ = ("lab_off", "lab", "seg_off", "targets", "sorted_targets",
                 "seg_cache")

    def __init__(self, adjacency: List[Dict[int, List[int]]]) -> None:
        self.lab_off = array("q", [0])
        self.lab = array("q")
        self.seg_off = array("q", [0])
        self.targets = array("q")
        self.sorted_targets = array("q")
        #: lazy (v, label) -> materialized neighbor tuple; hot loops probe
        #: the same segments constantly, and a cached tuple beats a fresh
        #: view object (C-speed len/index/iteration, no allocation)
        self.seg_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        for label_map in adjacency:
            for label, neighbors in label_map.items():
                self.lab.append(label)
                self.targets.extend(neighbors)
                self.sorted_targets.extend(sorted(neighbors))
                self.seg_off.append(len(self.targets))
            self.lab_off.append(len(self.lab))

    def segment(self, v: int, label: int) -> Tuple[int, int]:
        """``(start, stop)`` into ``targets`` for ``(v, label)``; (0, 0) if absent."""
        lo, hi = self.lab_off[v], self.lab_off[v + 1]
        # manual scan instead of array.index(label, lo, hi): the buffers
        # may be shared-memory memoryviews (no .index), and per-vertex
        # label lists are tiny; results are cached downstream anyway
        lab = self.lab
        for k in range(lo, hi):
            if lab[k] == label:
                return (self.seg_off[k], self.seg_off[k + 1])
        return (0, 0)

    def neighbors(self, v: int, label: int) -> Tuple[int, ...]:
        key = (v, label)
        cached = self.seg_cache.get(key)
        if cached is None:
            start, stop = self.segment(v, label)
            cached = tuple(self.targets[start:stop])
            self.seg_cache[key] = cached
        return cached

    @classmethod
    def _from_buffers(cls, lab_off, lab, seg_off, targets, sorted_targets):
        """Rebuild a direction over existing buffers (the shm attach path)."""
        self = cls.__new__(cls)
        self.lab_off = lab_off
        self.lab = lab
        self.seg_off = seg_off
        self.targets = targets
        self.sorted_targets = sorted_targets
        self.seg_cache = {}
        return self

    def __getstate__(self):
        state = {}
        for slot in self.__slots__:
            if slot == "seg_cache":
                continue
            value = getattr(self, slot)
            if isinstance(value, memoryview):
                # shm-attached buffers cannot cross a pickle boundary;
                # materialize them (the receiver owns a private copy)
                value = array("q", value)
            state[slot] = value
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self.seg_cache = {}

    def all_neighbors(self, v: int) -> List[int]:
        lo, hi = self.lab_off[v], self.lab_off[v + 1]
        return list(self.targets[self.seg_off[lo]:self.seg_off[hi]])

    def degree(self, v: int) -> int:
        lo, hi = self.lab_off[v], self.lab_off[v + 1]
        return self.seg_off[hi] - self.seg_off[lo]

    def label_map(self, v: int) -> Dict[int, IntArrayView]:
        lo, hi = self.lab_off[v], self.lab_off[v + 1]
        return {
            self.lab[k]: IntArrayView(
                self.targets, self.seg_off[k], self.seg_off[k + 1]
            )
            for k in range(lo, hi)
        }

    def contains(self, v: int, label: int, target: int) -> bool:
        start, stop = self.segment(v, label)
        if start == stop:
            return False
        index = bisect_left(self.sorted_targets, target, start, stop)
        return index < stop and self.sorted_targets[index] == target


class _LazyShmMap:
    """``label -> int64 buffer`` mapping over a shared segment, cast lazily.

    Worker attach must stay O(1) in the number of labels (the AIDS-like
    graphs carry dozens of vertex labels); each buffer is sliced+cast out
    of the segment on first access and cached.  Supports the small
    mapping surface the graph accessors actually use.
    """

    __slots__ = ("_view", "_tag", "_labels", "_members", "_cache")

    def __init__(self, view, tag: str, labels: Tuple[int, ...]) -> None:
        self._view = view
        self._tag = tag
        self._labels = labels
        self._members = frozenset(labels)
        self._cache: Dict[int, object] = {}

    def get(self, label, default=None):
        cached = self._cache.get(label)
        if cached is not None:
            return cached
        if label not in self._members:
            return default
        data = self._view.ints((self._tag, label))
        self._cache[label] = data
        return data

    def __getitem__(self, label):
        data = self.get(label)
        if data is None:
            raise KeyError(label)
        return data

    def __contains__(self, label) -> bool:
        return label in self._members

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self):
        return iter(self._labels)

    def keys(self) -> Tuple[int, ...]:
        return self._labels

    def values(self):
        return [self[label] for label in self._labels]

    def items(self):
        return [(label, self[label]) for label in self._labels]


class _SharedVLabels(Sequence):
    """Per-vertex label sets decoded lazily from a shared-memory index.

    An attached graph must not materialize ``num_vertices`` frozensets at
    construction (that would defeat the point of a sub-millisecond
    attach); instead each vertex carries an index into the shared table
    of *unique* label sets, decoded per access.  Vertices sharing a label
    set share one frozenset object, exactly like the sealed original.
    """

    __slots__ = ("_index", "_raw", "_sets")

    def __init__(self, index, raw_table: Tuple[Tuple[int, ...], ...]) -> None:
        self._index = index
        self._raw = raw_table
        self._sets: List[Optional[FrozenSet[int]]] = [None] * len(raw_table)

    def _set(self, i: int) -> FrozenSet[int]:
        cached = self._sets[i]
        if cached is None:
            cached = self._sets[i] = frozenset(self._raw[i])
        return cached

    def __len__(self) -> int:
        return len(self._index)

    def __getitem__(self, v):
        if isinstance(v, slice):
            return [self._set(i) for i in self._index[v]]
        return self._set(self._index[v])

    def __iter__(self):
        for i in self._index:
            yield self._set(i)


class CompactGraph(Graph):
    """Sealed, array-backed snapshot of a :class:`Graph`.

    Exposes the exact accessor API of the dict-backed graph (it *is* a
    ``Graph`` for ``isinstance`` purposes) with identical element orders,
    but rejects every mutation and memoizes derived lookup structures.
    Construct via :meth:`Graph.seal`.
    """

    sealed = True

    def __init__(self, source: Graph) -> None:
        # deliberately no super().__init__(): the dict containers never exist
        if isinstance(source, CompactGraph):
            raise SealedGraphError("graph is already sealed")
        self.num_graphs = source.num_graphs
        self._n = source.num_vertices
        self._m = source.num_edges
        # vertex label sets, interned: vertices sharing a label set share
        # one frozenset object (the dict graph allocates one per vertex)
        interned: Dict[FrozenSet[int], FrozenSet[int]] = {}
        self._vlabels = [
            interned.setdefault(source.vertex_labels(v), source.vertex_labels(v))
            for v in range(self._n)
        ]
        self._fwd = _Direction([source.out_label_map(v) for v in range(self._n)])
        self._rev = _Direction([source.in_label_map(v) for v in range(self._n)])
        # vertex label index, in the dict graph's label + member order
        self._vlabel_order: Tuple[int, ...] = tuple(source.all_vertex_labels())
        self._vindex_arrays: Dict[int, array] = {
            label: array("q", source.vertices_with_label(label))
            for label in self._vlabel_order
        }
        # edge label index: per-label (src, dst) pair arrays in insertion order
        self._elabel_order: Tuple[int, ...] = tuple(source.edge_labels())
        self._esrc: Dict[int, array] = {}
        self._edst: Dict[int, array] = {}
        for label in self._elabel_order:
            pairs = source.edges_with_label(label)
            self._esrc[label] = array("q", (s for s, _ in pairs))
            self._edst[label] = array("q", (d for _, d in pairs))
        # lazy memoization caches (safe only because the graph is sealed)
        self._out_set_cache: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._in_set_cache: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._vlabel_set_cache: Dict[int, FrozenSet[int]] = {}
        self._vlabels_members_cache: Dict[FrozenSet[int], Tuple[int, ...]] = {}
        self._labels_set_cache: Dict[FrozenSet[int], FrozenSet[int]] = {}
        self._edge_pairs_cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        self._out_bits_cache: Dict[Tuple[int, int], int] = {}
        self._in_bits_cache: Dict[Tuple[int, int], int] = {}
        self._labels_bits_cache: Dict[FrozenSet[int], int] = {}
        self._filtered_cache: Dict[tuple, Tuple[int, ...]] = {}
        self._shm_view = None
        #: cross-component memoization point: immutability makes it safe
        #: for *any* consumer (relational access paths, matchers) to park
        #: derived structures here and share them across estimator
        #: instances; keys are namespaced tuples, values treated read-only
        self.shared_cache: Dict[tuple, object] = {}
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # kernel hooks (zero-copy arena access for repro.kernels)
    # ------------------------------------------------------------------
    def edge_pair_buffers(self, label: int):
        """Raw ``(src, dst)`` int64 buffers behind ``edges_with_label``.

        The zero-copy attachment point for :mod:`repro.kernels` — either
        ``array('q')`` objects (local seal) or read-only memoryviews
        into a shared segment (shm attach); numpy views alias both
        without copying.  None when the label has no edges.
        """
        src = self._esrc.get(label)
        if src is None:
            return None
        return (src, self._edst[label])

    def _targets_view(self, direction: _Direction):
        """Cached int64 view over one direction's targets arena.

        Keyed by backend kind as well as direction: in-process backend
        flips (``force_backend``) must never hand one leg's view type to
        another leg's kernels.
        """
        key = (
            "kernels.targets",
            _kernels.active_backend(),
            direction is self._fwd,
        )
        view = self.shared_cache.get(key)
        if view is None:
            view = _kernels.as_int64(direction.targets)
            if view is not None:
                self.shared_cache[key] = view
        return view

    # ------------------------------------------------------------------
    # sealing
    # ------------------------------------------------------------------
    def seal(self) -> "CompactGraph":
        """A sealed graph is its own seal."""
        return self

    def _reject(self, operation: str):
        raise SealedGraphError(
            f"cannot {operation} on a sealed CompactGraph; build with Graph "
            f"and seal() afterwards"
        )

    def add_vertex(self, labels=()):  # noqa: D102 - sealed
        self._reject("add_vertex")

    def add_vertex_label(self, v, label):  # noqa: D102 - sealed
        self._reject("add_vertex_label")

    def add_edge(self, src, dst, label=UNLABELED):  # noqa: D102 - sealed
        self._reject("add_edge")

    def add_undirected_edge(self, u, v, label=UNLABELED):  # noqa: D102
        self._reject("add_undirected_edge")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    def __len__(self) -> int:
        return self._m

    def vertices(self) -> range:
        return range(self._n)

    def vertex_labels(self, v: int) -> FrozenSet[int]:
        return self._vlabels[v]

    def edges(self) -> Iterator[Edge]:
        for label in self._elabel_order:
            for src, dst in zip(self._esrc[label], self._edst[label]):
                yield (src, dst, label)

    def has_edge(self, src: int, dst: int, label: int) -> bool:
        if not 0 <= src < self._n:
            return False
        return dst in self.out_neighbor_set(src, label)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int, label: Optional[int] = None):
        if label is None:
            return self._fwd.all_neighbors(v)
        return self._fwd.neighbors(v, label)

    def in_neighbors(self, v: int, label: Optional[int] = None):
        if label is None:
            return self._rev.all_neighbors(v)
        return self._rev.neighbors(v, label)

    def out_label_map(self, v: int) -> Dict[int, IntArrayView]:
        return self._fwd.label_map(v)

    def in_label_map(self, v: int) -> Dict[int, IntArrayView]:
        return self._rev.label_map(v)

    def out_degree(self, v: int) -> int:
        return self._fwd.degree(v)

    def in_degree(self, v: int) -> int:
        return self._rev.degree(v)

    def degree(self, v: int) -> int:
        return self._fwd.degree(v) + self._rev.degree(v)

    def neighborhood(self, v: int) -> set:
        result = set(self._fwd.all_neighbors(v))
        result.update(self._rev.all_neighbors(v))
        return result

    # ------------------------------------------------------------------
    # memoized set views (the sealed substrate's fast-path contract)
    # ------------------------------------------------------------------
    def out_neighbor_set(self, v: int, label: int) -> FrozenSet[int]:
        """Frozenset of ``out_neighbors(v, label)``, cached forever.

        Safe to memoize only because the graph is immutable; the exact
        matcher turns per-candidate ``has_edge`` probes into single C
        membership checks against these.
        """
        key = (v, label)
        cached = self._out_set_cache.get(key)
        if cached is None:
            start, stop = self._fwd.segment(v, label)
            cached = frozenset(self._fwd.targets[start:stop])
            self._out_set_cache[key] = cached
        return cached

    def in_neighbor_set(self, v: int, label: int) -> FrozenSet[int]:
        """Frozenset of ``in_neighbors(v, label)``, cached forever."""
        key = (v, label)
        cached = self._in_set_cache.get(key)
        if cached is None:
            start, stop = self._rev.segment(v, label)
            cached = frozenset(self._rev.targets[start:stop])
            self._in_set_cache[key] = cached
        return cached

    def label_member_set(self, label: int) -> FrozenSet[int]:
        """Frozenset of ``vertices_with_label(label)``, cached forever."""
        cached = self._vlabel_set_cache.get(label)
        if cached is None:
            cached = frozenset(self._vindex_arrays.get(label, _EMPTY))
            self._vlabel_set_cache[label] = cached
        return cached

    def label_members(self, labels: FrozenSet[int]) -> Tuple[int, ...]:
        """``vertices_with_labels`` as a cached tuple (empty labels = all)."""
        cached = self._vlabels_members_cache.get(labels)
        if cached is None:
            cached = tuple(self.vertices_with_labels(labels))
            self._vlabels_members_cache[labels] = cached
        return cached

    def labels_member_set(self, labels) -> FrozenSet[int]:
        """Vertices carrying *all* of ``labels``, as a cached frozenset.

        ``v in labels_member_set(L)`` is equivalent to
        ``L <= vertex_labels(v)`` — one C membership test instead of a
        frozenset subset comparison per probe.
        """
        labels = frozenset(labels)
        cached = self._labels_set_cache.get(labels)
        if cached is None:
            if labels:
                sets = [self.label_member_set(label) for label in labels]
                cached = frozenset.intersection(*sets)
            else:
                cached = frozenset(range(self._n))
            self._labels_set_cache[labels] = cached
        return cached

    # ------------------------------------------------------------------
    # adjacency bitsets (the exact matcher's intersection kernel)
    # ------------------------------------------------------------------
    def _segment_bits(self, direction: _Direction, v: int, label: int) -> int:
        start, stop = direction.segment(v, label)
        if stop - start >= _kops.SMALL_INPUT * 2:
            view = self._targets_view(direction)
            if view is not None:
                seg = view[start:stop]
                return _kops.pack_bits(seg, self._n, values_arr=seg)
        targets = direction.targets
        ba = bytearray((self._n + 7) >> 3)
        for i in range(start, stop):
            t = targets[i]
            ba[t >> 3] |= 1 << (t & 7)
        return int.from_bytes(ba, "little")

    def out_neighbor_bits(self, v: int, label: int) -> int:
        """``out_neighbors(v, label)`` as an int bitset, cached forever.

        Bit ``t`` is set iff ``(v, t, label)`` is an edge.  Python's big
        ints make ``a & b`` a C-speed word-wise intersection and
        ``bit_count()`` a C-speed popcount, which is what turns the
        matcher's multi-constraint candidate filtering (and the leaf
        product's candidate *counts*) into a handful of opcodes.
        """
        key = (v, label)
        cached = self._out_bits_cache.get(key)
        if cached is None:
            cached = self._segment_bits(self._fwd, v, label)
            self._out_bits_cache[key] = cached
        return cached

    def in_neighbor_bits(self, v: int, label: int) -> int:
        """``in_neighbors(v, label)`` as an int bitset, cached forever."""
        key = (v, label)
        cached = self._in_bits_cache.get(key)
        if cached is None:
            cached = self._segment_bits(self._rev, v, label)
            self._in_bits_cache[key] = cached
        return cached

    def out_neighbors_labeled(self, v: int, label: int, vlabels) -> Tuple[int, ...]:
        """``out_neighbors(v, label)`` restricted to vertices carrying all
        of ``vlabels``, cached forever.

        Filtered adjacency is a pure property of the (immutable) graph,
        so caching it here — instead of inside each matcher instance —
        lets every counter over this graph share one filtered list per
        ``(v, edge label, vertex-label set)``, which is the exact
        matcher's dominant miss cost across a multi-query workload.
        Order matches the unfiltered view, preserving the determinism
        contract.
        """
        key = (True, v, label, vlabels)
        cached = self._filtered_cache.get(key)
        if cached is None:
            cached = self._filtered(self._fwd, v, label, vlabels)
            self._filtered_cache[key] = cached
        return cached

    def _filtered(
        self, direction: _Direction, v: int, label: int, vlabels
    ) -> Tuple[int, ...]:
        """One direction's label-constrained candidate list (kernel path)."""
        member = self.labels_member_set(vlabels)
        neighbors = direction.neighbors(v, label)
        values_arr = None
        if len(neighbors) >= _kops.SMALL_INPUT:
            view = self._targets_view(direction)
            if view is not None:
                start, stop = direction.segment(v, label)
                values_arr = view[start:stop]
        return tuple(
            _kops.filter_members(
                neighbors,
                member,
                _kviews.member_array(self, vlabels),
                values_arr,
            )
        )

    def in_neighbors_labeled(self, v: int, label: int, vlabels) -> Tuple[int, ...]:
        """``in_neighbors(v, label)`` restricted to ``vlabels`` carriers."""
        key = (False, v, label, vlabels)
        cached = self._filtered_cache.get(key)
        if cached is None:
            cached = self._filtered(self._rev, v, label, vlabels)
            self._filtered_cache[key] = cached
        return cached

    def labels_member_bits(self, labels) -> int:
        """``labels_member_set(labels)`` as an int bitset, cached forever."""
        labels = frozenset(labels)
        cached = self._labels_bits_cache.get(labels)
        if cached is None:
            members = self.labels_member_set(labels)
            cached = _kops.pack_bits(
                members,
                self._n,
                values_arr=_kviews.member_array(self, labels),
            )
            self._labels_bits_cache[labels] = cached
        return cached

    def edge_pairs(self, label: int) -> Tuple[Tuple[int, int], ...]:
        """``edges_with_label`` materialized as a cached tuple of pairs.

        Same pairs in the same order as the live view; hot loops that
        repeatedly index into the pair list (relation sampling) skip the
        per-access tuple construction of :class:`PairArrayView`.
        """
        cached = self._edge_pairs_cache.get(label)
        if cached is None:
            src = self._esrc.get(label)
            if src is None:
                cached = ()
            else:
                views = _kviews.pair_arrays(self, label)
                if views is not None:
                    # boxing through ndarray.tolist() is one C pass per
                    # column instead of per-element buffer indexing
                    cached = tuple(zip(views[0].tolist(), views[1].tolist()))
                else:
                    cached = tuple(zip(src, self._edst[label]))
            self._edge_pairs_cache[label] = cached
        return cached

    # ------------------------------------------------------------------
    # label indexes
    # ------------------------------------------------------------------
    def vertices_with_label(self, label: int) -> IntArrayView:
        data = self._vindex_arrays.get(label)
        if data is None:
            return _EMPTY_VIEW
        return IntArrayView(data)

    def vertices_with_labels(self, labels: FrozenSet[int]):
        if not labels:
            return self.vertices()
        ordered = sorted(
            ((self.vertices_with_label(label), label) for label in labels),
            key=lambda entry: len(entry[0]),
        )
        smallest = ordered[0][0]
        member_sets = [self.label_member_set(label) for _, label in ordered[1:]]
        if not member_sets:
            return list(smallest)
        member_arrs = None
        if _kernels.accelerated():
            member_arrs = [
                _kviews.member_array(self, frozenset((label,)))
                for _, label in ordered[1:]
            ]
        return _kops.filter_members_multi(smallest, member_sets, member_arrs)

    def edges_with_label(self, label: int) -> PairArrayView:
        src = self._esrc.get(label)
        if src is None:
            return _EMPTY_PAIRS
        return PairArrayView(src, self._edst[label])

    def edge_label_count(self, label: int) -> int:
        src = self._esrc.get(label)
        return 0 if src is None else len(src)

    def edge_labels(self) -> List[int]:
        return list(self._elabel_order)

    def all_vertex_labels(self) -> List[int]:
        return list(self._vlabel_order)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> GraphStats:
        n = self._n
        max_degree = max((self.degree(v) for v in range(n)), default=0)
        avg_degree = (2.0 * self._m / n) if n else 0.0
        predicate_counts = [len(self._esrc[l]) for l in self._elabel_order]
        nontrivial = [l for l in self._elabel_order if l != UNLABELED]
        return GraphStats(
            num_graphs=self.num_graphs,
            num_vertices=n,
            num_edges=self._m,
            avg_degree=avg_degree,
            max_degree=max_degree,
            num_vertex_labels=len(self._vlabel_order),
            num_edge_labels=len(self._elabel_order) if nontrivial else 0,
            max_triples_per_predicate=max(predicate_counts, default=0),
            min_triples_per_predicate=min(predicate_counts, default=0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CompactGraph(|V|={self._n}, |E|={self._m}, "
            f"vlabels={len(self._vlabel_order)}, "
            f"elabels={len(self._elabel_order)})"
        )

    # ------------------------------------------------------------------
    # shared memory (zero-copy publication to worker processes)
    # ------------------------------------------------------------------
    def to_shm(self):
        """Publish every array buffer into one shared-memory segment.

        Returns ``(handle, ref)``: the creator-side
        :class:`~repro.shm.SealedArena` handle (``handle.release()``
        unlinks the segment; orderly exits and orphan reaping back it up)
        and a tiny picklable :class:`~repro.shm.ShmRef` that any process
        on this host turns back into a graph with :meth:`from_shm` —
        attaching maps the same physical pages read-only instead of
        copying them, so attach cost is independent of graph size.
        """
        from ..shm import ShmArena, ShmRef

        arena = ShmArena()
        for tag, direction in (("f", self._fwd), ("r", self._rev)):
            arena.add_ints((tag, "lab_off"), direction.lab_off)
            arena.add_ints((tag, "lab"), direction.lab)
            arena.add_ints((tag, "seg_off"), direction.seg_off)
            arena.add_ints((tag, "targets"), direction.targets)
            arena.add_ints((tag, "sorted"), direction.sorted_targets)
        for label in self._vlabel_order:
            arena.add_ints(("vl", label), self._vindex_arrays[label])
        for label in self._elabel_order:
            arena.add_ints(("es", label), self._esrc[label])
            arena.add_ints(("ed", label), self._edst[label])
        # vertex label sets, dictionary-encoded: a per-vertex index into
        # the (small) table of unique sets, decoded lazily on attach
        table: List[Tuple[int, ...]] = []
        index_of: Dict[FrozenSet[int], int] = {}
        set_index = array("q")
        for labels in self._vlabels:
            i = index_of.get(labels)
            if i is None:
                i = index_of[labels] = len(table)
                table.append(tuple(sorted(labels)))
            set_index.append(i)
        arena.add_ints(("v", "sets"), set_index)
        handle, manifest = arena.seal()
        manifest["graph"] = {
            "n": self._n,
            "m": self._m,
            "num_graphs": self.num_graphs,
            "vlabel_order": self._vlabel_order,
            "elabel_order": self._elabel_order,
            "vsets": tuple(table),
            "fingerprint": self._fingerprint,
        }
        return handle, ShmRef("graph", manifest)

    @classmethod
    def from_shm(cls, ref) -> "CompactGraph":
        """Attach a graph published by :meth:`to_shm` — zero copies.

        Every array field becomes a read-only ``memoryview`` cast over
        the shared segment; all accessors work identically (and return
        identical elements in identical order), so estimates and matcher
        counts are bit-identical to the sealed original.  Per-process
        memoization caches start empty, exactly as after unpickling.
        """
        from ..shm import ArenaView, ShmRef

        manifest = ref.manifest if isinstance(ref, ShmRef) else ref
        view = ArenaView(manifest)
        meta = manifest["graph"]
        self = cls.__new__(cls)
        self.num_graphs = meta["num_graphs"]
        self._n = meta["n"]
        self._m = meta["m"]
        self._vlabels = _SharedVLabels(view.ints(("v", "sets")), meta["vsets"])
        self._fwd = _Direction._from_buffers(
            view.ints(("f", "lab_off")), view.ints(("f", "lab")),
            view.ints(("f", "seg_off")), view.ints(("f", "targets")),
            view.ints(("f", "sorted")),
        )
        self._rev = _Direction._from_buffers(
            view.ints(("r", "lab_off")), view.ints(("r", "lab")),
            view.ints(("r", "seg_off")), view.ints(("r", "targets")),
            view.ints(("r", "sorted")),
        )
        self._vlabel_order = tuple(meta["vlabel_order"])
        self._vindex_arrays = _LazyShmMap(view, "vl", self._vlabel_order)
        self._elabel_order = tuple(meta["elabel_order"])
        self._esrc = _LazyShmMap(view, "es", self._elabel_order)
        self._edst = _LazyShmMap(view, "ed", self._elabel_order)
        self._out_set_cache = {}
        self._in_set_cache = {}
        self._vlabel_set_cache = {}
        self._vlabels_members_cache = {}
        self._labels_set_cache = {}
        self._edge_pairs_cache = {}
        self._out_bits_cache = {}
        self._in_bits_cache = {}
        self._labels_bits_cache = {}
        self._filtered_cache = {}
        self.shared_cache = {}
        self._fingerprint = meta["fingerprint"]
        self._shm_view = view
        return self

    # ------------------------------------------------------------------
    # pickling (the memoization caches are per-process; drop them)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = {
            k: v
            for k, v in self.__dict__.items()
            if k
            not in (
                "_out_set_cache",
                "_in_set_cache",
                "_vlabel_set_cache",
                "_vlabels_members_cache",
                "_labels_set_cache",
                "_edge_pairs_cache",
                "_out_bits_cache",
                "_in_bits_cache",
                "_labels_bits_cache",
                "_filtered_cache",
                "shared_cache",
                "_shm_view",
            )
        }
        # an shm-attached graph holds memoryviews into the segment, which
        # cannot cross a pickle boundary: materialize private copies (the
        # _Direction fields handle their own slots the same way)
        if not isinstance(state["_vlabels"], list):
            state["_vlabels"] = list(state["_vlabels"])
        for field in ("_vindex_arrays", "_esrc", "_edst"):
            mapping = state[field]
            if any(isinstance(v, memoryview) for v in mapping.values()):
                state[field] = {
                    label: array("q", data) if isinstance(data, memoryview)
                    else data
                    for label, data in mapping.items()
                }
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._out_set_cache = {}
        self._in_set_cache = {}
        self._vlabel_set_cache = {}
        self._vlabels_members_cache = {}
        self._labels_set_cache = {}
        self._edge_pairs_cache = {}
        self._out_bits_cache = {}
        self._in_bits_cache = {}
        self._labels_bits_cache = {}
        self._filtered_cache = {}
        self.shared_cache = {}
        self._shm_view = None

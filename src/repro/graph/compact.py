"""Compact sealed graph: CSR adjacency over ``array('q')`` buffers.

The dict-of-lists :class:`~repro.graph.digraph.Graph` is the right shape
for *building* a graph — loaders and generators append freely — but it is
a poor shape for *running* estimators over one: every adjacency list is a
Python list of boxed ints inside a per-vertex dict, every ``has_edge``
probe allocates a tuple to hash into a set of tuples, and nothing can be
memoized because the graph may grow under the caller's feet.

:class:`CompactGraph` is the sealed (immutable) form the evaluation
pipeline actually runs on.  ``Graph.seal()`` produces one; loaders and
dataset generators seal by default.  Layout, per direction (out/in):

* ``lab_off`` / ``lab`` — per-vertex label lists (two-level CSR): vertex
  ``v``'s adjacency is grouped by edge label, labels listed in the same
  order the dict-backed graph held them;
* ``seg_off`` / ``targets`` — one contiguous neighbor segment per
  ``(vertex, label)`` pair, neighbors in original insertion order;
* ``sorted_targets`` — the same segments with neighbors sorted, giving
  ``has_edge`` an O(log d) bisect with no tuple allocation.

**Order preservation is a feature, not an accident.**  Sampling-based
estimators index into adjacency lists and relation scans with their RNG,
so iteration order is part of the determinism contract: every accessor
of the sealed graph returns elements in exactly the order the dict-backed
graph would, which is what makes estimates bit-identical across the two
substrates (see ``tests/test_compact_graph.py``).

**Sealing unlocks memoization.**  Because a sealed graph can never
change, it safely caches derived structures on first use: per-``(vertex,
label)`` neighbor frozensets (the exact-matcher's constraint filters),
per-label vertex membership sets, and label-set member lists.  The
mutable graph cannot offer these without invalidation hazards — which is
precisely why the fast paths downstream key on ``graph.sealed``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .. import kernels as _kernels
from ..kernels import ops as _kops
from ..kernels import views as _kviews
from .delta import (
    DeltaError,
    OP_ADD_EDGE,
    OP_ADD_VERTEX,
    OP_ADD_VERTEX_LABEL,
    OP_REMOVE_EDGE,
)
from .digraph import Edge, Graph, GraphStats, UNLABELED


class SealedGraphError(TypeError):
    """Raised when a mutation is attempted on a sealed graph."""


class IntArrayView(Sequence):
    """Immutable view over a slice of an ``array('q')`` buffer.

    Behaves like a read-only list of ints: ``len``, indexing, iteration,
    containment and equality against any sequence all work; mutation does
    not exist.  Views are cheap (three words) and never copy the buffer.
    """

    __slots__ = ("_data", "_start", "_stop")

    def __init__(self, data: array, start: int = 0, stop: Optional[int] = None):
        self._data = data
        self._start = start
        self._stop = len(data) if stop is None else stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        n = self._stop - self._start
        if isinstance(index, slice):
            start, stop, step = index.indices(n)
            if step != 1:
                return tuple(
                    self._data[self._start + i] for i in range(start, stop, step)
                )
            return IntArrayView(self._data, self._start + start, self._start + stop)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("view index out of range")
        return self._data[self._start + index]

    def __iter__(self):
        data = self._data
        for i in range(self._start, self._stop):
            yield data[i]

    def __contains__(self, value) -> bool:
        data = self._data
        for i in range(self._start, self._stop):
            if data[i] == value:
                return True
        return False

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, IntArrayView)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self):  # pragma: no cover - views are not hashable
        raise TypeError("IntArrayView is unhashable; convert to tuple")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"IntArrayView({list(self)!r})"


class PairArrayView(Sequence):
    """Immutable view over parallel src/dst arrays: a list of pairs.

    The sealed counterpart of ``Graph.edges_with_label``'s pair list —
    same length, same order, same ``(src, dst)`` tuples, no mutation.
    """

    __slots__ = ("_src", "_dst")

    def __init__(self, src: array, dst: array) -> None:
        self._src = src
        self._dst = dst

    def __len__(self) -> int:
        return len(self._src)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                (self._src[i], self._dst[i])
                for i in range(*index.indices(len(self._src)))
            ]
        return (self._src[index], self._dst[index])

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return zip(self._src, self._dst)

    def __contains__(self, pair) -> bool:
        try:
            s, d = pair
        except (TypeError, ValueError):
            return False
        return any(
            self._src[i] == s and self._dst[i] == d
            for i in range(len(self._src))
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, PairArrayView)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self):  # pragma: no cover - views are not hashable
        raise TypeError("PairArrayView is unhashable; convert to list")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PairArrayView({list(self)!r})"


_EMPTY = array("q")
_EMPTY_VIEW = IntArrayView(_EMPTY)
_EMPTY_PAIRS = PairArrayView(_EMPTY, _EMPTY)


class _Direction:
    """One direction (out or in) of the two-level CSR adjacency."""

    __slots__ = ("lab_off", "lab", "seg_off", "targets", "sorted_targets",
                 "seg_cache")

    def __init__(self, adjacency: List[Dict[int, List[int]]]) -> None:
        self.lab_off = array("q", [0])
        self.lab = array("q")
        self.seg_off = array("q", [0])
        self.targets = array("q")
        self.sorted_targets = array("q")
        #: lazy (v, label) -> materialized neighbor tuple; hot loops probe
        #: the same segments constantly, and a cached tuple beats a fresh
        #: view object (C-speed len/index/iteration, no allocation)
        self.seg_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        for label_map in adjacency:
            for label, neighbors in label_map.items():
                self.lab.append(label)
                self.targets.extend(neighbors)
                self.sorted_targets.extend(sorted(neighbors))
                self.seg_off.append(len(self.targets))
            self.lab_off.append(len(self.lab))

    def segment(self, v: int, label: int) -> Tuple[int, int]:
        """``(start, stop)`` into ``targets`` for ``(v, label)``; (0, 0) if absent."""
        lo, hi = self.lab_off[v], self.lab_off[v + 1]
        # manual scan instead of array.index(label, lo, hi): the buffers
        # may be shared-memory memoryviews (no .index), and per-vertex
        # label lists are tiny; results are cached downstream anyway
        lab = self.lab
        for k in range(lo, hi):
            if lab[k] == label:
                return (self.seg_off[k], self.seg_off[k + 1])
        return (0, 0)

    def neighbors(self, v: int, label: int) -> Tuple[int, ...]:
        key = (v, label)
        cached = self.seg_cache.get(key)
        if cached is None:
            start, stop = self.segment(v, label)
            cached = tuple(self.targets[start:stop])
            self.seg_cache[key] = cached
        return cached

    @classmethod
    def _from_buffers(cls, lab_off, lab, seg_off, targets, sorted_targets):
        """Rebuild a direction over existing buffers (the shm attach path)."""
        self = cls.__new__(cls)
        self.lab_off = lab_off
        self.lab = lab
        self.seg_off = seg_off
        self.targets = targets
        self.sorted_targets = sorted_targets
        self.seg_cache = {}
        return self

    def __getstate__(self):
        state = {}
        # the class constant, not self.__slots__: a subclass instance's
        # __slots__ names only the subclass additions
        for slot in _Direction.__slots__:
            if slot == "seg_cache":
                continue
            value = getattr(self, slot)
            if isinstance(value, memoryview):
                # shm-attached buffers cannot cross a pickle boundary;
                # materialize them (the receiver owns a private copy)
                value = array("q", value)
            state[slot] = value
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self.seg_cache = {}

    def all_neighbors(self, v: int) -> List[int]:
        lo, hi = self.lab_off[v], self.lab_off[v + 1]
        return list(self.targets[self.seg_off[lo]:self.seg_off[hi]])

    def degree(self, v: int) -> int:
        lo, hi = self.lab_off[v], self.lab_off[v + 1]
        return self.seg_off[hi] - self.seg_off[lo]

    def label_map(self, v: int) -> Dict[int, IntArrayView]:
        lo, hi = self.lab_off[v], self.lab_off[v + 1]
        return {
            self.lab[k]: IntArrayView(
                self.targets, self.seg_off[k], self.seg_off[k + 1]
            )
            for k in range(lo, hi)
        }

    def contains(self, v: int, label: int, target: int) -> bool:
        start, stop = self.segment(v, label)
        if start == stop:
            return False
        index = bisect_left(self.sorted_targets, target, start, stop)
        return index < stop and self.sorted_targets[index] == target

    def patch_row(self, v: int):
        """Reseal overlay row for ``v`` (None on a pristine direction).

        The patched subclass returns the copy-on-write adjacency row of a
        vertex touched by :meth:`CompactGraph.reseal`; accessors consult
        it before touching the CSR offsets (which still describe the
        *base* generation for patched vertices).
        """
        return None


#: shared immutable row for vertices added by a reseal and never touched
#: again — real rows replace it on first mutation
_EMPTY_ROW: Dict[int, Tuple[int, ...]] = {}


class _PatchedDirection(_Direction):
    """A direction with copy-on-write rows over a pristine base.

    Shares the base CSR arenas (which may be read-only shared-memory
    views — in-place mutation is impossible by construction) and carries
    a ``rows`` dict holding the full ``label -> targets`` adjacency of
    every vertex a reseal touched, in exactly the order a freshly sealed
    graph would hold it.  Chained reseals stack onto the *same* base:
    ``rows`` accumulates, and the compaction threshold in ``reseal``
    bounds how far it can grow before a full rebuild.
    """

    __slots__ = ("rows", "base_n")

    def __init__(
        self,
        base: _Direction,
        rows: Dict[int, Dict[int, Tuple[int, ...]]],
        base_n: int,
    ) -> None:
        # share the base arenas; no super().__init__() (it would rebuild)
        self.lab_off = base.lab_off
        self.lab = base.lab
        self.seg_off = base.seg_off
        self.targets = base.targets
        self.sorted_targets = base.sorted_targets
        self.seg_cache = {}
        self.rows = rows
        self.base_n = base_n

    def patch_row(self, v: int):
        row = self.rows.get(v)
        if row is None and v >= self.base_n:
            return _EMPTY_ROW
        return row

    def segment(self, v: int, label: int) -> Tuple[int, int]:
        if self.patch_row(v) is not None:  # pragma: no cover - guarded
            raise SealedGraphError(
                "CSR segment offsets are undefined for a patched vertex"
            )
        return super().segment(v, label)

    def neighbors(self, v: int, label: int) -> Tuple[int, ...]:
        row = self.patch_row(v)
        if row is None:
            return super().neighbors(v, label)
        return row.get(label, ())

    def all_neighbors(self, v: int) -> List[int]:
        row = self.patch_row(v)
        if row is None:
            return super().all_neighbors(v)
        result: List[int] = []
        for targets in row.values():
            result.extend(targets)
        return result

    def degree(self, v: int) -> int:
        row = self.patch_row(v)
        if row is None:
            return super().degree(v)
        return sum(len(targets) for targets in row.values())

    def label_map(self, v: int) -> Dict[int, Sequence[int]]:
        row = self.patch_row(v)
        if row is None:
            return super().label_map(v)
        return dict(row)

    def contains(self, v: int, label: int, target: int) -> bool:
        row = self.patch_row(v)
        if row is None:
            return super().contains(v, label, target)
        return target in row.get(label, ())

    def __getstate__(self):
        state = super().__getstate__()
        state["rows"] = self.rows
        state["base_n"] = self.base_n
        return state


class _OverlayMap:
    """Label-keyed mapping with copy-on-write overrides over a base map.

    Backs the patched graph's ``_vindex_arrays`` / ``_esrc`` / ``_edst``:
    untouched labels read straight from the base (a plain dict or a
    :class:`_LazyShmMap` over a shared segment), touched labels from
    private ``array('q')`` copies.  Iteration follows the patched
    graph's label order so serialization and ``values()`` scans see the
    same world the accessors do.
    """

    __slots__ = ("_base", "_over", "_order")

    def __init__(self, base, over: Dict[int, array], order) -> None:
        self._base = base
        self._over = over
        #: a callable returning the *current* label order — the graph's
        #: order tuple is only final once reseal finishes building it
        self._order = order

    def get(self, label, default=None):
        # order gate first: a label emptied by deletes keeps its (empty)
        # override array, but must read as absent — like a fresh seal
        if label not in self._order():
            return default
        data = self._over.get(label)
        if data is not None:
            return data
        return self._base.get(label, default)

    def __getitem__(self, label):
        data = self.get(label)
        if data is None:
            raise KeyError(label)
        return data

    def __contains__(self, label) -> bool:
        return label in self._order()

    def __len__(self) -> int:
        return len(self._order())

    def __iter__(self):
        return iter(self._order())

    def keys(self):
        return tuple(self._order())

    def values(self):
        return [self[label] for label in self._order()]

    def items(self):
        return [(label, self[label]) for label in self._order()]

    def __getstate__(self):
        # materialize: the base may hold shm memoryviews, and the lambda
        # order closure is unpicklable anyway
        return {label: array("q", data) for label, data in self.items()}

    def __setstate__(self, state):
        self._base = state
        self._over = {}
        order = tuple(state)
        self._order = lambda: order


class _OverlayVLabels(Sequence):
    """Per-vertex label sets with overrides + appended vertices.

    ``base`` is the sealed original's container (list or
    :class:`_SharedVLabels`); ``over`` holds label sets changed by
    ``add_vertex_label`` deltas; ``extra`` the sets of vertices added
    after the base was sealed.
    """

    __slots__ = ("base", "over", "extra", "_base_n")

    def __init__(self, base, over: Dict[int, FrozenSet[int]], extra) -> None:
        self.base = base
        self.over = over
        self.extra = extra
        self._base_n = len(base)

    def __len__(self) -> int:
        return self._base_n + len(self.extra)

    def __getitem__(self, v):
        if isinstance(v, slice):
            return [self[i] for i in range(*v.indices(len(self)))]
        if v >= self._base_n:
            return self.extra[v - self._base_n]
        override = self.over.get(v)
        if override is not None:
            return override
        return self.base[v]

    def __iter__(self):
        for v in range(len(self)):
            yield self[v]


class _LazyShmMap:
    """``label -> int64 buffer`` mapping over a shared segment, cast lazily.

    Worker attach must stay O(1) in the number of labels (the AIDS-like
    graphs carry dozens of vertex labels); each buffer is sliced+cast out
    of the segment on first access and cached.  Supports the small
    mapping surface the graph accessors actually use.
    """

    __slots__ = ("_view", "_tag", "_labels", "_members", "_cache")

    def __init__(self, view, tag: str, labels: Tuple[int, ...]) -> None:
        self._view = view
        self._tag = tag
        self._labels = labels
        self._members = frozenset(labels)
        self._cache: Dict[int, object] = {}

    def get(self, label, default=None):
        cached = self._cache.get(label)
        if cached is not None:
            return cached
        if label not in self._members:
            return default
        data = self._view.ints((self._tag, label))
        self._cache[label] = data
        return data

    def __getitem__(self, label):
        data = self.get(label)
        if data is None:
            raise KeyError(label)
        return data

    def __contains__(self, label) -> bool:
        return label in self._members

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self):
        return iter(self._labels)

    def keys(self) -> Tuple[int, ...]:
        return self._labels

    def values(self):
        return [self[label] for label in self._labels]

    def items(self):
        return [(label, self[label]) for label in self._labels]


class _SharedVLabels(Sequence):
    """Per-vertex label sets decoded lazily from a shared-memory index.

    An attached graph must not materialize ``num_vertices`` frozensets at
    construction (that would defeat the point of a sub-millisecond
    attach); instead each vertex carries an index into the shared table
    of *unique* label sets, decoded per access.  Vertices sharing a label
    set share one frozenset object, exactly like the sealed original.
    """

    __slots__ = ("_index", "_raw", "_sets")

    def __init__(self, index, raw_table: Tuple[Tuple[int, ...], ...]) -> None:
        self._index = index
        self._raw = raw_table
        self._sets: List[Optional[FrozenSet[int]]] = [None] * len(raw_table)

    def _set(self, i: int) -> FrozenSet[int]:
        cached = self._sets[i]
        if cached is None:
            cached = self._sets[i] = frozenset(self._raw[i])
        return cached

    def __len__(self) -> int:
        return len(self._index)

    def __getitem__(self, v):
        if isinstance(v, slice):
            return [self._set(i) for i in self._index[v]]
        return self._set(self._index[v])

    def __iter__(self):
        for i in self._index:
            yield self._set(i)


class CompactGraph(Graph):
    """Sealed, array-backed snapshot of a :class:`Graph`.

    Exposes the exact accessor API of the dict-backed graph (it *is* a
    ``Graph`` for ``isinstance`` purposes) with identical element orders,
    but rejects every mutation and memoizes derived lookup structures.
    Construct via :meth:`Graph.seal`.
    """

    sealed = True
    #: set (as an instance attribute) on graphs produced by the patching
    #: fast path of :meth:`reseal`; kernels that bind raw CSR offsets
    #: (the native matcher) key off it to fall back to accessor paths
    _patched = False
    #: provenance of the last reseal that produced this graph:
    #: ``{"mode": "patched"|"compacted", "rows": ...}`` (None if sealed
    #: from scratch) — observability counters read it at the call sites
    last_reseal: Optional[dict] = None
    #: mutation-count stamp mirrored from the source graph (class-level
    #: default covers pickles from before generations existed)
    generation = 0

    def __init__(self, source: Graph) -> None:
        # deliberately no super().__init__(): the dict containers never exist
        if isinstance(source, CompactGraph):
            raise SealedGraphError("graph is already sealed")
        self.num_graphs = source.num_graphs
        self._n = source.num_vertices
        self._m = source.num_edges
        # vertex label sets, interned: vertices sharing a label set share
        # one frozenset object (the dict graph allocates one per vertex)
        interned: Dict[FrozenSet[int], FrozenSet[int]] = {}
        self._vlabels = [
            interned.setdefault(source.vertex_labels(v), source.vertex_labels(v))
            for v in range(self._n)
        ]
        self._fwd = _Direction([source.out_label_map(v) for v in range(self._n)])
        self._rev = _Direction([source.in_label_map(v) for v in range(self._n)])
        # vertex label index, in the dict graph's label + member order
        self._vlabel_order: Tuple[int, ...] = tuple(source.all_vertex_labels())
        self._vindex_arrays: Dict[int, array] = {
            label: array("q", source.vertices_with_label(label))
            for label in self._vlabel_order
        }
        # edge label index: per-label (src, dst) pair arrays in insertion order
        self._elabel_order: Tuple[int, ...] = tuple(source.edge_labels())
        self._esrc: Dict[int, array] = {}
        self._edst: Dict[int, array] = {}
        for label in self._elabel_order:
            pairs = source.edges_with_label(label)
            self._esrc[label] = array("q", (s for s, _ in pairs))
            self._edst[label] = array("q", (d for _, d in pairs))
        # lazy memoization caches (safe only because the graph is sealed)
        self._out_set_cache: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._in_set_cache: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._vlabel_set_cache: Dict[int, FrozenSet[int]] = {}
        self._vlabels_members_cache: Dict[FrozenSet[int], Tuple[int, ...]] = {}
        self._labels_set_cache: Dict[FrozenSet[int], FrozenSet[int]] = {}
        self._edge_pairs_cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        self._out_bits_cache: Dict[Tuple[int, int], int] = {}
        self._in_bits_cache: Dict[Tuple[int, int], int] = {}
        self._labels_bits_cache: Dict[FrozenSet[int], int] = {}
        self._filtered_cache: Dict[tuple, Tuple[int, ...]] = {}
        self._shm_view = None
        #: cross-component memoization point: immutability makes it safe
        #: for *any* consumer (relational access paths, matchers) to park
        #: derived structures here and share them across estimator
        #: instances; keys are namespaced tuples, values treated read-only
        self.shared_cache: Dict[tuple, object] = {}
        self._fingerprint: Optional[str] = None
        self.generation = source.generation

    # ------------------------------------------------------------------
    # kernel hooks (zero-copy arena access for repro.kernels)
    # ------------------------------------------------------------------
    def edge_pair_buffers(self, label: int):
        """Raw ``(src, dst)`` int64 buffers behind ``edges_with_label``.

        The zero-copy attachment point for :mod:`repro.kernels` — either
        ``array('q')`` objects (local seal) or read-only memoryviews
        into a shared segment (shm attach); numpy views alias both
        without copying.  None when the label has no edges.
        """
        src = self._esrc.get(label)
        if src is None:
            return None
        return (src, self._edst[label])

    def _targets_view(self, direction: _Direction):
        """Cached int64 view over one direction's targets arena.

        Keyed by backend kind as well as direction: in-process backend
        flips (``force_backend``) must never hand one leg's view type to
        another leg's kernels.
        """
        key = (
            "kernels.targets",
            _kernels.active_backend(),
            direction is self._fwd,
        )
        view = self.shared_cache.get(key)
        if view is None:
            view = _kernels.as_int64(direction.targets)
            if view is not None:
                self.shared_cache[key] = view
        return view

    # ------------------------------------------------------------------
    # sealing
    # ------------------------------------------------------------------
    def seal(self) -> "CompactGraph":
        """A sealed graph is its own seal."""
        return self

    def _reject(self, operation: str):
        raise SealedGraphError(
            f"cannot {operation} on a sealed CompactGraph; build with Graph "
            f"and seal() afterwards"
        )

    def add_vertex(self, labels=()):  # noqa: D102 - sealed
        self._reject("add_vertex")

    def add_vertex_label(self, v, label):  # noqa: D102 - sealed
        self._reject("add_vertex_label")

    def add_edge(self, src, dst, label=UNLABELED):  # noqa: D102 - sealed
        self._reject("add_edge")

    def add_undirected_edge(self, u, v, label=UNLABELED):  # noqa: D102
        self._reject("add_undirected_edge")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    def __len__(self) -> int:
        return self._m

    def vertices(self) -> range:
        return range(self._n)

    def vertex_labels(self, v: int) -> FrozenSet[int]:
        return self._vlabels[v]

    def edges(self) -> Iterator[Edge]:
        for label in self._elabel_order:
            for src, dst in zip(self._esrc[label], self._edst[label]):
                yield (src, dst, label)

    def has_edge(self, src: int, dst: int, label: int) -> bool:
        if not 0 <= src < self._n:
            return False
        return dst in self.out_neighbor_set(src, label)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int, label: Optional[int] = None):
        if label is None:
            return self._fwd.all_neighbors(v)
        return self._fwd.neighbors(v, label)

    def in_neighbors(self, v: int, label: Optional[int] = None):
        if label is None:
            return self._rev.all_neighbors(v)
        return self._rev.neighbors(v, label)

    def out_label_map(self, v: int) -> Dict[int, IntArrayView]:
        return self._fwd.label_map(v)

    def in_label_map(self, v: int) -> Dict[int, IntArrayView]:
        return self._rev.label_map(v)

    def out_degree(self, v: int) -> int:
        return self._fwd.degree(v)

    def in_degree(self, v: int) -> int:
        return self._rev.degree(v)

    def degree(self, v: int) -> int:
        return self._fwd.degree(v) + self._rev.degree(v)

    def neighborhood(self, v: int) -> set:
        result = set(self._fwd.all_neighbors(v))
        result.update(self._rev.all_neighbors(v))
        return result

    # ------------------------------------------------------------------
    # memoized set views (the sealed substrate's fast-path contract)
    # ------------------------------------------------------------------
    def out_neighbor_set(self, v: int, label: int) -> FrozenSet[int]:
        """Frozenset of ``out_neighbors(v, label)``, cached forever.

        Safe to memoize only because the graph is immutable; the exact
        matcher turns per-candidate ``has_edge`` probes into single C
        membership checks against these.
        """
        key = (v, label)
        cached = self._out_set_cache.get(key)
        if cached is None:
            row = self._fwd.patch_row(v)
            if row is not None:
                cached = frozenset(row.get(label, ()))
            else:
                start, stop = self._fwd.segment(v, label)
                cached = frozenset(self._fwd.targets[start:stop])
            self._out_set_cache[key] = cached
        return cached

    def in_neighbor_set(self, v: int, label: int) -> FrozenSet[int]:
        """Frozenset of ``in_neighbors(v, label)``, cached forever."""
        key = (v, label)
        cached = self._in_set_cache.get(key)
        if cached is None:
            row = self._rev.patch_row(v)
            if row is not None:
                cached = frozenset(row.get(label, ()))
            else:
                start, stop = self._rev.segment(v, label)
                cached = frozenset(self._rev.targets[start:stop])
            self._in_set_cache[key] = cached
        return cached

    def label_member_set(self, label: int) -> FrozenSet[int]:
        """Frozenset of ``vertices_with_label(label)``, cached forever."""
        cached = self._vlabel_set_cache.get(label)
        if cached is None:
            cached = frozenset(self._vindex_arrays.get(label, _EMPTY))
            self._vlabel_set_cache[label] = cached
        return cached

    def label_members(self, labels: FrozenSet[int]) -> Tuple[int, ...]:
        """``vertices_with_labels`` as a cached tuple (empty labels = all)."""
        cached = self._vlabels_members_cache.get(labels)
        if cached is None:
            cached = tuple(self.vertices_with_labels(labels))
            self._vlabels_members_cache[labels] = cached
        return cached

    def labels_member_set(self, labels) -> FrozenSet[int]:
        """Vertices carrying *all* of ``labels``, as a cached frozenset.

        ``v in labels_member_set(L)`` is equivalent to
        ``L <= vertex_labels(v)`` — one C membership test instead of a
        frozenset subset comparison per probe.
        """
        labels = frozenset(labels)
        cached = self._labels_set_cache.get(labels)
        if cached is None:
            if labels:
                sets = [self.label_member_set(label) for label in labels]
                cached = frozenset.intersection(*sets)
            else:
                cached = frozenset(range(self._n))
            self._labels_set_cache[labels] = cached
        return cached

    # ------------------------------------------------------------------
    # adjacency bitsets (the exact matcher's intersection kernel)
    # ------------------------------------------------------------------
    def _segment_bits(self, direction: _Direction, v: int, label: int) -> int:
        row = direction.patch_row(v)
        if row is not None:
            ba = bytearray((self._n + 7) >> 3)
            for t in row.get(label, ()):
                ba[t >> 3] |= 1 << (t & 7)
            return int.from_bytes(ba, "little")
        start, stop = direction.segment(v, label)
        if stop - start >= _kops.SMALL_INPUT * 2:
            view = self._targets_view(direction)
            if view is not None:
                seg = view[start:stop]
                return _kops.pack_bits(seg, self._n, values_arr=seg)
        targets = direction.targets
        ba = bytearray((self._n + 7) >> 3)
        for i in range(start, stop):
            t = targets[i]
            ba[t >> 3] |= 1 << (t & 7)
        return int.from_bytes(ba, "little")

    def out_neighbor_bits(self, v: int, label: int) -> int:
        """``out_neighbors(v, label)`` as an int bitset, cached forever.

        Bit ``t`` is set iff ``(v, t, label)`` is an edge.  Python's big
        ints make ``a & b`` a C-speed word-wise intersection and
        ``bit_count()`` a C-speed popcount, which is what turns the
        matcher's multi-constraint candidate filtering (and the leaf
        product's candidate *counts*) into a handful of opcodes.
        """
        key = (v, label)
        cached = self._out_bits_cache.get(key)
        if cached is None:
            cached = self._segment_bits(self._fwd, v, label)
            self._out_bits_cache[key] = cached
        return cached

    def in_neighbor_bits(self, v: int, label: int) -> int:
        """``in_neighbors(v, label)`` as an int bitset, cached forever."""
        key = (v, label)
        cached = self._in_bits_cache.get(key)
        if cached is None:
            cached = self._segment_bits(self._rev, v, label)
            self._in_bits_cache[key] = cached
        return cached

    def out_neighbors_labeled(self, v: int, label: int, vlabels) -> Tuple[int, ...]:
        """``out_neighbors(v, label)`` restricted to vertices carrying all
        of ``vlabels``, cached forever.

        Filtered adjacency is a pure property of the (immutable) graph,
        so caching it here — instead of inside each matcher instance —
        lets every counter over this graph share one filtered list per
        ``(v, edge label, vertex-label set)``, which is the exact
        matcher's dominant miss cost across a multi-query workload.
        Order matches the unfiltered view, preserving the determinism
        contract.
        """
        key = (True, v, label, vlabels)
        cached = self._filtered_cache.get(key)
        if cached is None:
            cached = self._filtered(self._fwd, v, label, vlabels)
            self._filtered_cache[key] = cached
        return cached

    def _filtered(
        self, direction: _Direction, v: int, label: int, vlabels
    ) -> Tuple[int, ...]:
        """One direction's label-constrained candidate list (kernel path)."""
        member = self.labels_member_set(vlabels)
        neighbors = direction.neighbors(v, label)
        values_arr = None
        if (
            len(neighbors) >= _kops.SMALL_INPUT
            and direction.patch_row(v) is None
        ):
            view = self._targets_view(direction)
            if view is not None:
                start, stop = direction.segment(v, label)
                values_arr = view[start:stop]
        return tuple(
            _kops.filter_members(
                neighbors,
                member,
                _kviews.member_array(self, vlabels),
                values_arr,
            )
        )

    def in_neighbors_labeled(self, v: int, label: int, vlabels) -> Tuple[int, ...]:
        """``in_neighbors(v, label)`` restricted to ``vlabels`` carriers."""
        key = (False, v, label, vlabels)
        cached = self._filtered_cache.get(key)
        if cached is None:
            cached = self._filtered(self._rev, v, label, vlabels)
            self._filtered_cache[key] = cached
        return cached

    def labels_member_bits(self, labels) -> int:
        """``labels_member_set(labels)`` as an int bitset, cached forever."""
        labels = frozenset(labels)
        cached = self._labels_bits_cache.get(labels)
        if cached is None:
            members = self.labels_member_set(labels)
            cached = _kops.pack_bits(
                members,
                self._n,
                values_arr=_kviews.member_array(self, labels),
            )
            self._labels_bits_cache[labels] = cached
        return cached

    def edge_pairs(self, label: int) -> Tuple[Tuple[int, int], ...]:
        """``edges_with_label`` materialized as a cached tuple of pairs.

        Same pairs in the same order as the live view; hot loops that
        repeatedly index into the pair list (relation sampling) skip the
        per-access tuple construction of :class:`PairArrayView`.
        """
        cached = self._edge_pairs_cache.get(label)
        if cached is None:
            src = self._esrc.get(label)
            if src is None:
                cached = ()
            else:
                views = _kviews.pair_arrays(self, label)
                if views is not None:
                    # boxing through ndarray.tolist() is one C pass per
                    # column instead of per-element buffer indexing
                    cached = tuple(zip(views[0].tolist(), views[1].tolist()))
                else:
                    cached = tuple(zip(src, self._edst[label]))
            self._edge_pairs_cache[label] = cached
        return cached

    # ------------------------------------------------------------------
    # label indexes
    # ------------------------------------------------------------------
    def vertices_with_label(self, label: int) -> IntArrayView:
        data = self._vindex_arrays.get(label)
        if data is None:
            return _EMPTY_VIEW
        return IntArrayView(data)

    def vertices_with_labels(self, labels: FrozenSet[int]):
        if not labels:
            return self.vertices()
        ordered = sorted(
            ((self.vertices_with_label(label), label) for label in labels),
            key=lambda entry: len(entry[0]),
        )
        smallest = ordered[0][0]
        member_sets = [self.label_member_set(label) for _, label in ordered[1:]]
        if not member_sets:
            return list(smallest)
        member_arrs = None
        if _kernels.accelerated():
            member_arrs = [
                _kviews.member_array(self, frozenset((label,)))
                for _, label in ordered[1:]
            ]
        return _kops.filter_members_multi(smallest, member_sets, member_arrs)

    def edges_with_label(self, label: int) -> PairArrayView:
        src = self._esrc.get(label)
        if src is None:
            return _EMPTY_PAIRS
        return PairArrayView(src, self._edst[label])

    def edge_label_count(self, label: int) -> int:
        src = self._esrc.get(label)
        return 0 if src is None else len(src)

    def edge_labels(self) -> List[int]:
        return list(self._elabel_order)

    def all_vertex_labels(self) -> List[int]:
        return list(self._vlabel_order)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> GraphStats:
        n = self._n
        max_degree = max((self.degree(v) for v in range(n)), default=0)
        avg_degree = (2.0 * self._m / n) if n else 0.0
        predicate_counts = [len(self._esrc[l]) for l in self._elabel_order]
        nontrivial = [l for l in self._elabel_order if l != UNLABELED]
        return GraphStats(
            num_graphs=self.num_graphs,
            num_vertices=n,
            num_edges=self._m,
            avg_degree=avg_degree,
            max_degree=max_degree,
            num_vertex_labels=len(self._vlabel_order),
            num_edge_labels=len(self._elabel_order) if nontrivial else 0,
            max_triples_per_predicate=max(predicate_counts, default=0),
            min_triples_per_predicate=min(predicate_counts, default=0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CompactGraph(|V|={self._n}, |E|={self._m}, "
            f"vlabels={len(self._vlabel_order)}, "
            f"elabels={len(self._elabel_order)})"
        )

    # ------------------------------------------------------------------
    # incremental re-seal (the O(delta) alternative to thaw + seal)
    # ------------------------------------------------------------------
    @property
    def is_patched(self) -> bool:
        """True when this graph overlays delta patches on shared arenas."""
        return self._patched

    def thaw(self) -> Graph:
        """Reconstruct the mutable dict-backed graph, orders preserved.

        The exact inverse of sealing: every adjacency dict, index list
        and label order comes back in the iteration order the accessors
        expose, so ``thaw().seal()`` round-trips to an equivalent sealed
        graph (same elements, same orders, same generation).  Cost is a
        full O(n + m) rebuild — ``reseal`` uses it only past the patch
        budget, and streaming callers only to branch a mutable copy.
        """
        graph = Graph(self.num_graphs)
        graph._vlabels = [self.vertex_labels(v) for v in range(self._n)]
        graph._out = [
            {label: list(view) for label, view in self.out_label_map(v).items()}
            for v in range(self._n)
        ]
        graph._in = [
            {label: list(view) for label, view in self.in_label_map(v).items()}
            for v in range(self._n)
        ]
        graph._vindex = {
            label: list(self.vertices_with_label(label))
            for label in self._vlabel_order
        }
        graph._eindex = {
            label: list(self.edges_with_label(label))
            for label in self._elabel_order
        }
        graph._edge_set = {
            (src, dst, label)
            for label, pairs in graph._eindex.items()
            for src, dst in pairs
        }
        graph._num_edges = self._m
        graph.generation = self.generation
        return graph

    def compacted(self) -> "CompactGraph":
        """Rebuild a patched graph into pristine CSR arenas (same content).

        A no-op on unpatched graphs.  The rebuilt graph keeps this
        graph's fingerprint — content is identical, so summary-cache
        identity must not change.
        """
        if not self._patched:
            return self
        new = CompactGraph(self.thaw())
        new._fingerprint = self._fingerprint
        new.last_reseal = {"mode": "compacted", "rows": 0}
        return new

    def _lineage_fingerprint(self, deltas) -> Optional[str]:
        """Fingerprint of ``self`` advanced by ``deltas`` — O(delta).

        Derived from the parent fingerprint plus the delta payloads, so
        stamping it never costs a content walk; None when the parent was
        never fingerprinted (the summary cache will content-hash the
        patched graph lazily, which also works).
        """
        if self._fingerprint is None:
            return None
        from hashlib import blake2b

        digest = blake2b(digest_size=16)
        digest.update(b"reseal:")
        digest.update(str(self._fingerprint).encode())
        for delta in deltas:
            digest.update(repr(delta.to_payload()).encode())
        return digest.hexdigest()

    def reseal(self, deltas, max_patch_fraction: float = 0.25) -> "CompactGraph":
        """A new sealed graph = this graph advanced by a delta slice.

        The fast path never rebuilds the CSR arenas: vertices the slice
        touches get full copy-on-write adjacency rows (the arenas may be
        read-only shared-memory pages, so in-place slack slots are off
        the table), per-label index arrays are copied only for touched
        labels, and everything else keeps aliasing the base buffers.
        Cost is O(delta x degree + touched labels), independent of graph
        size, and query-visible behavior is bit-identical to sealing the
        mutated graph from scratch (``tests/test_incremental.py``).

        Patches accumulate across chained reseals; once touched rows
        exceed ``max_patch_fraction`` of all rows, falls back to a full
        ``thaw + apply + seal`` rebuild (``last_reseal["mode"]`` says
        which path ran).  ``self`` is unchanged and stays queryable at
        its own generation; the result is ``len(deltas)`` generations
        ahead and carries an O(delta) lineage fingerprint.

        Raises :class:`~repro.graph.delta.DeltaError` (before any state
        is visible anywhere) when the slice does not apply cleanly.
        """
        deltas = list(deltas)
        if not deltas:
            return self
        touched = set()
        for delta in deltas:
            if delta.op in (OP_ADD_EDGE, OP_REMOVE_EDGE):
                touched.add(delta.src)
                touched.add(delta.dst)
        carried = (
            len(self._fwd.rows) + len(self._rev.rows)
            if isinstance(self._fwd, _PatchedDirection)
            else 0
        )
        if carried + 2 * len(touched) > max_patch_fraction * max(2 * self._n, 1):
            graph = self.thaw()
            graph.apply(deltas)
            new = CompactGraph(graph)
            new._fingerprint = self._lineage_fingerprint(deltas)
            new.last_reseal = {"mode": "compacted", "rows": len(touched)}
            return new
        return self._reseal_patch(deltas)

    def _reseal_patch(self, deltas) -> "CompactGraph":
        """The copy-on-write fast path of :meth:`reseal`."""
        # -- working state, branched copy-on-write off the current graph --
        if isinstance(self._fwd, _PatchedDirection):
            fwd_rows = dict(self._fwd.rows)
            rev_rows = dict(self._rev.rows)
            fwd_base_n = self._fwd.base_n
            rev_base_n = self._rev.base_n
        else:
            fwd_rows = {}
            rev_rows = {}
            fwd_base_n = rev_base_n = self._n
        edited_fwd: set = set()
        edited_rev: set = set()

        if isinstance(self._vlabels, _OverlayVLabels):
            vl_base = self._vlabels.base
            vl_over = dict(self._vlabels.over)
            vl_extra = list(self._vlabels.extra)
        else:
            vl_base = self._vlabels
            vl_over = {}
            vl_extra = []
        base_vl_n = len(vl_base)

        def _split(mapping):
            if isinstance(mapping, _OverlayMap):
                return mapping._base, dict(mapping._over)
            return mapping, {}

        vindex_base, vindex_over = _split(self._vindex_arrays)
        esrc_base, esrc_over = _split(self._esrc)
        edst_base, edst_over = _split(self._edst)
        # labels whose override arrays are private to THIS reseal; a
        # parent's override must be copied before the first mutation so
        # the parent generation stays queryable
        edited_vlabels: set = set()
        edited_elabels: set = set()
        vlabel_order = list(self._vlabel_order)
        elabel_order = list(self._elabel_order)
        n = self._n
        m = self._m

        def edit_row(rows, edited, direction, base_n, v):
            if v in edited:
                return rows[v]
            row = rows.get(v)
            if row is not None:
                row = {label: list(t) for label, t in row.items()}
            elif v >= base_n:
                row = {}
            else:
                row = {
                    label: list(view)
                    for label, view in direction.label_map(v).items()
                }
            rows[v] = row
            edited.add(v)
            return row

        def edit_vindex(label):
            if label not in edited_vlabels:
                current = vindex_over.get(label)
                if current is None:
                    current = vindex_base.get(label)
                vindex_over[label] = (
                    array("q", current) if current is not None else array("q")
                )
                edited_vlabels.add(label)
            return vindex_over[label]

        def edit_pairs(label):
            if label not in edited_elabels:
                src = esrc_over.get(label)
                dst = edst_over.get(label)
                if src is None and label in elabel_order:
                    src = esrc_base.get(label)
                    dst = edst_base.get(label)
                esrc_over[label] = (
                    array("q", src) if src is not None else array("q")
                )
                edst_over[label] = (
                    array("q", dst) if dst is not None else array("q")
                )
                edited_elabels.add(label)
            return esrc_over[label], edst_over[label]

        for delta in deltas:
            op = delta.op
            if op == OP_ADD_EDGE:
                s, d, label = delta.src, delta.dst, delta.label
                if not (0 <= s < n and 0 <= d < n):
                    raise DeltaError(
                        f"add_edge({s}, {d}, {label}): vertex out of range"
                    )
                frow = edit_row(fwd_rows, edited_fwd, self._fwd, fwd_base_n, s)
                dsts = frow.get(label)
                if dsts is None:
                    frow[label] = dsts = []
                elif d in dsts:
                    raise DeltaError(
                        f"add_edge({s}, {d}, {label}): edge already present"
                    )
                dsts.append(d)
                rrow = edit_row(rev_rows, edited_rev, self._rev, rev_base_n, d)
                srcs = rrow.get(label)
                if srcs is None:
                    rrow[label] = srcs = []
                srcs.append(s)
                src_arr, dst_arr = edit_pairs(label)
                src_arr.append(s)
                dst_arr.append(d)
                if label not in elabel_order:
                    elabel_order.append(label)
                m += 1
            elif op == OP_REMOVE_EDGE:
                s, d, label = delta.src, delta.dst, delta.label
                frow = (
                    edit_row(fwd_rows, edited_fwd, self._fwd, fwd_base_n, s)
                    if 0 <= s < n
                    else None
                )
                dsts = frow.get(label) if frow is not None else None
                if dsts is None or d not in dsts:
                    raise DeltaError(
                        f"remove_edge({s}, {d}, {label}): no such edge"
                    )
                dsts.remove(d)
                if not dsts:
                    del frow[label]
                rrow = edit_row(rev_rows, edited_rev, self._rev, rev_base_n, d)
                srcs = rrow[label]
                srcs.remove(s)
                if not srcs:
                    del rrow[label]
                src_arr, dst_arr = edit_pairs(label)
                for i in range(len(src_arr)):
                    if src_arr[i] == s and dst_arr[i] == d:
                        del src_arr[i]
                        del dst_arr[i]
                        break
                if not src_arr:
                    elabel_order.remove(label)
                m -= 1
            elif op == OP_ADD_VERTEX:
                if delta.src >= 0 and delta.src != n:
                    raise DeltaError(
                        f"add_vertex assigned id {n}, journal recorded "
                        f"{delta.src} (slice from a different base?)"
                    )
                labels = frozenset(delta.labels)
                vl_extra.append(labels)
                for label in labels:
                    edit_vindex(label).append(n)
                    if label not in vlabel_order:
                        vlabel_order.append(label)
                n += 1
            else:  # OP_ADD_VERTEX_LABEL
                v, label = delta.src, delta.label
                if not 0 <= v < n:
                    raise DeltaError(
                        f"add_vertex_label({v}, {label}): no such vertex"
                    )
                if v >= base_vl_n:
                    current = vl_extra[v - base_vl_n]
                else:
                    current = vl_over.get(v)
                    if current is None:
                        current = vl_base[v]
                if label in current:
                    raise DeltaError(
                        f"add_vertex_label({v}, {label}): label already "
                        f"attached"
                    )
                updated = current | {label}
                if v >= base_vl_n:
                    vl_extra[v - base_vl_n] = updated
                else:
                    vl_over[v] = updated
                edit_vindex(label).append(v)
                if label not in vlabel_order:
                    vlabel_order.append(label)

        # -- freeze and assemble the new sealed graph --
        for v in edited_fwd:
            fwd_rows[v] = {lbl: tuple(t) for lbl, t in fwd_rows[v].items()}
        for v in edited_rev:
            rev_rows[v] = {lbl: tuple(t) for lbl, t in rev_rows[v].items()}

        new = CompactGraph.__new__(CompactGraph)
        new.num_graphs = self.num_graphs
        new._n = n
        new._m = m
        new._vlabels = (
            _OverlayVLabels(vl_base, vl_over, vl_extra)
            if (vl_over or vl_extra)
            else self._vlabels
        )
        new._fwd = _PatchedDirection(self._fwd, fwd_rows, fwd_base_n)
        new._rev = _PatchedDirection(self._rev, rev_rows, rev_base_n)
        new._vlabel_order = tuple(vlabel_order)
        new._elabel_order = tuple(elabel_order)
        new._vindex_arrays = _OverlayMap(
            vindex_base, vindex_over, lambda: new._vlabel_order
        )
        new._esrc = _OverlayMap(esrc_base, esrc_over, lambda: new._elabel_order)
        new._edst = _OverlayMap(edst_base, edst_over, lambda: new._elabel_order)
        new._out_set_cache = {}
        new._in_set_cache = {}
        new._vlabel_set_cache = {}
        new._vlabels_members_cache = {}
        new._labels_set_cache = {}
        new._edge_pairs_cache = {}
        new._out_bits_cache = {}
        new._in_bits_cache = {}
        new._labels_bits_cache = {}
        new._filtered_cache = {}
        new.shared_cache = {}
        # keep the shared segment mapped while the overlay aliases it
        new._shm_view = self._shm_view
        new._fingerprint = self._lineage_fingerprint(deltas)
        new.generation = self.generation + len(deltas)
        new._patched = True
        new.last_reseal = {
            "mode": "patched",
            "rows": len(edited_fwd) + len(edited_rev),
            "carried_rows": len(fwd_rows) + len(rev_rows),
        }
        return new

    # ------------------------------------------------------------------
    # shared memory (zero-copy publication to worker processes)
    # ------------------------------------------------------------------
    def to_shm(self):
        """Publish every array buffer into one shared-memory segment.

        Returns ``(handle, ref)``: the creator-side
        :class:`~repro.shm.SealedArena` handle (``handle.release()``
        unlinks the segment; orderly exits and orphan reaping back it up)
        and a tiny picklable :class:`~repro.shm.ShmRef` that any process
        on this host turns back into a graph with :meth:`from_shm` —
        attaching maps the same physical pages read-only instead of
        copying them, so attach cost is independent of graph size.
        """
        from ..shm import ShmArena, ShmRef

        if self._patched:
            # a patched graph aliases buffers it does not own (possibly
            # pages of the segment being replaced); publish a compacted
            # rebuild so the new segment is self-contained
            return self.compacted().to_shm()
        arena = ShmArena()
        for tag, direction in (("f", self._fwd), ("r", self._rev)):
            arena.add_ints((tag, "lab_off"), direction.lab_off)
            arena.add_ints((tag, "lab"), direction.lab)
            arena.add_ints((tag, "seg_off"), direction.seg_off)
            arena.add_ints((tag, "targets"), direction.targets)
            arena.add_ints((tag, "sorted"), direction.sorted_targets)
        for label in self._vlabel_order:
            arena.add_ints(("vl", label), self._vindex_arrays[label])
        for label in self._elabel_order:
            arena.add_ints(("es", label), self._esrc[label])
            arena.add_ints(("ed", label), self._edst[label])
        # vertex label sets, dictionary-encoded: a per-vertex index into
        # the (small) table of unique sets, decoded lazily on attach
        table: List[Tuple[int, ...]] = []
        index_of: Dict[FrozenSet[int], int] = {}
        set_index = array("q")
        for labels in self._vlabels:
            i = index_of.get(labels)
            if i is None:
                i = index_of[labels] = len(table)
                table.append(tuple(sorted(labels)))
            set_index.append(i)
        arena.add_ints(("v", "sets"), set_index)
        handle, manifest = arena.seal()
        manifest["graph"] = {
            "n": self._n,
            "m": self._m,
            "num_graphs": self.num_graphs,
            "vlabel_order": self._vlabel_order,
            "elabel_order": self._elabel_order,
            "vsets": tuple(table),
            "fingerprint": self._fingerprint,
            "generation": self.generation,
        }
        return handle, ShmRef("graph", manifest)

    @classmethod
    def from_shm(cls, ref) -> "CompactGraph":
        """Attach a graph published by :meth:`to_shm` — zero copies.

        Every array field becomes a read-only ``memoryview`` cast over
        the shared segment; all accessors work identically (and return
        identical elements in identical order), so estimates and matcher
        counts are bit-identical to the sealed original.  Per-process
        memoization caches start empty, exactly as after unpickling.
        """
        from ..shm import ArenaView, ShmRef

        manifest = ref.manifest if isinstance(ref, ShmRef) else ref
        view = ArenaView(manifest)
        meta = manifest["graph"]
        self = cls.__new__(cls)
        self.num_graphs = meta["num_graphs"]
        self._n = meta["n"]
        self._m = meta["m"]
        self._vlabels = _SharedVLabels(view.ints(("v", "sets")), meta["vsets"])
        self._fwd = _Direction._from_buffers(
            view.ints(("f", "lab_off")), view.ints(("f", "lab")),
            view.ints(("f", "seg_off")), view.ints(("f", "targets")),
            view.ints(("f", "sorted")),
        )
        self._rev = _Direction._from_buffers(
            view.ints(("r", "lab_off")), view.ints(("r", "lab")),
            view.ints(("r", "seg_off")), view.ints(("r", "targets")),
            view.ints(("r", "sorted")),
        )
        self._vlabel_order = tuple(meta["vlabel_order"])
        self._vindex_arrays = _LazyShmMap(view, "vl", self._vlabel_order)
        self._elabel_order = tuple(meta["elabel_order"])
        self._esrc = _LazyShmMap(view, "es", self._elabel_order)
        self._edst = _LazyShmMap(view, "ed", self._elabel_order)
        self._out_set_cache = {}
        self._in_set_cache = {}
        self._vlabel_set_cache = {}
        self._vlabels_members_cache = {}
        self._labels_set_cache = {}
        self._edge_pairs_cache = {}
        self._out_bits_cache = {}
        self._in_bits_cache = {}
        self._labels_bits_cache = {}
        self._filtered_cache = {}
        self.shared_cache = {}
        self._fingerprint = meta["fingerprint"]
        self.generation = meta.get("generation", 0)
        self._shm_view = view
        return self

    # ------------------------------------------------------------------
    # pickling (the memoization caches are per-process; drop them)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = {
            k: v
            for k, v in self.__dict__.items()
            if k
            not in (
                "_out_set_cache",
                "_in_set_cache",
                "_vlabel_set_cache",
                "_vlabels_members_cache",
                "_labels_set_cache",
                "_edge_pairs_cache",
                "_out_bits_cache",
                "_in_bits_cache",
                "_labels_bits_cache",
                "_filtered_cache",
                "shared_cache",
                "_shm_view",
            )
        }
        # an shm-attached graph holds memoryviews into the segment, which
        # cannot cross a pickle boundary: materialize private copies (the
        # _Direction fields handle their own slots the same way)
        if not isinstance(state["_vlabels"], list):
            state["_vlabels"] = list(state["_vlabels"])
        for field in ("_vindex_arrays", "_esrc", "_edst"):
            mapping = state[field]
            if any(isinstance(v, memoryview) for v in mapping.values()):
                state[field] = {
                    label: array("q", data) if isinstance(data, memoryview)
                    else data
                    for label, data in mapping.items()
                }
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._out_set_cache = {}
        self._in_set_cache = {}
        self._vlabel_set_cache = {}
        self._vlabels_members_cache = {}
        self._labels_set_cache = {}
        self._edge_pairs_cache = {}
        self._out_bits_cache = {}
        self._in_bits_cache = {}
        self._labels_bits_cache = {}
        self._filtered_cache = {}
        self.shared_cache = {}
        self._shm_view = None

"""Directed labeled multigraph used as the data substrate for all estimators.

The paper represents every dataset (RDF, property graphs, undirected and
unlabeled graphs) as a directed labeled graph ``G = (V, E, L)``:

* undirected edges become two directed edges,
* unlabeled edges receive label ``0``,
* RDF triples ``(s, p, o)`` become edges ``s --p--> o``.

Vertices may carry a *set* of labels (RDF types / molecule atom types);
edges carry exactly one label.  The class keeps per-vertex adjacency grouped
by edge label plus global label indexes, which is what the estimators need:
``C-SET`` scans vertices, ``WanderJoin`` walks edges by label, ``BoundSketch``
scans relations (= all edges of one label), and the exact matcher filters
candidates by vertex label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

Edge = Tuple[int, int, int]

#: Edge label used for unlabeled graphs (paper, Section 2).
UNLABELED = 0


@dataclass
class GraphStats:
    """Dataset statistics in the shape of Table 2 of the paper."""

    num_graphs: int
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    num_vertex_labels: int
    num_edge_labels: int
    max_triples_per_predicate: int
    min_triples_per_predicate: int

    def as_row(self) -> Dict[str, object]:
        """Return the statistics as an ordered mapping for table printing."""
        return {
            "# of graphs": self.num_graphs,
            "# of vertices": self.num_vertices,
            "# of edges": self.num_edges,
            "Avg. degree": round(self.avg_degree, 2),
            "Max. degree": self.max_degree,
            "# of distinct v. labels": self.num_vertex_labels,
            "# of distinct e. labels": self.num_edge_labels,
            "Max triples per pred.": self.max_triples_per_predicate,
            "Min triples per pred.": self.min_triples_per_predicate,
        }


class Graph:
    """A directed labeled multigraph with label indexes.

    Vertices are dense integer ids assigned by :meth:`add_vertex`.  Edges are
    ``(src, dst, label)`` triples; parallel edges with distinct labels are
    allowed, duplicate ``(src, dst, label)`` triples are ignored (set
    semantics, matching RDF triple stores).
    """

    #: True only on sealed (immutable) graphs; downstream fast paths key on it.
    sealed = False

    def __init__(self, num_graphs: int = 1) -> None:
        self._vlabels: List[FrozenSet[int]] = []
        # adjacency grouped by edge label: _out[v][label] -> [dst, ...]
        self._out: List[Dict[int, List[int]]] = []
        self._in: List[Dict[int, List[int]]] = []
        self._edge_set: set = set()
        self._vindex: Dict[int, List[int]] = {}
        self._eindex: Dict[int, List[Tuple[int, int]]] = {}
        self._num_edges = 0
        # per-label snapshot caches backing the tuple-returning index
        # accessors; invalidated label-by-label on mutation
        self._vwl_cache: Dict[int, Tuple[int, ...]] = {}
        self._ewl_cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        self._vset_cache: Dict[int, FrozenSet[int]] = {}
        #: monotonically increasing mutation count; every effective
        #: mutation (edge add/remove, vertex add, label attach) bumps it
        self.generation = 0
        #: mutation journal (None until :meth:`enable_journal`); entries
        #: are :class:`~repro.graph.delta.Delta` records, one per bump of
        #: ``generation`` past ``_journal_base``
        self._journal = None
        self._journal_base = 0
        #: number of member graphs when this graph is a disjoint union of a
        #: collection (the AIDS dataset); embeddings aggregate across members.
        self.num_graphs = num_graphs

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, labels: Iterable[int] = ()) -> int:
        """Add a vertex with the given label set and return its id."""
        vid = len(self._vlabels)
        labels = frozenset(labels)
        self._vlabels.append(labels)
        self._out.append({})
        self._in.append({})
        for label in labels:
            self._vindex.setdefault(label, []).append(vid)
            self._vwl_cache.pop(label, None)
            self._vset_cache.pop(label, None)
        self.generation += 1
        if self._journal is not None:
            from .delta import OP_ADD_VERTEX, Delta

            self._journal.append(
                Delta(op=OP_ADD_VERTEX, src=vid, labels=tuple(labels))
            )
        return vid

    def add_vertex_label(self, v: int, label: int) -> None:
        """Attach an additional label to an existing vertex."""
        if label in self._vlabels[v]:
            return
        self._vlabels[v] = self._vlabels[v] | {label}
        self._vindex.setdefault(label, []).append(v)
        self._vwl_cache.pop(label, None)
        self._vset_cache.pop(label, None)
        self.generation += 1
        if self._journal is not None:
            from .delta import OP_ADD_VERTEX_LABEL, Delta

            self._journal.append(
                Delta(op=OP_ADD_VERTEX_LABEL, src=v, label=label)
            )

    def add_edge(self, src: int, dst: int, label: int = UNLABELED) -> bool:
        """Add a directed labeled edge; return False if it already existed."""
        key = (src, dst, label)
        if key in self._edge_set:
            return False
        self._edge_set.add(key)
        self._out[src].setdefault(label, []).append(dst)
        self._in[dst].setdefault(label, []).append(src)
        self._eindex.setdefault(label, []).append((src, dst))
        self._ewl_cache.pop(label, None)
        self._num_edges += 1
        self.generation += 1
        if self._journal is not None:
            from .delta import OP_ADD_EDGE, Delta

            self._journal.append(
                Delta(op=OP_ADD_EDGE, src=src, dst=dst, label=label)
            )
        return True

    def remove_edge(self, src: int, dst: int, label: int = UNLABELED) -> bool:
        """Remove a directed labeled edge; return False if it was absent.

        Exactly undoes :meth:`add_edge`, including the dict-shape
        effects the sealed substrate's order contract keys on: an
        adjacency or index list emptied by the removal has its *key*
        deleted too, so a later re-add appends the label at the end of
        the label map again (first-insertion order, like a fresh graph).
        """
        key = (src, dst, label)
        if key not in self._edge_set:
            return False
        self._edge_set.discard(key)
        outs = self._out[src]
        outs[label].remove(dst)
        if not outs[label]:
            del outs[label]
        ins = self._in[dst]
        ins[label].remove(src)
        if not ins[label]:
            del ins[label]
        pairs = self._eindex[label]
        pairs.remove((src, dst))
        if not pairs:
            del self._eindex[label]
        self._ewl_cache.pop(label, None)
        self._num_edges -= 1
        self.generation += 1
        if self._journal is not None:
            from .delta import OP_REMOVE_EDGE, Delta

            self._journal.append(
                Delta(op=OP_REMOVE_EDGE, src=src, dst=dst, label=label)
            )
        return True

    # ------------------------------------------------------------------
    # mutation journal
    # ------------------------------------------------------------------
    def enable_journal(self) -> "Graph":
        """Start recording mutations as typed delta records.

        Off by default so bulk loaders don't pay one record per edge;
        streaming callers enable it once after the initial load.  The
        journal records every mutation from this point on, indexed by
        generation: ``deltas_since(g)`` is the exact slice that advanced
        the graph from generation ``g`` to the present.
        """
        if self._journal is None:
            self._journal = []
            self._journal_base = self.generation
        return self

    @property
    def journal(self):
        """The recorded delta records (a tuple; empty until enabled)."""
        return tuple(self._journal) if self._journal is not None else ()

    def deltas_since(self, generation: int):
        """Journal slice that advanced ``generation`` -> ``self.generation``."""
        if self._journal is None:
            raise ValueError("journaling is not enabled on this graph")
        if generation < self._journal_base or generation > self.generation:
            raise ValueError(
                f"generation {generation} outside journal coverage "
                f"[{self._journal_base}, {self.generation}]"
            )
        return list(self._journal[generation - self._journal_base:])

    def apply(self, deltas) -> int:
        """Apply a batch of delta records; returns how many were applied.

        Every record must be effective (the contract journals guarantee);
        a record that does not apply cleanly raises
        :class:`~repro.graph.delta.DeltaError` — by then earlier records
        of the batch *have* been applied, so callers treating batches as
        transactions must validate first or work on a copy.
        """
        applied = 0
        for delta in deltas:
            delta.apply_to(self)
            applied += 1
        return applied

    def add_undirected_edge(self, u: int, v: int, label: int = UNLABELED) -> None:
        """Add both directions of an undirected edge (paper, Section 2)."""
        self.add_edge(u, v, label)
        self.add_edge(v, u, label)

    @classmethod
    def from_edges(
        cls,
        edges: Sequence[Edge],
        vertex_labels: Optional[Dict[int, Iterable[int]]] = None,
        num_vertices: Optional[int] = None,
    ) -> "Graph":
        """Build a graph from an edge list and an optional vertex label map."""
        vertex_labels = vertex_labels or {}
        if num_vertices is None:
            num_vertices = 0
            for src, dst, _ in edges:
                num_vertices = max(num_vertices, src + 1, dst + 1)
            for vid in vertex_labels:
                num_vertices = max(num_vertices, vid + 1)
        graph = cls()
        for vid in range(num_vertices):
            graph.add_vertex(vertex_labels.get(vid, ()))
        for src, dst, label in edges:
            graph.add_edge(src, dst, label)
        return graph

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vlabels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        """Graph size |G| is the number of edges (paper, Section 2)."""
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._vlabels))

    def vertex_labels(self, v: int) -> FrozenSet[int]:
        return self._vlabels[v]

    def edges(self) -> Iterator[Edge]:
        for label, pairs in self._eindex.items():
            for src, dst in pairs:
                yield (src, dst, label)

    def has_edge(self, src: int, dst: int, label: int) -> bool:
        return (src, dst, label) in self._edge_set

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int, label: Optional[int] = None) -> List[int]:
        """Destinations of out-edges of ``v`` (optionally of one label)."""
        if label is None:
            result: List[int] = []
            for dsts in self._out[v].values():
                result.extend(dsts)
            return result
        return self._out[v].get(label, [])

    def in_neighbors(self, v: int, label: Optional[int] = None) -> List[int]:
        """Sources of in-edges of ``v`` (optionally of one label)."""
        if label is None:
            result: List[int] = []
            for srcs in self._in[v].values():
                result.extend(srcs)
            return result
        return self._in[v].get(label, [])

    def out_label_map(self, v: int) -> Dict[int, List[int]]:
        return self._out[v]

    def in_label_map(self, v: int) -> Dict[int, List[int]]:
        return self._in[v]

    def out_degree(self, v: int) -> int:
        return sum(len(dsts) for dsts in self._out[v].values())

    def in_degree(self, v: int) -> int:
        return sum(len(srcs) for srcs in self._in[v].values())

    def degree(self, v: int) -> int:
        """Total degree (in + out), used for random-walk stationary probs."""
        return self.out_degree(v) + self.in_degree(v)

    def neighborhood(self, v: int) -> set:
        """Distinct vertices adjacent to ``v`` in either direction."""
        result = set()
        for dsts in self._out[v].values():
            result.update(dsts)
        for srcs in self._in[v].values():
            result.update(srcs)
        return result

    # ------------------------------------------------------------------
    # label indexes
    # ------------------------------------------------------------------
    def vertices_with_label(self, label: int) -> Tuple[int, ...]:
        """Vertices carrying ``label``, as an immutable snapshot.

        Returns a tuple (not the live index list): callers used to be able
        to mutate the returned list and silently corrupt the index.
        """
        cached = self._vwl_cache.get(label)
        if cached is None:
            cached = tuple(self._vindex.get(label, ()))
            self._vwl_cache[label] = cached
        return cached

    def _vertex_label_set(self, label: int) -> FrozenSet[int]:
        cached = self._vset_cache.get(label)
        if cached is None:
            cached = frozenset(self._vindex.get(label, ()))
            self._vset_cache[label] = cached
        return cached

    def vertices_with_labels(self, labels: FrozenSet[int]) -> Sequence[int]:
        """Vertices carrying *all* of the given labels (empty = all).

        The empty-labels fast path returns the ``range`` of all vertices
        without materializing a list; the general path filters the
        smallest label's members against memoized frozensets of the rest
        instead of rebuilding throwaway sets on every call.
        """
        if not labels:
            return self.vertices()
        ordered = sorted(
            ((self.vertices_with_label(label), label) for label in labels),
            key=lambda entry: len(entry[0]),
        )
        smallest = ordered[0][0]
        member_sets = [self._vertex_label_set(label) for _, label in ordered[1:]]
        if not member_sets:
            return list(smallest)
        return [v for v in smallest if all(v in s for s in member_sets)]

    def edges_with_label(self, label: int) -> Tuple[Tuple[int, int], ...]:
        """Edges carrying ``label`` as ``(src, dst)`` pairs, immutable."""
        cached = self._ewl_cache.get(label)
        if cached is None:
            cached = tuple(self._eindex.get(label, ()))
            self._ewl_cache[label] = cached
        return cached

    def edge_label_count(self, label: int) -> int:
        return len(self._eindex.get(label, ()))

    def edge_labels(self) -> List[int]:
        return list(self._eindex.keys())

    def all_vertex_labels(self) -> List[int]:
        return list(self._vindex.keys())

    # ------------------------------------------------------------------
    # sealing
    # ------------------------------------------------------------------
    def seal(self) -> "Graph":
        """Freeze into a :class:`~repro.graph.compact.CompactGraph`.

        The sealed graph exposes the same accessor API (with identical
        iteration orders, so seeded estimators produce identical results)
        over CSR ``array('q')`` storage, rejects mutation, and memoizes
        derived lookup structures.  Sealing copies; ``self`` is unchanged.
        """
        from .compact import CompactGraph

        return CompactGraph(self)

    def to_shm(self):
        """Seal and publish into shared memory; see ``CompactGraph.to_shm``.

        Returns ``(handle, ref)``; sibling processes reconstruct the
        sealed graph with ``CompactGraph.from_shm(ref)`` without copying
        any adjacency data.
        """
        return self.seal().to_shm()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> GraphStats:
        """Compute the Table 2 statistics for this graph."""
        n = self.num_vertices
        max_degree = max((self.degree(v) for v in self.vertices()), default=0)
        # Table 2 reports avg degree as 2|E|/|V| (each edge touches two ends).
        avg_degree = (2.0 * self._num_edges / n) if n else 0.0
        predicate_counts = [len(pairs) for pairs in self._eindex.values()]
        nontrivial_edge_labels = [l for l in self._eindex if l != UNLABELED]
        num_edge_labels = (
            len(self._eindex) if nontrivial_edge_labels else 0
        )
        return GraphStats(
            num_graphs=self.num_graphs,
            num_vertices=n,
            num_edges=self._num_edges,
            avg_degree=avg_degree,
            max_degree=max_degree,
            num_vertex_labels=len(self._vindex),
            num_edge_labels=num_edge_labels,
            max_triples_per_predicate=max(predicate_counts, default=0),
            min_triples_per_predicate=min(predicate_counts, default=0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Graph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"vlabels={len(self._vindex)}, elabels={len(self._eindex)})"
        )

"""Typed mutation records for the incremental-graph subsystem.

A :class:`Delta` is one effective mutation of a :class:`~repro.graph.
digraph.Graph` — an edge insert/delete, a new vertex, or a vertex-label
attachment.  Graphs with journaling enabled (``graph.enable_journal()``)
append one record per successful mutation, so a *journal slice* between
two generation stamps replays the exact mutation sequence:

* ``Graph.apply(deltas)`` re-runs the slice against a mutable graph,
* ``CompactGraph.reseal(deltas)`` patches a sealed graph's CSR arenas
  in amortized O(delta) instead of resealing from scratch,
* ``Estimator.apply_deltas(graph, deltas)`` updates per-technique
  summaries in place (the optional ``update_summary`` Algorithm-1 hook).

Every consumer relies on the same contract: the slice is **contiguous**
(its first record is the mutation that produced ``base_generation + 1``)
and every record was **effective** (duplicate edge adds and no-op removes
are never journaled, so replays apply cleanly or fail loudly with
:class:`DeltaError`).  Generations are therefore pure mutation counts:
applying ``k`` deltas to a graph at generation ``g`` always yields
generation ``g + k``, on the mutable and the sealed substrate alike.

Records serialize to plain JSON lists (``to_payload`` /
``deltas_from_payload``) so the serve daemon's ``POST /swap`` delta mode
can ship a journal over HTTP without shipping arenas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..core.errors import GCareError

#: delta record kinds, in the order the journal may contain them
OP_ADD_EDGE = "add_edge"
OP_REMOVE_EDGE = "remove_edge"
OP_ADD_VERTEX = "add_vertex"
OP_ADD_VERTEX_LABEL = "add_vertex_label"

_OPS = (OP_ADD_EDGE, OP_REMOVE_EDGE, OP_ADD_VERTEX, OP_ADD_VERTEX_LABEL)


class DeltaError(GCareError):
    """A delta slice does not apply cleanly to the graph it was given.

    Raised on non-effective records (inserting an edge that already
    exists, removing one that does not), vertex-id mismatches (the slice
    was recorded against a different base), and malformed payloads from
    the wire.  Consumers treat it as a torn journal: the batch is
    rejected as a whole, nothing is partially applied to any published
    structure.
    """


@dataclass(frozen=True)
class Delta:
    """One effective graph mutation.

    ``src``/``dst``/``label`` describe edge ops; vertex ops use ``src``
    as the vertex id, ``labels`` as the (unordered) vertex label set of
    an ``add_vertex``, and ``label`` as the attached label of an
    ``add_vertex_label``.
    """

    op: str
    src: int = -1
    dst: int = -1
    label: int = -1
    labels: Tuple[int, ...] = ()

    def apply_to(self, graph) -> None:
        """Replay this record against a mutable graph (or raise)."""
        if self.op == OP_ADD_EDGE:
            if not graph.add_edge(self.src, self.dst, self.label):
                raise DeltaError(
                    f"add_edge({self.src}, {self.dst}, {self.label}): "
                    "edge already present"
                )
        elif self.op == OP_REMOVE_EDGE:
            if not graph.remove_edge(self.src, self.dst, self.label):
                raise DeltaError(
                    f"remove_edge({self.src}, {self.dst}, {self.label}): "
                    "no such edge"
                )
        elif self.op == OP_ADD_VERTEX:
            vid = graph.add_vertex(self.labels)
            if self.src >= 0 and vid != self.src:
                raise DeltaError(
                    f"add_vertex assigned id {vid}, journal recorded "
                    f"{self.src} (slice replayed against a different base?)"
                )
        elif self.op == OP_ADD_VERTEX_LABEL:
            if self.label in graph.vertex_labels(self.src):
                raise DeltaError(
                    f"add_vertex_label({self.src}, {self.label}): "
                    "label already attached"
                )
            graph.add_vertex_label(self.src, self.label)
        else:  # pragma: no cover - constructor validates in from_payload
            raise DeltaError(f"unknown delta op {self.op!r}")

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_payload(self) -> list:
        """JSON-serializable form: ``[op, ...operands]``."""
        if self.op == OP_ADD_VERTEX:
            return [self.op, self.src, sorted(self.labels)]
        if self.op == OP_ADD_VERTEX_LABEL:
            return [self.op, self.src, self.label]
        return [self.op, self.src, self.dst, self.label]

    @classmethod
    def from_payload(cls, payload: object) -> "Delta":
        """Parse one wire record; raises :class:`DeltaError` when torn."""
        if not isinstance(payload, (list, tuple)) or not payload:
            raise DeltaError(f"malformed delta record: {payload!r}")
        op = payload[0]
        if op not in _OPS:
            raise DeltaError(f"unknown delta op {op!r}")
        try:
            if op == OP_ADD_VERTEX:
                _, vid, labels = payload
                labels = tuple(int(label) for label in labels)
                return cls(op=op, src=int(vid), labels=labels)
            if op == OP_ADD_VERTEX_LABEL:
                _, vid, label = payload
                return cls(op=op, src=int(vid), label=int(label))
            _, src, dst, label = payload
            return cls(op=op, src=int(src), dst=int(dst), label=int(label))
        except (TypeError, ValueError) as exc:
            raise DeltaError(
                f"malformed delta record {payload!r}: {exc}"
            ) from None


def deltas_to_payload(deltas: Sequence[Delta]) -> List[list]:
    return [delta.to_payload() for delta in deltas]


def deltas_from_payload(payload: object) -> List[Delta]:
    if not isinstance(payload, (list, tuple)):
        raise DeltaError("deltas must be a JSON list of records")
    return [Delta.from_payload(record) for record in payload]


def touched_labels(
    deltas: Sequence[Delta],
) -> Tuple[Set[int], Set[int]]:
    """The ``(edge_labels, vertex_labels)`` a delta slice touches.

    This is the invalidation scope of the slice for delta-local
    consumers (see :attr:`repro.core.framework.Estimator.delta_local`):
    a cached estimate of a connected query whose label sets are disjoint
    from both is unaffected by the slice.
    """
    edge_labels: Set[int] = set()
    vertex_labels: Set[int] = set()
    for delta in deltas:
        if delta.op in (OP_ADD_EDGE, OP_REMOVE_EDGE):
            edge_labels.add(delta.label)
        elif delta.op == OP_ADD_VERTEX:
            vertex_labels.update(delta.labels)
        elif delta.op == OP_ADD_VERTEX_LABEL:
            vertex_labels.add(delta.label)
    return edge_labels, vertex_labels


class DeltaSummary:
    """Aggregate view of one delta slice, for summary maintenance.

    Incremental ``update_summary`` implementations need the *pre-slice*
    state of every touched vertex, but only hold the *post-slice* graph.
    This helper reverse-applies the slice: per-vertex out/in degree
    changes by edge label, vertex labels attached mid-slice, which
    vertices are new, and the label scopes the slice touched (the serve
    cache's per-entry invalidation fence).
    """

    def __init__(self, deltas: Sequence[Delta], new_num_vertices: int) -> None:
        self.deltas = list(deltas)
        self.added_edges: List[Tuple[int, int, int]] = []
        self.removed_edges: List[Tuple[int, int, int]] = []
        #: v -> {edge label -> net out/in degree change over the slice}
        self.out_change: Dict[int, Dict[int, int]] = {}
        self.in_change: Dict[int, Dict[int, int]] = {}
        #: v -> vertex labels attached during the slice (existing vertices)
        self.vlabels_added: Dict[int, Set[int]] = {}
        new_vertices = 0
        touched_elabels: Set[int] = set()
        touched_vlabels: Set[int] = set()
        for delta in self.deltas:
            if delta.op == OP_ADD_EDGE or delta.op == OP_REMOVE_EDGE:
                sign = 1 if delta.op == OP_ADD_EDGE else -1
                edge = (delta.src, delta.dst, delta.label)
                (self.added_edges if sign > 0 else self.removed_edges).append(
                    edge
                )
                out = self.out_change.setdefault(delta.src, {})
                out[delta.label] = out.get(delta.label, 0) + sign
                inn = self.in_change.setdefault(delta.dst, {})
                inn[delta.label] = inn.get(delta.label, 0) + sign
                touched_elabels.add(delta.label)
            elif delta.op == OP_ADD_VERTEX:
                new_vertices += 1
                touched_vlabels.update(delta.labels)
            else:  # OP_ADD_VERTEX_LABEL
                self.vlabels_added.setdefault(delta.src, set()).add(
                    delta.label
                )
                touched_vlabels.add(delta.label)
        #: first vertex id that did not exist before the slice
        self.old_num_vertices = new_num_vertices - new_vertices
        self.touched_edge_labels = frozenset(touched_elabels)
        self.touched_vertex_labels = frozenset(touched_vlabels)

    def is_new(self, v: int) -> bool:
        return v >= self.old_num_vertices

    def touched_vertices(self) -> Set[int]:
        """Every pre-existing vertex whose key state may have moved."""
        touched = set(self.out_change) | set(self.in_change)
        touched.update(self.vlabels_added)
        return {v for v in touched if v < self.old_num_vertices}

    def old_vertex_labels(self, v: int, current: frozenset) -> frozenset:
        """``v``'s vertex label set before the slice."""
        added = self.vlabels_added.get(v)
        if not added:
            return current
        return current - added

    @staticmethod
    def _rewind(current: Iterable[Tuple[int, int]], change: Dict[int, int]):
        """Label->count map before the slice, from post-slice (label, n)."""
        counts = {label: n for label, n in current}
        for label, net in change.items():
            old = counts.get(label, 0) - net
            if old > 0:
                counts[label] = old
            else:
                counts.pop(label, None)
        return counts

    def old_out_counts(self, v: int, graph) -> Dict[int, int]:
        """``v``'s out-degree per edge label before the slice."""
        return self._rewind(
            ((label, len(dsts)) for label, dsts in
             graph.out_label_map(v).items()),
            self.out_change.get(v, {}),
        )

    def old_in_counts(self, v: int, graph) -> Dict[int, int]:
        return self._rewind(
            ((label, len(srcs)) for label, srcs in
             graph.in_label_map(v).items()),
            self.in_change.get(v, {}),
        )

"""Query graph model.

A query graph is a small directed labeled pattern.  Query vertices carry a
(possibly empty) label set — an empty set is a *wildcard* that matches any
data vertex (paper, Section 2).  Query edges carry exactly one label.

The query *size* is its number of edges, matching the paper's Table 1
(sizes 3, 6, 9, 12).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

QueryEdge = Tuple[int, int, int]


class QueryGraph:
    """A directed labeled pattern graph.

    Parameters
    ----------
    vertex_labels:
        One label set per query vertex; an empty set matches any data vertex.
    edges:
        ``(u, v, label)`` triples over vertex indices.
    """

    def __init__(
        self,
        vertex_labels: Sequence[Iterable[int]],
        edges: Sequence[QueryEdge],
    ) -> None:
        self.vertex_labels: List[FrozenSet[int]] = [
            frozenset(labels) for labels in vertex_labels
        ]
        self.edges: List[QueryEdge] = list(edges)
        n = len(self.vertex_labels)
        for u, v, _ in self.edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge endpoint out of range: {(u, v)}")
        self._out: Dict[int, List[Tuple[int, int]]] = {u: [] for u in range(n)}
        self._in: Dict[int, List[Tuple[int, int]]] = {u: [] for u in range(n)}
        for u, v, label in self.edges:
            self._out[u].append((v, label))
            self._in[v].append((u, label))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertex_labels)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def __len__(self) -> int:
        """Query size = number of edges (paper, Table 1)."""
        return len(self.edges)

    def out_edges(self, u: int) -> List[Tuple[int, int]]:
        """(destination, label) pairs for out-edges of ``u``."""
        return self._out[u]

    def in_edges(self, v: int) -> List[Tuple[int, int]]:
        """(source, label) pairs for in-edges of ``v``."""
        return self._in[v]

    def out_degree(self, u: int) -> int:
        return len(self._out[u])

    def in_degree(self, u: int) -> int:
        return len(self._in[u])

    def degree(self, u: int) -> int:
        return len(self._out[u]) + len(self._in[u])

    def neighbors(self, u: int) -> Set[int]:
        """Distinct vertices adjacent to ``u`` ignoring direction."""
        result = {v for v, _ in self._out[u]}
        result.update(v for v, _ in self._in[u])
        return result

    def incident_edges(self, u: int) -> List[QueryEdge]:
        """All edges touching ``u`` (as stored, with direction)."""
        return [e for e in self.edges if e[0] == u or e[1] == u]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def undirected_adjacency(self) -> Dict[int, Set[int]]:
        adj: Dict[int, Set[int]] = {u: set() for u in range(self.num_vertices)}
        for u, v, _ in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def is_connected(self) -> bool:
        """True iff the undirected skeleton is connected (and non-empty)."""
        if self.num_vertices == 0:
            return False
        adj = self.undirected_adjacency()
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.num_vertices

    def has_cycle(self) -> bool:
        """True iff the undirected skeleton contains a cycle.

        Parallel/antiparallel edge pairs between the same vertices count as a
        cycle, consistent with viewing the query as a join query graph.
        """
        seen_pairs = set()
        for u, v, _ in self.edges:
            pair = (min(u, v), max(u, v))
            if pair in seen_pairs or u == v:
                return True
            seen_pairs.add(pair)
        # union-find over distinct undirected pairs
        parent = list(range(self.num_vertices))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in seen_pairs:
            ru, rv = find(u), find(v)
            if ru == rv:
                return True
            parent[ru] = rv
        return False

    def subquery(self, edge_indices: Iterable[int]) -> "QueryGraph":
        """Pattern induced by a subset of edges (keeps vertex numbering).

        Vertices not touched by the kept edges remain present but isolated;
        use :meth:`compact` to renumber.
        """
        kept = [self.edges[i] for i in edge_indices]
        return QueryGraph(self.vertex_labels, kept)

    def compact(self) -> Tuple["QueryGraph", Dict[int, int]]:
        """Drop isolated vertices; return the new query and old->new map."""
        used = sorted({u for u, v, _ in self.edges} | {v for _, v, _ in self.edges})
        mapping = {old: new for new, old in enumerate(used)}
        labels = [self.vertex_labels[old] for old in used]
        edges = [(mapping[u], mapping[v], l) for u, v, l in self.edges]
        return QueryGraph(labels, edges), mapping

    def relabel_vertices(self, labels: Dict[int, Iterable[int]]) -> "QueryGraph":
        """Return a copy with some vertex label sets replaced."""
        new_labels = list(self.vertex_labels)
        for vid, lab in labels.items():
            new_labels[vid] = frozenset(lab)
        return QueryGraph(new_labels, self.edges)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def canonical_key(self) -> Tuple:
        """A hashable key identifying this exact pattern (not isomorphism)."""
        return (
            tuple(tuple(sorted(ls)) for ls in self.vertex_labels),
            tuple(sorted(self.edges)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryGraph):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"QueryGraph(|V|={self.num_vertices}, |E|={self.num_edges})"

"""Cost model calibration (paper, Section 6.5).

The paper adjusts RDF-3X's cost coefficients by calibration experiments
("We perform calibration experiments to gather accurate coefficient
numbers [14]", after Gardarin et al.'s IRO-DB calibration).  This module
does the same for our executor: it micro-benchmarks each physical
operator on synthetic inputs of known size, fits per-tuple costs by least
squares over several input sizes, and returns a :class:`CostModel` whose
unit is seconds — so estimated plan costs are directly comparable to
measured execution times.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from .cost import CostModel
from .executor import PlanExecutor, Relation, _output_schema
from .optimizer import Plan

#: input sizes used for fitting (tuples)
DEFAULT_SIZES = (1000, 4000, 16000)


@dataclass
class CalibrationReport:
    """Fitted per-tuple costs plus the raw measurements behind them."""

    model: CostModel
    measurements: Dict[str, List[Tuple[int, float]]]

    def describe(self) -> str:
        lines = ["calibrated cost model (seconds per tuple):"]
        for field_name in (
            "scan_cost",
            "sort_cost",
            "merge_cost",
            "hash_build_cost",
            "hash_probe_cost",
            "output_cost",
            "index_lookup_cost",
        ):
            value = getattr(self.model, field_name)
            lines.append(f"  {field_name:18s} {value:.3e}")
        return "\n".join(lines)


def _fit_per_tuple(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope through the origin: cost = slope * size."""
    numerator = sum(size * seconds for size, seconds in points)
    denominator = sum(size * size for size, _ in points)
    if denominator == 0:
        return 0.0
    return max(numerator / denominator, 1e-12)


def _time_operation(operation: Callable[[], object], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - start)
    return best


def _chain_graph(n: int) -> Graph:
    """Two joined relations of n tuples each with unit fan-out."""
    graph = Graph()
    for _ in range(2 * n + 1):
        graph.add_vertex()
    for i in range(n):
        graph.add_edge(i, n + i, 0)
        graph.add_edge(n + i, n + i + 1, 1)
    return graph


def calibrate(
    sizes: Sequence[int] = DEFAULT_SIZES, repeats: int = 3
) -> CalibrationReport:
    """Fit per-tuple operator costs on this machine.

    The fitted model plugs straight into :class:`PlanOptimizer`; estimated
    plan costs then approximate execution seconds.
    """
    query = QueryGraph([(), (), ()], [(0, 1, 0), (1, 2, 1)])
    measurements: Dict[str, List[Tuple[int, float]]] = {
        "scan": [],
        "sort": [],
        "merge": [],
        "hash": [],
        "output": [],
    }
    for n in sizes:
        graph = _chain_graph(n)
        executor = PlanExecutor(graph)
        scan_plan = Plan(
            op="scan", edges=frozenset({0}), cost=0.0, cardinality=n,
            sorted_on=0, scan_edge=0,
        )
        executor._sorted_pairs(0, 0)  # warm the index cache
        executor._sorted_pairs(1, 0)
        scan_seconds = _time_operation(
            lambda: executor._scan(query, scan_plan), repeats
        )
        measurements["scan"].append((n, scan_seconds))

        relation = executor._scan(query, scan_plan)
        sort_plan = Plan(
            op="sort", edges=frozenset({0}), cost=0.0, cardinality=n,
            sorted_on=1, sort_attr=1, left=scan_plan,
        )
        # time only the sort body over a pre-materialized child
        rows = relation.rows

        def run_sort():
            column = relation.column(1)
            return sorted(rows, key=lambda r: r[column])

        sort_seconds = _time_operation(run_sort, repeats)
        measurements["sort"].append(
            (int(n * math.log2(n + 2.0)), sort_seconds)
        )

        right_scan = Plan(
            op="scan", edges=frozenset({1}), cost=0.0, cardinality=n,
            sorted_on=1, scan_edge=1,
        )
        right = executor._scan(query, right_scan)
        out_attrs, merge = _output_schema(relation.attrs, right.attrs)

        def run_hash():
            table: Dict[int, List] = {}
            for row in right.rows:
                table.setdefault(row[0], []).append(row)
            out = []
            for row in relation.rows:
                for other in table.get(row[1], ()):
                    out.append(merge(row, other))
            return out

        hash_seconds = _time_operation(run_hash, repeats)
        measurements["hash"].append((2 * n, hash_seconds))

        left_sorted = Relation(
            relation.attrs,
            sorted(relation.rows, key=lambda r: r[1]),
            sorted_on=1,
        )
        merge_plan = Plan(
            op="merge", edges=frozenset({0, 1}), cost=0.0, cardinality=n,
            sorted_on=1, left=sort_plan, right=right_scan, join_attrs=(1,),
        )

        def run_merge():
            executor_local = PlanExecutor(graph)
            executor_local._run = lambda q, p: (
                left_sorted if p is sort_plan else right
            )
            return executor_local._merge_join(query, merge_plan)

        merge_seconds = _time_operation(run_merge, repeats)
        measurements["merge"].append((2 * n, merge_seconds))
        measurements["output"].append((n, hash_seconds * 0.3))

    scan_cost = _fit_per_tuple(measurements["scan"])
    sort_cost = _fit_per_tuple(measurements["sort"])
    merge_cost = _fit_per_tuple(measurements["merge"])
    hash_cost = _fit_per_tuple(measurements["hash"])
    output_cost = _fit_per_tuple(measurements["output"])
    model = CostModel(
        scan_cost=scan_cost,
        sort_cost=sort_cost,
        merge_cost=merge_cost,
        hash_build_cost=hash_cost,
        hash_probe_cost=hash_cost * 0.7,
        output_cost=output_cost,
        index_lookup_cost=hash_cost * 1.5,
    )
    return CalibrationReport(model=model, measurements=dict(measurements))

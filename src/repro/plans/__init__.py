"""RDF-3X-style plan-quality study substrate (paper, Section 6.5)."""

from .calibrate import CalibrationReport, calibrate
from .cost import CostModel
from .executor import ExecutionResult, PlanExecutor
from .optimizer import (
    CardinalityOracle,
    EstimatorOracle,
    Plan,
    PlanOptimizer,
    TrueCardinalityOracle,
)
from .study import PlanQualityRecord, PlanQualityStudy, records_as_table

__all__ = [
    "CalibrationReport",
    "CardinalityOracle",
    "CostModel",
    "EstimationResult",
    "EstimatorOracle",
    "ExecutionResult",
    "Plan",
    "PlanExecutor",
    "PlanOptimizer",
    "PlanQualityRecord",
    "PlanQualityStudy",
    "TrueCardinalityOracle",
    "calibrate",
    "records_as_table",
]

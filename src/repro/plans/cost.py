"""Cost model for the RDF-3X-style optimizer (paper, Section 6.5).

RDF-3X folds CPU and disk costs into one model with calibrated
coefficients; the paper re-calibrates them for its hardware.  Our plans
execute in memory, so the coefficients below were calibrated once against
the pure-Python executor (tuples-per-second of each operator) — the role
they play is identical: making estimated plan costs comparable to real
execution times.

Operators:

* index scan — delivers one edge relation sorted on a chosen attribute;
* sort — explicit enforcer enabling merge join on an unsorted input (the
  plan-generation strategy the paper added to RDF-3X);
* merge join — linear in both inputs, requires both sorted on the join key;
* hash join — build + probe, no order requirement, loses sortedness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-tuple cost coefficients (arbitrary units ~ microseconds)."""

    scan_cost: float = 0.3
    sort_cost: float = 1.2  # multiplied by n log2(n+2)
    merge_cost: float = 0.7
    hash_build_cost: float = 1.6
    hash_probe_cost: float = 1.1
    output_cost: float = 0.25
    index_lookup_cost: float = 2.5

    def scan(self, cardinality: float) -> float:
        return self.scan_cost * cardinality

    def sort(self, cardinality: float) -> float:
        return self.sort_cost * cardinality * math.log2(cardinality + 2.0)

    def merge_join(
        self, left: float, right: float, output: float
    ) -> float:
        return self.merge_cost * (left + right) + self.output_cost * output

    def hash_join(
        self, left: float, right: float, output: float
    ) -> float:
        return (
            self.hash_build_cost * right
            + self.hash_probe_cost * left
            + self.output_cost * output
        )

    def index_nested_loop(self, left: float, output: float) -> float:
        """One index lookup per outer tuple plus per-result output cost.

        Cheap when the outer is tiny, catastrophic when a bad estimate says
        the outer is tiny but it is not — the amplification mechanism the
        paper alludes to for nested-loop plans.
        """
        return self.index_lookup_cost * left + self.output_cost * output

"""Physical plan execution over the data graph (paper, Section 6.5).

Executes the optimizer's plans for real, so plan quality differences show
up as wall-clock differences: intermediate results are materialized as
binding tuples, hash joins build/probe dict indexes, merge joins do a
linear pass over sorted runs, and sort enforcers actually sort.

Scans model RDF-3X's clustered triple indexes: the per-label edge list is
kept pre-sorted per requested order in an index cache, so delivering a
sorted scan is cheap while an explicit Sort node pays at run time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from .optimizer import Plan

Row = Tuple[int, ...]


@dataclass
class Relation:
    """A materialized intermediate result."""

    attrs: Tuple[int, ...]  # query vertices, in column order
    rows: List[Row]
    sorted_on: Optional[int] = None

    def column(self, attr: int) -> int:
        return self.attrs.index(attr)


@dataclass
class ExecutionResult:
    cardinality: int
    elapsed: float
    intermediate_tuples: int
    plan: Plan


class PlanExecutor:
    """Executes physical plans produced by :class:`PlanOptimizer`."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        # index cache: (label, position-to-sort-on) -> sorted edge list
        self._index_cache: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    def execute(self, query: QueryGraph, plan: Plan) -> ExecutionResult:
        start = time.monotonic()
        self._intermediate = 0
        relation = self._run(query, plan)
        elapsed = time.monotonic() - start
        return ExecutionResult(
            cardinality=len(relation.rows),
            elapsed=elapsed,
            intermediate_tuples=self._intermediate,
            plan=plan,
        )

    # ------------------------------------------------------------------
    def _run(self, query: QueryGraph, plan: Plan) -> Relation:
        if plan.op == "scan":
            result = self._scan(query, plan)
        elif plan.op == "sort":
            result = self._sort(query, plan)
        elif plan.op == "hash":
            result = self._hash_join(query, plan)
        elif plan.op == "merge":
            result = self._merge_join(query, plan)
        elif plan.op == "inl":
            result = self._index_nested_loop(query, plan)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown plan op {plan.op!r}")
        self._intermediate += len(result.rows)
        return result

    def _scan(self, query: QueryGraph, plan: Plan) -> Relation:
        u, v, label = query.edges[plan.scan_edge]
        sort_position = 0 if plan.sorted_on == u else 1
        pairs = self._sorted_pairs(label, sort_position)
        u_labels = query.vertex_labels[u]
        v_labels = query.vertex_labels[v]
        rows: List[Row] = []
        if u == v:  # self-loop pattern
            for s, d in pairs:
                if s == d and self._labels_ok(s, u_labels):
                    rows.append((s,))
            return Relation((u,), rows, sorted_on=plan.sorted_on)
        for s, d in pairs:
            if u_labels and not self._labels_ok(s, u_labels):
                continue
            if v_labels and not self._labels_ok(d, v_labels):
                continue
            rows.append((s, d))
        return Relation((u, v), rows, sorted_on=plan.sorted_on)

    def _sorted_pairs(self, label: int, position: int) -> List[Tuple[int, int]]:
        key = (label, position)
        cached = self._index_cache.get(key)
        if cached is None:
            pairs = list(self.graph.edges_with_label(label))
            pairs.sort(key=lambda p: p[position])
            self._index_cache[key] = pairs
            cached = pairs
        return cached

    def _labels_ok(self, vertex: int, labels) -> bool:
        return not labels or labels <= self.graph.vertex_labels(vertex)

    def _sort(self, query: QueryGraph, plan: Plan) -> Relation:
        child = self._run(query, plan.left)
        column = child.column(plan.sort_attr)
        rows = sorted(child.rows, key=lambda r: r[column])
        return Relation(child.attrs, rows, sorted_on=plan.sort_attr)

    # ------------------------------------------------------------------
    def _hash_join(self, query: QueryGraph, plan: Plan) -> Relation:
        left = self._run(query, plan.left)
        right = self._run(query, plan.right)
        join_attrs = plan.join_attrs
        left_cols = [left.column(a) for a in join_attrs]
        right_cols = [right.column(a) for a in join_attrs]
        table: Dict[Tuple[int, ...], List[Row]] = {}
        for row in right.rows:
            key = tuple(row[c] for c in right_cols)
            table.setdefault(key, []).append(row)
        out_attrs, merge = _output_schema(left.attrs, right.attrs)
        rows: List[Row] = []
        for row in left.rows:
            key = tuple(row[c] for c in left_cols)
            for other in table.get(key, ()):
                rows.append(merge(row, other))
        return Relation(out_attrs, rows, sorted_on=None)

    def _merge_join(self, query: QueryGraph, plan: Plan) -> Relation:
        left = self._run(query, plan.left)
        right = self._run(query, plan.right)
        attr = plan.join_attrs[0]
        lcol, rcol = left.column(attr), right.column(attr)
        out_attrs, merge = _output_schema(left.attrs, right.attrs)
        # residual equality conditions beyond the sort attribute
        residual = [
            (left.column(a), right.column(a))
            for a in set(left.attrs) & set(right.attrs)
            if a != attr
        ]
        rows: List[Row] = []
        i = j = 0
        lrows, rrows = left.rows, right.rows
        while i < len(lrows) and j < len(rrows):
            lval, rval = lrows[i][lcol], rrows[j][rcol]
            if lval < rval:
                i += 1
            elif lval > rval:
                j += 1
            else:
                j_end = j
                while j_end < len(rrows) and rrows[j_end][rcol] == lval:
                    j_end += 1
                i_end = i
                while i_end < len(lrows) and lrows[i_end][lcol] == lval:
                    i_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        lrow, rrow = lrows[li], rrows[rj]
                        if all(lrow[lc] == rrow[rc] for lc, rc in residual):
                            rows.append(merge(lrow, rrow))
                i, j = i_end, j_end
        return Relation(out_attrs, rows, sorted_on=attr)


    def _index_nested_loop(self, query: QueryGraph, plan: Plan) -> Relation:
        """Probe the right side's base edge index once per outer tuple."""
        left = self._run(query, plan.left)
        scan = plan.right
        assert scan is not None and scan.op == "scan"
        u, v, label = query.edges[scan.scan_edge]
        u_labels = query.vertex_labels[u]
        v_labels = query.vertex_labels[v]
        out_attrs, merge = _output_schema(left.attrs, (u, v))
        u_col = left.attrs.index(u) if u in left.attrs else None
        v_col = left.attrs.index(v) if v in left.attrs else None
        rows: List[Row] = []
        for row in left.rows:
            if u_col is not None and v_col is not None:
                src_v, dst_v = row[u_col], row[v_col]
                if self.graph.has_edge(src_v, dst_v, label):
                    rows.append(merge(row, (src_v, dst_v)))
                continue
            if u_col is not None:
                src_v = row[u_col]
                if u_labels and not self._labels_ok(src_v, u_labels):
                    continue
                for dst_v in self.graph.out_neighbors(src_v, label):
                    if v_labels and not self._labels_ok(dst_v, v_labels):
                        continue
                    rows.append(merge(row, (src_v, dst_v)))
            else:
                dst_v = row[v_col]
                if v_labels and not self._labels_ok(dst_v, v_labels):
                    continue
                for src_v in self.graph.in_neighbors(dst_v, label):
                    if u_labels and not self._labels_ok(src_v, u_labels):
                        continue
                    rows.append(merge(row, (src_v, dst_v)))
        return Relation(out_attrs, rows, sorted_on=None)


def _output_schema(
    left_attrs: Tuple[int, ...], right_attrs: Tuple[int, ...]
):
    """Output attribute order and a row-merging function."""
    extra = [a for a in right_attrs if a not in left_attrs]
    out_attrs = tuple(left_attrs) + tuple(extra)
    extra_cols = [right_attrs.index(a) for a in extra]

    def merge(lrow: Row, rrow: Row) -> Row:
        return lrow + tuple(rrow[c] for c in extra_cols)

    return out_attrs, merge

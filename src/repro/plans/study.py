"""The plan-quality study (paper, Section 6.5).

For each query and each estimation technique, feed the technique's
cardinalities into the optimizer, execute the resulting plan, and compare
execution times against the plan built from true cardinalities ("TC").
The paper's conclusions — bad estimates can produce significantly worse
plans, star queries are robust (wide validity ranges), accurate
cardinality estimation should be the first priority — are reproduced by
this harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.errors import GCareError
from ..core.framework import Estimator
from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from .cost import CostModel
from .executor import ExecutionResult, PlanExecutor
from .optimizer import (
    CardinalityOracle,
    EstimatorOracle,
    Plan,
    PlanOptimizer,
    TrueCardinalityOracle,
)


@dataclass
class PlanQualityRecord:
    """Outcome of planning + executing one query with one oracle."""

    query_name: str
    technique: str
    plan: Optional[Plan]
    execution: Optional[ExecutionResult]
    error: Optional[str] = None

    @property
    def elapsed(self) -> Optional[float]:
        return self.execution.elapsed if self.execution else None


@dataclass
class PlanQualityStudy:
    """Runs Section 6.5 for a set of queries and techniques."""

    graph: Graph
    cost_model: CostModel = field(default_factory=CostModel)

    def run(
        self,
        queries: Mapping[str, QueryGraph],
        estimators: Mapping[str, Estimator],
        include_true_cardinality: bool = True,
    ) -> List[PlanQualityRecord]:
        """Plan and execute every query under every technique's estimates."""
        executor = PlanExecutor(self.graph)
        oracles: Dict[str, CardinalityOracle] = {}
        if include_true_cardinality:
            oracles["TC"] = TrueCardinalityOracle(self.graph)
        for name, estimator in estimators.items():
            oracles[name] = EstimatorOracle(estimator)
        records: List[PlanQualityRecord] = []
        for query_name, query in queries.items():
            for technique, oracle in oracles.items():
                records.append(
                    self._run_one(executor, query_name, query, technique, oracle)
                )
        return records

    def _run_one(
        self,
        executor: PlanExecutor,
        query_name: str,
        query: QueryGraph,
        technique: str,
        oracle: CardinalityOracle,
    ) -> PlanQualityRecord:
        optimizer = PlanOptimizer(self.graph, oracle, self.cost_model)
        try:
            plan = optimizer.optimize(query)
        except GCareError as exc:
            return PlanQualityRecord(query_name, technique, None, None, str(exc))
        execution = executor.execute(query, plan)
        return PlanQualityRecord(query_name, technique, plan, execution)


def records_as_table(
    records: Sequence[PlanQualityRecord],
) -> Dict[str, Dict[str, Optional[float]]]:
    """Pivot records into {technique: {query: elapsed seconds}}."""
    table: Dict[str, Dict[str, Optional[float]]] = {}
    for record in records:
        table.setdefault(record.technique, {})[record.query_name] = record.elapsed
    return table

"""Cost-based join optimizer in the style of RDF-3X (paper, Section 6.5).

The optimizer enumerates plans bottom-up over *connected* subqueries
(dynamic programming a la Selinger / RDF-3X), tracking interesting orders:
every base relation can be delivered sorted on either of its attributes
(RDF-3X's six triple indexes), merge join is used when both inputs are
sorted on the join attribute, hash join otherwise, and — the strategy the
paper added — a sort enforcer on a small unsorted input can turn a hash
join into a (cheaper) merge join.

Cardinalities of intermediate results come from a pluggable
:class:`CardinalityOracle`; Section 6.5 feeds the oracle from each
estimation technique (and from true cardinalities, "TC") and compares the
resulting plans' execution times.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.errors import GCareError, UnsupportedQueryError
from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from ..matching.homomorphism import count_embeddings
from .cost import CostModel

EdgeSet = FrozenSet[int]


# ---------------------------------------------------------------------------
# cardinality oracles
# ---------------------------------------------------------------------------
class CardinalityOracle(abc.ABC):
    """Supplies cardinalities of connected subqueries to the optimizer."""

    @abc.abstractmethod
    def cardinality(self, query: QueryGraph, edge_indices: EdgeSet) -> float:
        """Estimated cardinality of the subquery on the given edges."""


class TrueCardinalityOracle(CardinalityOracle):
    """Exact cardinalities (the paper's "TC" baseline), memoized."""

    def __init__(self, graph: Graph, time_limit: float = 30.0) -> None:
        self.graph = graph
        self.time_limit = time_limit
        self._cache: Dict[Tuple, float] = {}

    def cardinality(self, query: QueryGraph, edge_indices: EdgeSet) -> float:
        subquery, _ = query.subquery(sorted(edge_indices)).compact()
        key = subquery.canonical_key()
        cached = self._cache.get(key)
        if cached is None:
            result = count_embeddings(
                self.graph, subquery, time_limit=self.time_limit
            )
            cached = float(result.count)
            self._cache[key] = cached
        return cached


class EstimatorOracle(CardinalityOracle):
    """Cardinalities from one estimation technique, memoized.

    Failures (unsupported query shapes, timeouts) fall back to a pessimistic
    default, mirroring how an optimizer must cope when its estimator cannot
    produce a number.
    """

    def __init__(self, estimator, fallback: float = 1.0) -> None:
        self.estimator = estimator
        self.fallback = fallback
        self._cache: Dict[Tuple, float] = {}

    def cardinality(self, query: QueryGraph, edge_indices: EdgeSet) -> float:
        subquery, _ = query.subquery(sorted(edge_indices)).compact()
        key = subquery.canonical_key()
        cached = self._cache.get(key)
        if cached is None:
            try:
                cached = self.estimator.estimate(subquery).estimate
            except GCareError:
                cached = self.fallback
            self._cache[key] = cached
        return cached


# ---------------------------------------------------------------------------
# plan nodes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Plan:
    """A physical plan node (immutable; children embedded)."""

    op: str  # "scan" | "sort" | "merge" | "hash" | "inl"
    edges: EdgeSet
    cost: float
    cardinality: float
    sorted_on: Optional[int]  # query vertex the output is sorted on
    scan_edge: Optional[int] = None
    sort_attr: Optional[int] = None
    left: Optional["Plan"] = None
    right: Optional["Plan"] = None
    join_attrs: Tuple[int, ...] = ()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.op == "scan":
            me = f"{pad}Scan(edge={self.scan_edge}, sorted_on=u{self.sorted_on})"
        elif self.op == "sort":
            me = f"{pad}Sort(on=u{self.sort_attr})"
        else:
            name = {"merge": "MergeJoin", "hash": "HashJoin",
                    "inl": "IndexNLJoin"}[self.op]
            attrs = ",".join(f"u{a}" for a in self.join_attrs)
            me = f"{pad}{name}(on={attrs})"
        me += f"  [card~{self.cardinality:.0f}, cost~{self.cost:.0f}]"
        parts = [me]
        for child in (self.left, self.right):
            if child is not None:
                parts.append(child.describe(indent + 1))
        return "\n".join(parts)

    def count_ops(self, op: str) -> int:
        total = 1 if self.op == op else 0
        for child in (self.left, self.right):
            if child is not None:
                total += child.count_ops(op)
        return total


# ---------------------------------------------------------------------------
# the optimizer
# ---------------------------------------------------------------------------
class PlanOptimizer:
    """DP over connected subqueries with interesting orders."""

    def __init__(
        self,
        graph: Graph,
        oracle: CardinalityOracle,
        cost_model: Optional[CostModel] = None,
        max_edges: int = 10,
        enable_nested_loop: bool = False,
    ) -> None:
        """``enable_nested_loop`` adds index nested-loop join plans — the
        paper notes that with more diverse plans such as nested loop join,
        "bad estimates can easily lead to suboptimal plans" (Section 6.5);
        the flag lets the study quantify exactly that."""
        self.graph = graph
        self.oracle = oracle
        self.cost_model = cost_model or CostModel()
        self.max_edges = max_edges
        self.enable_nested_loop = enable_nested_loop

    def optimize(self, query: QueryGraph) -> Plan:
        """Find the cheapest plan for the query under the oracle's cards."""
        n = query.num_edges
        if n == 0:
            raise UnsupportedQueryError("cannot plan an empty query")
        if n > self.max_edges:
            raise UnsupportedQueryError(
                f"plan search supports up to {self.max_edges} edges, got {n}"
            )
        # best[edge_set][sorted_on] -> Plan ; sorted_on None = no order
        best: Dict[EdgeSet, Dict[Optional[int], Plan]] = {}

        def consider(plans: Dict[Optional[int], Plan], candidate: Plan) -> None:
            existing = plans.get(candidate.sorted_on)
            if existing is None or candidate.cost < existing.cost:
                plans[candidate.sorted_on] = candidate

        # base case: single-edge scans, one per deliverable order
        for i, (u, v, label) in enumerate(query.edges):
            edge_set = frozenset([i])
            cardinality = self.oracle.cardinality(query, edge_set)
            plans: Dict[Optional[int], Plan] = {}
            for sorted_on in {u, v}:
                consider(
                    plans,
                    Plan(
                        op="scan",
                        edges=edge_set,
                        cost=self.cost_model.scan(cardinality),
                        cardinality=cardinality,
                        sorted_on=sorted_on,
                        scan_edge=i,
                    ),
                )
            best[edge_set] = plans

        # DP over subset sizes
        all_edges = frozenset(range(n))
        for size in range(2, n + 1):
            for subset in map(frozenset, combinations(range(n), size)):
                if not self._connected(query, subset):
                    continue
                cardinality = self.oracle.cardinality(query, subset)
                plans: Dict[Optional[int], Plan] = {}
                for left_set, right_set in self._splits(query, subset):
                    left_plans = best.get(left_set)
                    right_plans = best.get(right_set)
                    if not left_plans or not right_plans:
                        continue
                    join_attrs = self._shared_attrs(query, left_set, right_set)
                    if not join_attrs:
                        continue
                    for left in left_plans.values():
                        for right in right_plans.values():
                            for candidate in self._join_candidates(
                                query, left, right, subset, join_attrs,
                                cardinality,
                            ):
                                consider(plans, candidate)
                if plans:
                    best[subset] = plans
        final = best.get(all_edges)
        if not final:
            raise UnsupportedQueryError("query is disconnected; cannot plan")
        return min(final.values(), key=lambda p: p.cost)

    # ------------------------------------------------------------------
    def _join_candidates(
        self,
        query: QueryGraph,
        left: Plan,
        right: Plan,
        subset: EdgeSet,
        join_attrs: Tuple[int, ...],
        cardinality: float,
    ) -> List[Plan]:
        model = self.cost_model
        candidates: List[Plan] = []
        # hash join: no order requirement; output unsorted
        candidates.append(
            Plan(
                op="hash",
                edges=subset,
                cost=left.cost
                + right.cost
                + model.hash_join(left.cardinality, right.cardinality, cardinality),
                cardinality=cardinality,
                sorted_on=None,
                left=left,
                right=right,
                join_attrs=join_attrs,
            )
        )
        # index nested-loop join: probe the right side's *single* base
        # relation with an index lookup per left tuple; only available when
        # the right side is one scanned edge (an index exists)
        right_is_probe_friendly = (
            right.op == "scan"
            and right.scan_edge is not None
            and query.edges[right.scan_edge][0] != query.edges[right.scan_edge][1]
        )
        if (
            self.enable_nested_loop
            and right_is_probe_friendly
            and len(join_attrs) >= 1
        ):
            candidates.append(
                Plan(
                    op="inl",
                    edges=subset,
                    cost=left.cost
                    + model.index_nested_loop(left.cardinality, cardinality),
                    cardinality=cardinality,
                    sorted_on=left.sorted_on,
                    left=left,
                    right=right,
                    join_attrs=join_attrs,
                )
            )
        # merge join on each shared attribute, adding sorts where needed
        for attr in join_attrs:
            merge_left, merge_right = left, right
            if merge_left.sorted_on != attr:
                merge_left = Plan(
                    op="sort",
                    edges=merge_left.edges,
                    cost=merge_left.cost + model.sort(merge_left.cardinality),
                    cardinality=merge_left.cardinality,
                    sorted_on=attr,
                    sort_attr=attr,
                    left=merge_left,
                )
            if merge_right.sorted_on != attr:
                merge_right = Plan(
                    op="sort",
                    edges=merge_right.edges,
                    cost=merge_right.cost + model.sort(merge_right.cardinality),
                    cardinality=merge_right.cardinality,
                    sorted_on=attr,
                    sort_attr=attr,
                    left=merge_right,
                )
            candidates.append(
                Plan(
                    op="merge",
                    edges=subset,
                    cost=merge_left.cost
                    + merge_right.cost
                    + model.merge_join(
                        merge_left.cardinality,
                        merge_right.cardinality,
                        cardinality,
                    ),
                    cardinality=cardinality,
                    sorted_on=attr,
                    left=merge_left,
                    right=merge_right,
                    join_attrs=(attr,),
                )
            )
        return candidates

    # ------------------------------------------------------------------
    @staticmethod
    def _connected(query: QueryGraph, subset: EdgeSet) -> bool:
        edges = [query.edges[i] for i in subset]
        vertices = {u for u, _, _ in edges} | {v for _, v, _ in edges}
        if not vertices:
            return False
        adjacency: Dict[int, set] = {v: set() for v in vertices}
        for u, v, _ in edges:
            adjacency[u].add(v)
            adjacency[v].add(u)
        start = next(iter(vertices))
        seen = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y in adjacency[x]:
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return seen == vertices

    def _splits(
        self, query: QueryGraph, subset: EdgeSet
    ) -> List[Tuple[EdgeSet, EdgeSet]]:
        """Connected (left, right) partitions of the subset."""
        items = sorted(subset)
        result = []
        # iterate proper non-empty subsets; avoid mirrored duplicates by
        # pinning the first element to the left side
        rest = items[1:]
        for mask in range(1 << len(rest)):
            left = {items[0]}
            for bit, edge in enumerate(rest):
                if mask & (1 << bit):
                    left.add(edge)
            right = subset - left
            if not right:
                continue
            left_frozen = frozenset(left)
            right_frozen = frozenset(right)
            if self._connected(query, left_frozen) and self._connected(
                query, right_frozen
            ):
                result.append((left_frozen, right_frozen))
        return result

    @staticmethod
    def _shared_attrs(
        query: QueryGraph, left: EdgeSet, right: EdgeSet
    ) -> Tuple[int, ...]:
        def vertices(edge_set: EdgeSet) -> set:
            result = set()
            for i in edge_set:
                u, v, _ = query.edges[i]
                result.update((u, v))
            return result

        return tuple(sorted(vertices(left) & vertices(right)))


# ---------------------------------------------------------------------------
# validity ranges (Section 6.5's analysis tool, after Markl et al. [27])
# ---------------------------------------------------------------------------
def validity_range(
    optimizer: "PlanOptimizer",
    query: QueryGraph,
    plan: Plan,
    subset: EdgeSet,
    factors: Sequence[float] = (
        0.01, 0.03, 0.1, 0.3, 0.5, 2.0, 3.0, 10.0, 30.0, 100.0,
    ),
) -> Tuple[float, float]:
    """Cardinality range of a subquery within which ``plan`` stays optimal.

    The paper explains plan robustness through *validity ranges*: "a range
    on the number of rows flowing through, such that if the range is not
    violated at runtime, we can guarantee that P is optimal with respect to
    the cost model".  Wide ranges mean bad estimates are harmless (the
    star-query effect); narrow ranges mean slight errors flip the plan.

    We approximate the range by parametric search: re-optimize with the
    subquery's cardinality scaled by each factor and record the largest
    contiguous interval around 1.0 in which the chosen plan's structure is
    unchanged.  Returns ``(low, high)`` as multiples of the true value.
    """
    base = optimizer.oracle.cardinality(query, subset)
    reference = _plan_signature(plan)
    low, high = 1.0, 1.0
    for factor in sorted((f for f in factors if f < 1.0), reverse=True):
        scaled = _ScaledOracle(optimizer.oracle, subset, factor)
        candidate = PlanOptimizer(
            optimizer.graph, scaled, optimizer.cost_model,
            optimizer.max_edges, optimizer.enable_nested_loop,
        ).optimize(query)
        if _plan_signature(candidate) != reference:
            break
        low = factor
    for factor in sorted(f for f in factors if f > 1.0):
        scaled = _ScaledOracle(optimizer.oracle, subset, factor)
        candidate = PlanOptimizer(
            optimizer.graph, scaled, optimizer.cost_model,
            optimizer.max_edges, optimizer.enable_nested_loop,
        ).optimize(query)
        if _plan_signature(candidate) != reference:
            break
        high = factor
    return (low * base, high * base)


def _plan_signature(plan: Plan) -> Tuple:
    """Structural identity of a plan (operators + shape, not costs)."""
    children = tuple(
        _plan_signature(child)
        for child in (plan.left, plan.right)
        if child is not None
    )
    return (plan.op, plan.scan_edge, plan.sort_attr, plan.join_attrs, children)


class _ScaledOracle(CardinalityOracle):
    """Wraps an oracle, scaling one subquery's cardinality by a factor."""

    def __init__(
        self, base: CardinalityOracle, subset: EdgeSet, factor: float
    ) -> None:
        self.base = base
        self.subset = subset
        self.factor = factor

    def cardinality(self, query: QueryGraph, edge_indices: EdgeSet) -> float:
        value = self.base.cardinality(query, edge_indices)
        if edge_indices == self.subset:
            return value * self.factor
        return value

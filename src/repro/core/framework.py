"""The G-CARE framework (Algorithm 1 of the paper).

Every cardinality estimation technique is expressed through five hooks:

* ``prepare_summary_structure`` — off-line; summary-based techniques build
  their summary here, sampling-based techniques do nothing.
* ``decompose_query`` — split the query into subqueries ``(q_1 .. q_m)``.
* ``get_substructures`` — yield *target substructures* for a subquery: a
  sampling unit with its probability for sampling-based techniques, or a
  matched summary substructure for summary-based techniques.
* ``est_card`` — estimate the subquery cardinality from one substructure.
* ``agg_card`` — aggregate the per-substructure estimates (SUM / AVG / MIN).

``estimate`` is the template method: it runs the hooks exactly as Algorithm
1 does and multiplies the subquery cardinalities by ``selectivity``.
"""

from __future__ import annotations

import abc
import io
import math
import pickle
import random
import time
from typing import Any, Iterable, Iterator, List, Optional, Sequence

from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from ..kernels import backend_code as kernel_backend_code
from ..obs.size import deep_sizeof
from ..obs.trace import NO_TRACE
from .errors import EstimationTimeout, InvalidEstimateError
from .result import EstimationResult

#: Default sampling ratio (3%, the paper's default — Section 5.3).
DEFAULT_SAMPLING_RATIO = 0.03

#: Default per-query timeout in seconds.  The paper uses 5 minutes on a
#: large Xeon server; the library default is lower to match laptop-scale
#: graphs, and every benchmark overrides it explicitly.
DEFAULT_TIME_LIMIT = 60.0


class Estimator(abc.ABC):
    """Base class for all cardinality estimation techniques.

    Parameters
    ----------
    graph:
        The data graph.
    sampling_ratio:
        Fraction ``p`` controlling the number of target substructures for
        sampling-based techniques (ignored by summary-based ones).
    seed:
        Seed for the technique's private RNG; runs are reproducible.
    time_limit:
        Per-query wall-clock budget in seconds; exceeded budgets raise
        :class:`~repro.core.errors.EstimationTimeout`.
    """

    #: short identifier used in reports ("cset", "wj", ...)
    name: str = "base"
    #: display name used in tables ("C-SET", "WJ", ...)
    display_name: str = "Base"
    #: whether the technique draws samples at estimation time
    is_sampling_based: bool = False
    #: True when estimates depend only on the query's own label scopes:
    #: a graph delta whose edge *and* vertex labels are disjoint from a
    #: query's cannot change this technique's estimate for it.  The serve
    #: result cache uses this to let entries survive a delta swap.  False
    #: for techniques with global normalization terms (WanderJoin budgets
    #: scale with |E|; C-SET redistributes counts between characteristic
    #: sets), which any delta can perturb.
    delta_local: bool = False
    #: generation stamp of the graph the prepared summary describes
    #: (None until prepared); ``apply_deltas`` checks slice contiguity
    #: against it before attempting an incremental update
    _summary_generation: Optional[int] = None
    #: how the last ``apply_deltas`` resolved ("incremental"/"reprepare")
    last_update_mode: Optional[str] = None

    def __init__(
        self,
        graph: Graph,
        sampling_ratio: float = DEFAULT_SAMPLING_RATIO,
        seed: int = 0,
        time_limit: Optional[float] = DEFAULT_TIME_LIMIT,
    ) -> None:
        if not 0 < sampling_ratio <= 1:
            raise ValueError("sampling_ratio must be in (0, 1]")
        self.graph = graph
        self.sampling_ratio = sampling_ratio
        self.seed = seed
        self.time_limit = time_limit
        self.rng = random.Random(seed)
        self._prepared = False
        self.preparation_time = 0.0
        self._deadline = float("inf")
        #: observability sink (the no-op singleton unless tracing is
        #: attached, e.g. via :func:`repro.obs.traced`); hot loops guard
        #: their bookkeeping with one ``self.obs.enabled`` check
        self.obs = NO_TRACE
        #: soft memory budget (a :class:`repro.faults.memory.MemoryBudget`
        #: attached by ``run_cell`` when a budget is configured, else None);
        #: checked alongside the deadline at the cooperative check points
        self.memory_guard = None

    # ------------------------------------------------------------------
    # framework hooks (Algorithm 1)
    # ------------------------------------------------------------------
    def prepare_summary_structure(self) -> None:
        """Build the off-line summary (no-op for sampling-based techniques)."""

    @abc.abstractmethod
    def decompose_query(self, query: QueryGraph) -> Sequence[Any]:
        """Split the query into subqueries ``(q_1, ..., q_m)``."""

    @abc.abstractmethod
    def get_substructures(self, query: QueryGraph, subquery: Any) -> Iterator[Any]:
        """Yield target substructures for one subquery."""

    @abc.abstractmethod
    def est_card(self, query: QueryGraph, subquery: Any, substructure: Any) -> float:
        """Estimate the subquery cardinality from one target substructure."""

    @abc.abstractmethod
    def agg_card(self, card_vec: Sequence[float]) -> float:
        """Aggregate the per-substructure estimates of one subquery."""

    def selectivity(self, query: QueryGraph, subqueries: Sequence[Any]) -> float:
        """Selectivity correction ``sel(q_1, ..., q_m)``; defaults to 1."""
        return 1.0

    # ------------------------------------------------------------------
    # template methods
    # ------------------------------------------------------------------
    @property
    def prepared(self) -> bool:
        """Whether off-line preparation has already run."""
        return self._prepared

    def prepare(self) -> float:
        """Run off-line preparation once; return the build time in seconds."""
        if not self._prepared:
            start = time.monotonic()
            self.prepare_summary_structure()
            self.preparation_time = time.monotonic() - start
            self._prepared = True
            self._summary_generation = getattr(self.graph, "generation", 0)
        return self.preparation_time

    # ------------------------------------------------------------------
    # incremental summary maintenance (the optional sixth hook)
    # ------------------------------------------------------------------
    def update_summary(self, deltas: Sequence[Any]) -> None:
        """Advance the prepared summary by one contiguous delta slice.

        Techniques that can maintain their summary in O(delta) override
        this; the contract is strict equivalence — after the update, the
        estimator must produce bit-identical estimates (and identical
        diagnostic counters) to one cold-prepared on the post-delta
        graph, for every query (``tests/test_incremental.py`` enforces
        it per registered technique).  ``self.graph`` is already the
        post-delta graph when this runs.  Techniques without the hook
        inherit this default and degrade to a full re-prepare.
        """
        raise NotImplementedError

    @property
    def supports_incremental_update(self) -> bool:
        """Whether this technique overrides :meth:`update_summary`."""
        return type(self).update_summary is not Estimator.update_summary

    def reset_summary(self) -> None:
        """Drop the prepared summary so the next estimate cold-prepares.

        Subclasses that memoize graph-derived structures *outside* the
        summary built by ``prepare_summary_structure`` (per-query plan
        caches keyed on data-graph labels, sampler index tables) must
        override this to clear them — after a graph swap those caches
        describe a world that no longer exists.
        """
        self._prepared = False
        self.preparation_time = 0.0
        self._summary_generation = None

    def apply_deltas(self, graph: Graph, deltas: Sequence[Any]) -> str:
        """Rebind to the post-delta graph, maintaining the summary.

        ``graph`` is the new (sealed) graph, ``deltas`` the journal slice
        that produced it from the graph the summary describes.  Takes the
        incremental path — O(delta) summary maintenance via
        :meth:`update_summary` — when the technique supports it and the
        slice is contiguous (``summary generation + len(deltas) ==
        graph.generation``); anything else falls back to dropping the
        summary for a cold re-prepare on next use.  Returns the mode
        taken, ``"incremental"`` or ``"reprepare"``, and mirrors it into
        the ``summary.update.{incremental,reprepare}`` trace counters.
        """
        deltas = list(deltas)
        new_generation = getattr(graph, "generation", 0)
        contiguous = (
            self._prepared
            and self._summary_generation is not None
            and self._summary_generation + len(deltas) == new_generation
        )
        obs = self.obs
        if contiguous and self.supports_incremental_update:
            self.graph = graph
            self.update_summary(deltas)
            self._summary_generation = new_generation
            if obs.enabled:
                obs.incr("summary.update.incremental")
            self.last_update_mode = "incremental"
            return "incremental"
        self.graph = graph
        self.reset_summary()
        if obs.enabled:
            obs.incr("summary.update.reprepare")
        self.last_update_mode = "reprepare"
        return "reprepare"

    # ------------------------------------------------------------------
    # summary serialization (prepare-once sharing)
    # ------------------------------------------------------------------
    #: attributes never serialized into a summary payload: the data graph
    #: (restored by reference on import), per-process observability and
    #: budget plumbing, and the RNG (reset from the seed on import so a
    #: hydrated estimator is bit-identical to a freshly prepared one)
    _SUMMARY_EXCLUDED_STATE = ("graph", "obs", "memory_guard", "rng", "_deadline")

    #: wall-clock cost of the most recent :meth:`import_summary`
    hydration_time: float = 0.0
    #: set by the summary-cache layer on hydration; consumed by the first
    #: ``run_cell`` so the record charges a ``prepare_cached`` phase
    _cache_charge_pending: bool = False

    #: persistent-id sentinels used by the summary pickle stream
    _PID_GRAPH = "gcare:data-graph"
    _PID_NO_TRACE = "gcare:no-trace"

    def export_summary(self) -> bytes:
        """Serialize the prepared state for reuse by another instance.

        The payload contains everything :meth:`prepare` built (plus the
        recorded ``preparation_time``), with every reference to the data
        graph — direct or nested inside sub-estimators and relation
        objects — replaced by a persistent-id sentinel, so the graph is
        never dragged into the pickle.  :meth:`import_summary` on an
        estimator of the same type, graph and parameters restores it.
        """
        if not self._prepared:
            raise RuntimeError(
                f"{type(self).__name__} has no prepared summary to export"
            )
        state = {
            k: v
            for k, v in self.__dict__.items()
            if k not in self._SUMMARY_EXCLUDED_STATE
        }
        buffer = io.BytesIO()
        pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        graph = self.graph
        no_trace = NO_TRACE

        def persistent_id(obj):
            if obj is graph:
                return Estimator._PID_GRAPH
            if obj is no_trace:
                return Estimator._PID_NO_TRACE
            return None

        pickler.persistent_id = persistent_id
        pickler.dump(state)
        return buffer.getvalue()

    def import_summary(self, payload: bytes) -> None:
        """Restore a summary exported from a matching estimator.

        The caller is responsible for key discipline: the payload must
        come from an estimator of the same type over an identical graph
        with identical parameters (the summary cache enforces this with
        content fingerprints).  The RNG is re-seeded from ``self.seed``
        afterwards, so hydration never perturbs estimates.
        """
        graph = self.graph
        unpickler = pickle.Unpickler(io.BytesIO(payload))

        def persistent_load(pid):
            if pid == Estimator._PID_GRAPH:
                return graph
            if pid == Estimator._PID_NO_TRACE:
                return NO_TRACE
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")

        unpickler.persistent_load = persistent_load
        state = unpickler.load()
        self.__dict__.update(state)
        self._prepared = True
        if "_summary_generation" not in state:
            # payloads predating generation stamps: the cache key already
            # guarantees the graph matches, so stamp the current one
            self._summary_generation = getattr(self.graph, "generation", 0)
        self.rng = random.Random(self.seed)

    def estimate(self, query: QueryGraph) -> EstimationResult:
        """Estimate the cardinality of ``query`` (Algorithm 1).

        The result's ``info["timings"]`` breaks the on-line time into the
        framework's phases (decompose / substructure loop / aggregation /
        selectivity), which is how the efficiency analysis attributes
        costs — e.g. SumRDF "spends most of the time on GetSubstructure
        and EstCard" (Section 6.4).

        When a :class:`~repro.obs.trace.TraceCollector` is attached as
        ``self.obs``, the same phases are additionally emitted as nested
        span events (one per Algorithm-1 hook under an ``estimate``
        root), the technique's counters are flushed via
        :meth:`record_counters`, and the summary footprint is gauged.
        Each span is closed in a ``finally`` block, so a run cut short by
        :class:`EstimationTimeout` still leaves a well-formed partial
        trace with no dangling open spans.
        """
        obs = self.obs
        span = obs.start("prepare_summary_structure")
        try:
            self.prepare()
        finally:
            obs.finish(span)
        if obs.enabled:
            obs.gauge("summary.bytes", deep_sizeof(self.summary_objects()))
            obs.gauge("kernel.backend", kernel_backend_code())
            obs.gauge("graph.generation", getattr(self.graph, "generation", 0))
        self.rng = random.Random(self.seed)  # reproducible per query
        start = time.monotonic()
        self._deadline = (
            start + self.time_limit if self.time_limit else float("inf")
        )
        subqueries: Sequence[Any] = ()
        total_substructures = 0
        zero_card_substructures = 0
        root = obs.start("estimate")
        try:
            span = obs.start("decompose_query")
            try:
                subqueries = self.decompose_query(query)
            finally:
                obs.finish(span)
            decompose_done = time.monotonic()
            card_vecs: List[List[float]] = []
            span = obs.start("get_substructures")
            try:
                for subquery in subqueries:
                    card_vec: List[float] = []
                    for substructure in self.get_substructures(query, subquery):
                        self.check_deadline()
                        card = self.est_card(query, subquery, substructure)
                        card_vec.append(card)
                        total_substructures += 1
                        if card == 0.0:
                            zero_card_substructures += 1
                    card_vecs.append(card_vec)
            finally:
                obs.finish(span)
            loop_done = time.monotonic()
            span = obs.start("agg_card")
            try:
                subquery_cards = [self.agg_card(vec) for vec in card_vecs]
            finally:
                obs.finish(span)
            agg_done = time.monotonic()
            span = obs.start("selectivity")
            try:
                estimate = self.selectivity(query, subqueries)
            finally:
                obs.finish(span)
            for card in subquery_cards:
                estimate *= card
            end = time.monotonic()
            if -1e-9 < estimate < 0.0:
                estimate = 0.0  # float-rounding noise, not a real negative
            if not math.isfinite(estimate) or estimate < 0.0:
                raise InvalidEstimateError(
                    f"{self.display_name} produced degenerate estimate "
                    f"{estimate!r}"
                )
        finally:
            obs.finish(root)
            if obs.enabled:
                obs.incr("est.subqueries", len(subqueries))
                obs.incr("est.substructures", total_substructures)
                obs.incr(
                    "est.zero_card_substructures", zero_card_substructures
                )
                self.record_counters(obs)
        info = dict(self.estimation_info())
        info["timings"] = {
            "decompose": decompose_done - start,
            "substructures": loop_done - decompose_done,
            "agg": agg_done - loop_done,
            "selectivity": end - agg_done,
        }
        return EstimationResult(
            estimate=estimate,
            elapsed=end - start,
            num_substructures=total_substructures,
            num_subqueries=len(subqueries),
            info=info,
        )

    def estimation_info(self) -> dict:
        """Technique-specific diagnostics attached to each result."""
        return {}

    # ------------------------------------------------------------------
    # observability hooks
    # ------------------------------------------------------------------
    def summary_objects(self) -> tuple:
        """Objects composing the off-line summary, for footprint gauging.

        Summary-based techniques override this to return their tables;
        the framework sizes them with :func:`repro.obs.size.deep_sizeof`
        into the ``summary.bytes`` gauge when tracing is on.  Sampling
        techniques keep no summary and inherit the empty default.
        """
        return ()

    def record_counters(self, obs) -> None:
        """Flush technique-private counters into an attached trace.

        Called once per traced ``estimate()`` (after the hook spans
        close, including on timeout).  Techniques count their hot loops
        with plain integer attributes — free when tracing is off — and
        override this to ``obs.incr`` them under dotted names following
        the ``<technique>.<metric>`` convention (see
        ``docs/architecture.md``).
        """

    def check_deadline(self) -> None:
        """Enforce the per-query budgets at a cooperative check point.

        Raises :class:`EstimationTimeout` once the wall-clock budget is
        gone, and (when a guard is attached)
        :class:`~repro.core.errors.MemoryBudgetExceeded` once the soft
        memory budget is — one attribute check when no guard is set, so
        the un-budgeted hot path pays (near) nothing.
        """
        if time.monotonic() > self._deadline:
            raise EstimationTimeout(
                f"{self.display_name} exceeded {self.time_limit}s"
            )
        guard = self.memory_guard
        if guard is not None:
            guard.check()

    def remaining_time(self) -> float:
        """Seconds left in the per-query budget (inf when unlimited)."""
        return self._deadline - time.monotonic()

    # ------------------------------------------------------------------
    def num_samples(self, population: int) -> int:
        """Number of sampling iterations implied by the sampling ratio.

        The paper: "p determines the number of iterations (the number of
        target substructures)" — we draw ``ceil(p * population)`` samples,
        with a floor of one.
        """
        return max(1, round(self.sampling_ratio * population))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(p={self.sampling_ratio})"

"""Exceptions shared across the G-CARE framework."""

from __future__ import annotations


class GCareError(Exception):
    """Base class for framework errors."""


class UnsupportedQueryError(GCareError):
    """The technique cannot process this query.

    Example from the paper: IMPR only supports queries with 3, 4 or 5
    vertices, so it "cannot process Q4" of LUBM (Section 6.1.1).
    """


class EstimationTimeout(GCareError):
    """The per-query time budget was exhausted before an estimate was made.

    Example from the paper: SumRDF "fails to process queries with 12 edges
    due to the timeout" (Section 6.2.3).
    """


class PreparationError(GCareError):
    """Building the summary structure failed."""


class InvalidEstimateError(GCareError):
    """The technique produced a degenerate estimate (NaN, inf, negative).

    Sampling/summary estimators are known to emit such values in corner
    cases (degenerate-estimate behaviour analyzed by the follow-up work
    in PAPERS.md); the framework refuses to let them flow into q-error
    summaries and raises this instead, which the evaluation runners
    record as ``error="invalid_estimate"``.
    """


class MemoryBudgetExceeded(GCareError):
    """A soft per-cell memory budget was exhausted during estimation.

    Raised by :class:`repro.faults.memory.MemoryBudget` at the next
    cooperative check point; the evaluation runners record the cell as
    ``error="memory"`` instead of letting the process OOM.
    """


class GraphFormatError(GCareError, ValueError):
    """A malformed line in a graph/query/triples text file.

    Subclasses :class:`ValueError` so callers that guarded the old bare
    ``ValueError``/``int()`` failures keep working, but carries the file,
    line number, and offending line for actionable diagnostics.
    """

    def __init__(self, path, line_no: int, line: str, reason: str) -> None:
        self.path = str(path)
        self.line_no = line_no
        self.line = line
        self.reason = reason
        super().__init__(f"{self.path}:{line_no}: {reason}: {line.strip()!r}")

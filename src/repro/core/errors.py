"""Exceptions shared across the G-CARE framework."""

from __future__ import annotations


class GCareError(Exception):
    """Base class for framework errors."""


class UnsupportedQueryError(GCareError):
    """The technique cannot process this query.

    Example from the paper: IMPR only supports queries with 3, 4 or 5
    vertices, so it "cannot process Q4" of LUBM (Section 6.1.1).
    """


class EstimationTimeout(GCareError):
    """The per-query time budget was exhausted before an estimate was made.

    Example from the paper: SumRDF "fails to process queries with 12 edges
    due to the timeout" (Section 6.2.3).
    """


class PreparationError(GCareError):
    """Building the summary structure failed."""

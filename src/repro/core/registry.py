"""Registry of the cardinality estimation techniques studied in the paper."""

from __future__ import annotations

from typing import Dict, List, Type

from ..graph.digraph import Graph
from .framework import Estimator

#: techniques registered at runtime via :func:`register_estimator`
#: (extensions, test doubles); merged over the built-ins by name
_RUNTIME_TECHNIQUES: Dict[str, Type[Estimator]] = {}


def _builtin_techniques() -> Dict[str, Type[Estimator]]:
    # imported lazily to avoid import cycles
    from ..estimators.bernoulli import BernoulliSampling
    from ..estimators.boundsketch import BoundSketch
    from ..estimators.correlated import CorrelatedSampling
    from ..estimators.cset import CharacteristicSets
    from ..estimators.hybrid import CSetWanderJoinHybrid
    from ..estimators.impr import Impr
    from ..estimators.jsub import Jsub
    from ..estimators.sumrdf import SumRDF
    from ..estimators.truecard import TrueCardinality
    from ..estimators.wanderjoin import WanderJoin

    return {
        cls.name: cls
        for cls in (
            CharacteristicSets,
            Impr,
            SumRDF,
            CorrelatedSampling,
            WanderJoin,
            Jsub,
            BoundSketch,
            # extension (not in the paper): the conclusion's open question
            # (a) — WanderJoin integrated with a graph-based summary
            CSetWanderJoinHybrid,
            # baseline: the "independent sampling" Section 4.1 contrasts
            # CorrelatedSampling against
            BernoulliSampling,
            # ground truth wrapped as a technique (the TC rows of Fig. 11)
            TrueCardinality,
        )
    }


def _techniques() -> Dict[str, Type[Estimator]]:
    merged = _builtin_techniques()
    merged.update(_RUNTIME_TECHNIQUES)
    return merged


def register_estimator(
    cls: Type[Estimator], replace: bool = False
) -> Type[Estimator]:
    """Register a technique class under its ``name`` at runtime.

    Lets extensions and test doubles participate in everything keyed by
    technique name (runners, CLI, regression snapshots).  Note for
    parallel sweeps: worker processes see runtime registrations through
    ``fork`` inheritance; under the ``spawn`` start method only importable
    (built-in) techniques are available in workers.

    Usable as a class decorator; returns ``cls``.
    """
    name = cls.name
    if not replace and name in _techniques():
        raise ValueError(f"technique {name!r} is already registered")
    _RUNTIME_TECHNIQUES[name] = cls
    return cls


def unregister_estimator(name: str) -> None:
    """Remove a runtime registration (built-ins cannot be removed)."""
    _RUNTIME_TECHNIQUES.pop(name, None)


#: names of the graph-based techniques (paper, Section 3)
GRAPH_BASED = ("cset", "impr", "sumrdf")
#: names of the relational-based techniques (paper, Section 4)
RELATIONAL_BASED = ("cs", "wj", "jsub", "bs")
#: all technique names in the paper's presentation order
ALL_TECHNIQUES = GRAPH_BASED + RELATIONAL_BASED
#: extension techniques beyond the paper's seven
EXTENSIONS = ("cswj", "bernoulli", "tc")


def available_techniques() -> List[str]:
    """Names of the techniques runnable *right now*, in the paper's order.

    Equal to :data:`ALL_TECHNIQUES` on a full install; without numpy
    (the optional ``[perf]`` extra) BoundSketch — whose sketch math is
    numpy — drops out, and sweeps/CLI default to the remaining six.
    """
    from ..kernels import numpy_available

    if numpy_available():
        return list(ALL_TECHNIQUES)
    return [name for name in ALL_TECHNIQUES if name != "bs"]


def create_estimator(name: str, graph: Graph, **kwargs) -> Estimator:
    """Instantiate a technique by name (e.g. ``"wj"``, ``"cset"``)."""
    techniques = _techniques()
    if name not in techniques:
        raise KeyError(
            f"unknown technique {name!r}; available: {sorted(techniques)}"
        )
    return techniques[name](graph, **kwargs)


def estimator_class(name: str) -> Type[Estimator]:
    """The class registered under ``name``."""
    return _techniques()[name]

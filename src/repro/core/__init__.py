"""The G-CARE framework core (Algorithm 1, results, registry)."""

from .errors import (
    EstimationTimeout,
    GCareError,
    PreparationError,
    UnsupportedQueryError,
)
from .framework import DEFAULT_SAMPLING_RATIO, DEFAULT_TIME_LIMIT, Estimator
from .registry import (
    ALL_TECHNIQUES,
    GRAPH_BASED,
    RELATIONAL_BASED,
    available_techniques,
    create_estimator,
    estimator_class,
    register_estimator,
    unregister_estimator,
)
from .result import EstimationResult

__all__ = [
    "ALL_TECHNIQUES",
    "DEFAULT_SAMPLING_RATIO",
    "DEFAULT_TIME_LIMIT",
    "EstimationResult",
    "EstimationTimeout",
    "Estimator",
    "GCareError",
    "GRAPH_BASED",
    "PreparationError",
    "RELATIONAL_BASED",
    "UnsupportedQueryError",
    "available_techniques",
    "create_estimator",
    "estimator_class",
    "register_estimator",
    "unregister_estimator",
]

"""Estimation results and evaluation records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class EstimationResult:
    """Outcome of one cardinality estimation run.

    Attributes
    ----------
    estimate:
        The estimated cardinality (never negative; may be 0.0 when every
        sample failed — the paper observes this for several techniques).
    elapsed:
        On-line per-query estimation time in seconds (excludes summary
        construction, which is off-line preparation; see Section 6.4).
    num_substructures:
        Number of target substructures consumed (samples drawn or summary
        matches found) — the framework's loop count in Algorithm 1.
    num_subqueries:
        Number of subqueries produced by DecomposeQuery.
    info:
        Technique-specific diagnostics (e.g. WanderJoin's chosen walk order,
        sampling failure rates, number of bounding formulas).
    """

    estimate: float
    elapsed: float = 0.0
    num_substructures: int = 0
    num_subqueries: int = 1
    info: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.estimate < 0:
            raise ValueError("cardinality estimates cannot be negative")

    def __float__(self) -> float:
        return self.estimate

"""Deterministic fault injection over the Algorithm-1 hooks.

:func:`injected` wraps an estimator's five framework hooks
(``prepare_summary_structure`` … ``agg_card``) for the duration of one
evaluation cell, consulting a :class:`~repro.faults.plan.FaultPlan`
before every hook call.  A firing spec either perturbs the call
(raise / hang / sleep / allocate) or replaces its return value with a
degenerate estimate (NaN / inf / negative / huge).  Wrapping is
instance-local and fully undone on exit — the estimator's class is
never touched, and a cell run without a plan pays nothing (the runners
short-circuit on ``plan.enabled`` before entering this module at all).

When tracing is attached, every fired fault is visible in the record's
counters as ``fault.injected`` plus ``fault.<type>`` — the obs layer is
how a chaos sweep's blast radius is audited after the fact.

Worker-boundary faults (hard ``os._exit`` deaths) cannot be expressed
as a hook wrapper; :func:`maybe_die` is called by the parallel runner's
worker loop instead.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .plan import (
    HOOK_SITES,
    VALUE_FAULTS,
    WORKER_SITE,
    FaultPlan,
    FaultSpec,
)


class InjectedFault(RuntimeError):
    """The exception raised by an ``exception`` fault.

    Deliberately *not* a :class:`~repro.core.errors.GCareError`: a real
    estimator bug raises arbitrary exception types, and the injection
    harness must prove the pipeline survives exactly that.
    """


#: the degenerate estimate each value fault substitutes
DEGENERATE_VALUES = {
    "nan": float("nan"),
    "inf": float("inf"),
    "negative": -1.0e6,
    "huge": 1.0e300,
}

#: allocation step of a ``memory`` fault; small enough that a soft
#: budget trips within a few cooperative checks
MEMORY_CHUNK = 1 << 20


class Injector:
    """Per-cell injection state: plan, grid coordinates, call counters.

    One injector serves one ``(technique, query, run)`` cell.  Each site
    keeps an invocation counter so repeated calls (``est_card`` once per
    substructure) draw independent — but still deterministic —
    decisions.
    """

    def __init__(
        self,
        plan: FaultPlan,
        estimator,
        technique: str,
        query_name: str,
        run: int,
    ) -> None:
        self.plan = plan
        self.estimator = estimator
        self.technique = technique
        self.query_name = query_name
        self.run = run
        self.calls: Dict[str, int] = {}
        #: how many faults actually fired in this cell, by type
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def fire(self, site: str) -> Optional[FaultSpec]:
        invocation = self.calls.get(site, 0)
        self.calls[site] = invocation + 1
        spec = self.plan.decide(
            site, self.technique, self.query_name, self.run, invocation
        )
        if spec is not None:
            self.fired[spec.fault] = self.fired.get(spec.fault, 0) + 1
            obs = self.estimator.obs
            if obs.enabled:
                obs.incr("fault.injected")
                obs.incr(f"fault.{spec.fault}")
        return spec

    def execute(self, spec: FaultSpec, original, args, kwargs):
        """Carry out a fired spec; either raises or returns the value."""
        fault = spec.fault
        if fault == "exception":
            raise InjectedFault(
                f"injected exception at {spec.site} "
                f"({self.technique}/{self.query_name}/run {self.run})"
            )
        if fault == "hang":
            # a genuinely stuck hook: blind to the cooperative deadline,
            # survivable only through the parallel runner's hard kill
            while True:  # pragma: no branch
                time.sleep(0.05)
        if fault == "slowdown":
            time.sleep(spec.delay)
            return original(*args, **kwargs)
        if fault == "memory":
            self._blow_memory(spec)
        if fault in VALUE_FAULTS:
            return DEGENERATE_VALUES[fault]
        raise AssertionError(f"unreachable fault {fault!r}")

    def _blow_memory(self, spec: FaultSpec) -> None:
        """Allocate until a soft budget trips (or give up with MemoryError).

        Growth is incremental with a cooperative check between chunks,
        so a :class:`~repro.faults.memory.MemoryBudget` attached by the
        runner converts the blowup into ``MemoryBudgetExceeded`` long
        before ``payload_bytes`` is reached.  Without a budget the fault
        caps itself at ``payload_bytes`` and raises ``MemoryError`` —
        never an actual OOM.
        """
        ballast = []
        allocated = 0
        while allocated < spec.payload_bytes:
            ballast.append(bytearray(MEMORY_CHUNK))
            allocated += MEMORY_CHUNK
            self.estimator.check_deadline()  # deadline + memory budget
        raise MemoryError(
            f"injected memory blowup at {spec.site}: "
            f"{allocated} bytes allocated"
        )


def _make_wrapper(site: str, original, injector: Injector):
    def wrapper(*args, **kwargs):
        spec = injector.fire(site)
        if spec is None:
            return original(*args, **kwargs)
        return injector.execute(spec, original, args, kwargs)

    return wrapper


@contextmanager
def injected(
    estimator,
    plan: Optional[FaultPlan],
    technique: str,
    query_name: str,
    run: int,
) -> Iterator[Optional[Injector]]:
    """Wrap ``estimator``'s hooks with ``plan`` for one cell.

    Yields the :class:`Injector` (or None for a disabled plan).  Only
    the sites the plan actually names are wrapped; everything is
    restored on exit even when the cell dies mid-hook.
    """
    if plan is None or not plan.enabled:
        yield None
        return
    injector = Injector(plan, estimator, technique, query_name, run)
    wrapped = []
    for site in plan.sites():
        if site not in HOOK_SITES:
            continue  # the worker site is handled by maybe_die()
        original = getattr(estimator, site)
        had_instance_attr = site in estimator.__dict__
        setattr(estimator, site, _make_wrapper(site, original, injector))
        wrapped.append((site, original, had_instance_attr))
    try:
        yield injector
    finally:
        for site, original, had_instance_attr in wrapped:
            if had_instance_attr:
                setattr(estimator, site, original)
            else:
                delattr(estimator, site)


def maybe_die(
    plan: Optional[FaultPlan], technique: str, query_name: str, run: int
) -> None:
    """Hard-kill the current process if the plan says this cell crashes.

    Called by the parallel runner's worker loop before a cell executes.
    ``os._exit`` skips every ``finally`` and ``atexit`` — the closest
    stand-in for a segfault or an OOM kill the harness can produce on
    purpose.  The decision ignores the invocation counter, so a retried
    cell dies again deterministically (transient-crash recovery is
    exercised with real test doubles instead).
    """
    if plan is None or not plan.enabled:
        return
    spec = plan.decide(WORKER_SITE, technique, query_name, run)
    if spec is not None and spec.fault == "crash":
        os._exit(13)

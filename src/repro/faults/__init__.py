"""Deterministic fault injection for the sweep pipeline (``repro.faults``).

Three pieces:

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan`
  (fault type × site × probability × seed) and the shared no-op
  :data:`NO_FAULTS`;
* :mod:`repro.faults.inject` — :func:`injected`, the per-cell hook
  wrapper, and :func:`maybe_die`, the worker-boundary killer;
* :mod:`repro.faults.memory` — the soft per-cell
  :class:`MemoryBudget` guard.

``docs/robustness.md`` documents the fault taxonomy, the degradation
policy for each fault, and the chaos contract the test suite enforces.
"""

from .inject import (
    DEGENERATE_VALUES,
    InjectedFault,
    Injector,
    injected,
    maybe_die,
)
from .memory import MemoryBudget
from .plan import (
    ALL_FAULTS,
    ALL_SITES,
    EFFECT_FAULTS,
    HOOK_SITES,
    NO_FAULTS,
    SERVICE_FAULTS,
    SERVICE_SITE,
    VALUE_FAULTS,
    VALUE_SITES,
    WORKER_SITE,
    FaultPlan,
    FaultSpec,
    stable_uniform,
)

__all__ = [
    "ALL_FAULTS",
    "ALL_SITES",
    "DEGENERATE_VALUES",
    "EFFECT_FAULTS",
    "FaultPlan",
    "FaultSpec",
    "HOOK_SITES",
    "InjectedFault",
    "Injector",
    "MemoryBudget",
    "NO_FAULTS",
    "SERVICE_FAULTS",
    "SERVICE_SITE",
    "VALUE_FAULTS",
    "VALUE_SITES",
    "WORKER_SITE",
    "injected",
    "maybe_die",
    "stable_uniform",
]

"""Declarative, seed-deterministic fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries — *fault
type × site × probability* — plus one seed.  Whether a given spec fires
at a given point of the evaluation grid is a pure function of
``(plan.seed, spec index, site, technique, query, run, invocation)``:
no global RNG state, no dependence on scheduling.  The same plan
therefore injects the same faults into a serial sweep, a parallel sweep
over any number of workers, and a resumed sweep — which is what lets
the chaos contract suite assert bit-for-bit resume equality *under*
injection.

Sites are the five Algorithm-1 hooks plus the parallel runner's worker
boundary:

========================== ==================================================
site                       faults that may target it
========================== ==================================================
``prepare_summary_structure`` ``exception``, ``hang``, ``slowdown``, ``memory``
``decompose_query``           ``exception``, ``hang``, ``slowdown``, ``memory``
``get_substructures``         ``exception``, ``hang``, ``slowdown``, ``memory``
``est_card``                  the above plus ``nan``/``inf``/``negative``/``huge``
``agg_card``                  the above plus ``nan``/``inf``/``negative``/``huge``
``worker``                    ``crash`` (hard ``os._exit`` death)
========================== ==================================================

Plans are plain data: they serialize to JSON (for ``gcare sweep
--inject plan.json``) and parse from a compact inline syntax
(``site:fault[:probability[:tech+tech]]``, comma-separated)::

    est_card:nan                     # every est_card returns NaN
    agg_card:inf:0.5                 # half the agg_card calls return inf
    worker:crash:0.2:wj+jsub         # 20% of WJ/JSUB cells die hard
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence, Tuple, Union

#: the five Algorithm-1 hook sites an injector can wrap
HOOK_SITES = (
    "prepare_summary_structure",
    "decompose_query",
    "get_substructures",
    "est_card",
    "agg_card",
)

#: the parallel runner's process boundary
WORKER_SITE = "worker"

#: the serving front door — faults here are *client-side* perturbations
#: the chaos-soak harness replays against a live daemon (the daemon never
#: injects them itself; ``repro.serve.soak`` consults ``decide`` with this
#: site to schedule them deterministically)
SERVICE_SITE = "service"

ALL_SITES = HOOK_SITES + (WORKER_SITE, SERVICE_SITE)

#: faults that replace a hook's return value with a degenerate estimate
VALUE_FAULTS = ("nan", "inf", "negative", "huge")
#: sites whose return value is a cardinality (where VALUE_FAULTS apply)
VALUE_SITES = ("est_card", "agg_card")
#: faults that act by side effect at any hook site
EFFECT_FAULTS = ("exception", "hang", "slowdown", "memory")
#: the worker boundary's only fault: a hard process death
WORKER_FAULTS = ("crash",)
#: service-site faults (what a hostile/broken client does to the daemon)
#: — ``delta_swap`` streams a content-neutral mutation batch through the
#: incremental swap path; ``torn_journal`` sends delta payloads the
#: daemon must reject without publishing anything
SERVICE_FAULTS = (
    "malformed",
    "expired_deadline",
    "slowloris",
    "swap",
    "delta_swap",
    "torn_journal",
)

ALL_FAULTS = EFFECT_FAULTS + VALUE_FAULTS + WORKER_FAULTS + SERVICE_FAULTS


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: what, where, how often, and for whom.

    ``techniques`` restricts the spec to the named techniques (empty =
    all).  ``delay`` is the sleep of a ``slowdown``; ``payload_bytes``
    is how much a ``memory`` fault tries to allocate before giving up
    and raising ``MemoryError`` itself (it stops earlier if a soft
    memory budget trips).
    """

    fault: str
    site: str
    probability: float = 1.0
    techniques: Tuple[str, ...] = ()
    delay: float = 0.05
    payload_bytes: int = 64 << 20

    def __post_init__(self) -> None:
        if self.fault not in ALL_FAULTS:
            raise ValueError(
                f"unknown fault {self.fault!r}; one of {sorted(ALL_FAULTS)}"
            )
        if self.site not in ALL_SITES:
            raise ValueError(
                f"unknown site {self.site!r}; one of {sorted(ALL_SITES)}"
            )
        if self.fault in VALUE_FAULTS and self.site not in VALUE_SITES:
            raise ValueError(
                f"value fault {self.fault!r} only applies at {VALUE_SITES}"
            )
        if (self.fault in WORKER_FAULTS) != (self.site == WORKER_SITE):
            raise ValueError(
                f"fault {self.fault!r} and site {self.site!r} do not match: "
                f"'crash' is the only fault of the 'worker' site"
            )
        if (self.fault in SERVICE_FAULTS) != (self.site == SERVICE_SITE):
            raise ValueError(
                f"fault {self.fault!r} and site {self.site!r} do not match: "
                f"{sorted(SERVICE_FAULTS)} are the faults of the "
                f"'service' site"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        object.__setattr__(self, "techniques", tuple(self.techniques))

    def applies_to(self, technique: str) -> bool:
        return not self.techniques or technique in self.techniques

    def to_dict(self) -> dict:
        return {
            "fault": self.fault,
            "site": self.site,
            "probability": self.probability,
            "techniques": list(self.techniques),
            "delay": self.delay,
            "payload_bytes": self.payload_bytes,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultSpec":
        return cls(
            fault=payload["fault"],
            site=payload["site"],
            probability=float(payload.get("probability", 1.0)),
            techniques=tuple(payload.get("techniques", ())),
            delay=float(payload.get("delay", 0.05)),
            payload_bytes=int(payload.get("payload_bytes", 64 << 20)),
        )


def stable_uniform(*key) -> float:
    """A stable uniform draw in [0, 1) from a structured key.

    Uses blake2b (not Python's salted ``hash``) so decisions agree
    across processes and interpreter invocations.  Public because the
    chaos-soak harness draws its client-side schedule (which request gets
    which perturbation) from the same primitive that drives plan
    decisions — one seed determines the whole chaos run.
    """
    token = "|".join(str(part) for part in key).encode("utf-8")
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


_uniform = stable_uniform


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs sharing one decision seed.

    ``decide`` returns the first spec that fires for the given grid
    coordinates — a deterministic function of the plan alone, so every
    runner (serial, parallel, resumed) sees identical faults.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def enabled(self) -> bool:
        """False for the empty plan — the runners' zero-cost short-circuit."""
        return bool(self.specs)

    # ------------------------------------------------------------------
    def decide(
        self,
        site: str,
        technique: str,
        query_name: str,
        run: int,
        invocation: int = 0,
    ) -> Optional[FaultSpec]:
        """The spec that fires at these coordinates, or None.

        ``invocation`` distinguishes repeated calls of the same hook
        within one cell (``est_card`` runs once per substructure); the
        injector supplies a per-site call counter.  Worker-site
        decisions use ``invocation=0`` always, so a retried cell
        re-encounters the same decision — a deterministically crashing
        cell stays crashed no matter how often it is retried.
        """
        for index, spec in enumerate(self.specs):
            if spec.site != site or not spec.applies_to(technique):
                continue
            if spec.probability >= 1.0:
                return spec
            if spec.probability <= 0.0:
                continue
            draw = _uniform(
                self.seed, index, site, technique, query_name, run, invocation
            )
            if draw < spec.probability:
                return spec
        return None

    def sites(self) -> Tuple[str, ...]:
        """The distinct sites this plan can touch (wrap only these)."""
        seen = []
        for spec in self.specs:
            if spec.site not in seen:
                seen.append(spec.site)
        return tuple(seen)

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        return cls(
            specs=tuple(
                FaultSpec.from_dict(s) for s in payload.get("specs", ())
            ),
            seed=int(payload.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the compact inline syntax or a JSON plan file.

        ``text`` is either a path to a JSON plan (detected by an
        existing file) or comma-separated
        ``site:fault[:probability[:tech+tech]]`` tokens.
        """
        path = Path(text)
        if path.is_file():
            plan = cls.from_json(path.read_text(encoding="utf-8"))
            return cls(specs=plan.specs, seed=seed if seed else plan.seed)
        specs = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            parts = token.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad fault token {token!r}; expected "
                    f"site:fault[:probability[:tech+tech]]"
                )
            site, fault = parts[0], parts[1]
            probability = float(parts[2]) if len(parts) > 2 else 1.0
            techniques: Tuple[str, ...] = ()
            if len(parts) > 3 and parts[3]:
                techniques = tuple(
                    t for t in parts[3].split("+") if t
                )
            specs.append(
                FaultSpec(
                    fault=fault,
                    site=site,
                    probability=probability,
                    techniques=techniques,
                )
            )
        return cls(specs=tuple(specs), seed=seed)


#: the shared no-op plan: ``enabled`` is False, so runners skip every
#: injection hook entirely (mirroring ``repro.obs.trace.NO_TRACE``)
NO_FAULTS = FaultPlan()

"""Soft per-cell memory budgets over :mod:`tracemalloc`.

A summary build or a pathological estimator can balloon the process
until the OS kills it — losing not just the cell but the worker (or the
whole serial sweep).  :class:`MemoryBudget` is the graceful alternative:
it measures Python-level allocation growth since the cell began and
raises :class:`~repro.core.errors.MemoryBudgetExceeded` at the next
cooperative check point (``Estimator.check_deadline``, called between
substructures — the same place the time budget is enforced).  The
runners record the cell as ``error="memory"`` and move on.

The budget is *soft*: an allocation spike between check points is not
prevented, only detected.  That is the right trade-off for a benchmark
harness — the goal is a well-formed record instead of a dead process,
not a hard rlimit.  Measurement uses :mod:`tracemalloc`, which slows
allocation while active, so budgets are strictly opt-in (``None`` =
disabled, the default everywhere).
"""

from __future__ import annotations

import tracemalloc
from typing import Optional

from ..core.errors import MemoryBudgetExceeded


class MemoryBudget:
    """Context manager bounding allocation growth during one cell.

    >>> with MemoryBudget(64 << 20) as guard:
    ...     ...          # run the estimator
    ...     guard.check()  # raises MemoryBudgetExceeded when over budget
    """

    def __init__(self, budget_bytes: Optional[int]) -> None:
        self.budget_bytes = budget_bytes
        self._baseline = 0
        self._started_tracing = False
        self.active = False

    def __enter__(self) -> "MemoryBudget":
        if self.budget_bytes is None:
            return self
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        self._baseline = tracemalloc.get_traced_memory()[0]
        self.active = True
        return self

    def __exit__(self, *exc) -> None:
        self.active = False
        if self._started_tracing:
            tracemalloc.stop()
            self._started_tracing = False

    # ------------------------------------------------------------------
    def current_bytes(self) -> int:
        """Allocation growth since the guard was entered."""
        if not self.active:
            return 0
        return max(0, tracemalloc.get_traced_memory()[0] - self._baseline)

    def check(self) -> None:
        """Raise :class:`MemoryBudgetExceeded` once the budget is gone."""
        if not self.active or self.budget_bytes is None:
            return
        used = self.current_bytes()
        if used > self.budget_bytes:
            raise MemoryBudgetExceeded(
                f"soft memory budget exhausted: {used} bytes used "
                f"of {self.budget_bytes} allowed"
            )

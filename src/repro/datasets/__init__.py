"""Synthetic stand-ins for the paper's five evaluation datasets.

Real LUBM/YAGO/DBpedia/AIDS/Human dumps are unavailable offline and beyond
pure-Python scale; each generator reproduces its dataset's distinguishing
statistics at reduced scale (see DESIGN.md, "Substitutions").
"""

from typing import Callable, Dict

from . import aids, dbpedia, human, lubm, yago
from .base import Dataset, ZipfSampler
from .example import figure1_graph, figure1_query

_GENERATORS: Dict[str, Callable[..., Dataset]] = {
    "lubm": lubm.generate,
    "yago": yago.generate,
    "dbpedia": dbpedia.generate,
    "aids": aids.generate,
    "human": human.generate,
}

#: dataset names in the paper's Table 2 order
DATASET_NAMES = ("lubm", "yago", "dbpedia", "aids", "human")


def load_dataset(name: str, **kwargs) -> Dataset:
    """Generate one of the five evaluation datasets by name."""
    if name not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; available: {DATASET_NAMES}")
    return _GENERATORS[name](**kwargs)


__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "ZipfSampler",
    "figure1_graph",
    "figure1_query",
    "load_dataset",
]

"""LUBM-like synthetic university RDF data.

LUBM (Guo, Pan & Heflin 2005) is itself a synthetic generator: universities
contain departments, departments employ professors and lecturers and enroll
students, students take courses and have advisors, publications have
authors.  The paper populates LUBM with scale factor 80 (12.3M edges, 35
vertex and 35 edge labels); we implement the same schema with a
``universities`` scale knob at laptop scale.

The generator follows LUBM's published cardinality ranges (e.g. 15..25
departments per university, ~1:8..14 faculty:undergrad ratio, 2..4
courses per faculty) so the join selectivities the benchmark queries
exercise have the same shape as the original data.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..graph.digraph import Graph
from .base import Dataset

# ---------------------------------------------------------------------------
# vertex labels (entity types)
# ---------------------------------------------------------------------------
UNIVERSITY = 0
DEPARTMENT = 1
FULL_PROFESSOR = 2
ASSOCIATE_PROFESSOR = 3
ASSISTANT_PROFESSOR = 4
LECTURER = 5
GRADUATE_STUDENT = 6
UNDERGRADUATE_STUDENT = 7
COURSE = 8
GRADUATE_COURSE = 9
PUBLICATION = 10
RESEARCH_GROUP = 11
#: every professor rank also carries the generic label
PROFESSOR = 12
#: every student kind also carries the generic label
STUDENT = 13
CHAIR = 14

VERTEX_LABEL_NAMES = {
    UNIVERSITY: "University",
    DEPARTMENT: "Department",
    FULL_PROFESSOR: "FullProfessor",
    ASSOCIATE_PROFESSOR: "AssociateProfessor",
    ASSISTANT_PROFESSOR: "AssistantProfessor",
    LECTURER: "Lecturer",
    GRADUATE_STUDENT: "GraduateStudent",
    UNDERGRADUATE_STUDENT: "UndergraduateStudent",
    COURSE: "Course",
    GRADUATE_COURSE: "GraduateCourse",
    PUBLICATION: "Publication",
    RESEARCH_GROUP: "ResearchGroup",
    PROFESSOR: "Professor",
    STUDENT: "Student",
    CHAIR: "Chair",
}

# ---------------------------------------------------------------------------
# edge labels (predicates)
# ---------------------------------------------------------------------------
SUB_ORGANIZATION_OF = 0
WORKS_FOR = 1
MEMBER_OF = 2
ADVISOR = 3
TEACHER_OF = 4
TAKES_COURSE = 5
PUBLICATION_AUTHOR = 6
UNDERGRADUATE_DEGREE_FROM = 7
MASTERS_DEGREE_FROM = 8
DOCTORAL_DEGREE_FROM = 9
HEAD_OF = 10
TEACHING_ASSISTANT_OF = 11

EDGE_LABEL_NAMES = {
    SUB_ORGANIZATION_OF: "subOrganizationOf",
    WORKS_FOR: "worksFor",
    MEMBER_OF: "memberOf",
    ADVISOR: "advisor",
    TEACHER_OF: "teacherOf",
    TAKES_COURSE: "takesCourse",
    PUBLICATION_AUTHOR: "publicationAuthor",
    UNDERGRADUATE_DEGREE_FROM: "undergraduateDegreeFrom",
    MASTERS_DEGREE_FROM: "mastersDegreeFrom",
    DOCTORAL_DEGREE_FROM: "doctoralDegreeFrom",
    HEAD_OF: "headOf",
    TEACHING_ASSISTANT_OF: "teachingAssistantOf",
}


def generate(
    universities: int = 4, seed: int = 0, seal: bool = True
) -> Dataset:
    """Generate a LUBM-like graph with the given number of universities.

    ``seal`` (default) returns the compact sealed graph.
    """
    rng = random.Random(seed)
    graph = Graph()
    university_ids: List[int] = [
        graph.add_vertex((UNIVERSITY,)) for _ in range(universities)
    ]

    for university in university_ids:
        _populate_university(graph, rng, university, university_ids)

    return Dataset(
        name="lubm",
        graph=graph.seal() if seal else graph,
        vertex_label_names=VERTEX_LABEL_NAMES,
        edge_label_names=EDGE_LABEL_NAMES,
        notes=f"LUBM-like, universities={universities}, seed={seed}",
    )


def _populate_university(
    graph: Graph,
    rng: random.Random,
    university: int,
    all_universities: List[int],
) -> None:
    for _ in range(rng.randint(4, 8)):
        _populate_department(graph, rng, university, all_universities)


def _populate_department(
    graph: Graph,
    rng: random.Random,
    university: int,
    all_universities: List[int],
) -> None:
    department = graph.add_vertex((DEPARTMENT,))
    graph.add_edge(department, university, SUB_ORGANIZATION_OF)
    for _ in range(rng.randint(1, 2)):
        group = graph.add_vertex((RESEARCH_GROUP,))
        graph.add_edge(group, department, SUB_ORGANIZATION_OF)

    faculty: List[int] = []
    courses: List[int] = []
    graduate_courses: List[int] = []
    for rank, low, high in (
        (FULL_PROFESSOR, 2, 4),
        (ASSOCIATE_PROFESSOR, 3, 5),
        (ASSISTANT_PROFESSOR, 3, 5),
        (LECTURER, 2, 4),
    ):
        for _ in range(rng.randint(low, high)):
            labels = (rank, PROFESSOR) if rank != LECTURER else (rank,)
            member = graph.add_vertex(labels)
            faculty.append(member)
            graph.add_edge(member, department, WORKS_FOR)
            graph.add_edge(
                member, rng.choice(all_universities), UNDERGRADUATE_DEGREE_FROM
            )
            if rank != LECTURER:
                graph.add_edge(
                    member, rng.choice(all_universities), MASTERS_DEGREE_FROM
                )
                graph.add_edge(
                    member, rng.choice(all_universities), DOCTORAL_DEGREE_FROM
                )
            # every faculty member teaches 1-2 courses and 1-2 grad courses
            for _ in range(rng.randint(1, 2)):
                course = graph.add_vertex((COURSE,))
                courses.append(course)
                graph.add_edge(member, course, TEACHER_OF)
            for _ in range(rng.randint(1, 2)):
                course = graph.add_vertex((GRADUATE_COURSE, COURSE))
                graduate_courses.append(course)
                graph.add_edge(member, course, TEACHER_OF)

    # the chair is a full professor heading the department
    chair = faculty[0]
    graph.add_vertex_label(chair, CHAIR)
    graph.add_edge(chair, department, HEAD_OF)

    professors = [f for f in faculty if PROFESSOR in graph.vertex_labels(f)]

    graduate_students: List[int] = []
    for _ in range(rng.randint(len(faculty) * 2, len(faculty) * 3)):
        student = graph.add_vertex((GRADUATE_STUDENT, STUDENT))
        graduate_students.append(student)
        graph.add_edge(student, department, MEMBER_OF)
        graph.add_edge(student, rng.choice(professors), ADVISOR)
        graph.add_edge(
            student, rng.choice(all_universities), UNDERGRADUATE_DEGREE_FROM
        )
        for course in rng.sample(graduate_courses, min(rng.randint(1, 3), len(graduate_courses))):
            graph.add_edge(student, course, TAKES_COURSE)
        if courses and rng.random() < 0.2:
            graph.add_edge(
                student, rng.choice(courses), TEACHING_ASSISTANT_OF
            )

    for _ in range(rng.randint(len(faculty) * 8, len(faculty) * 14)):
        student = graph.add_vertex((UNDERGRADUATE_STUDENT, STUDENT))
        graph.add_edge(student, department, MEMBER_OF)
        if rng.random() < 0.15:
            graph.add_edge(student, rng.choice(professors), ADVISOR)
        for course in rng.sample(courses, min(rng.randint(2, 4), len(courses))):
            graph.add_edge(student, course, TAKES_COURSE)

    # publications: authored by faculty and their graduate students
    for author in faculty:
        for _ in range(rng.randint(0, 5)):
            publication = graph.add_vertex((PUBLICATION,))
            graph.add_edge(publication, author, PUBLICATION_AUTHOR)
            if graduate_students and rng.random() < 0.6:
                graph.add_edge(
                    publication,
                    rng.choice(graduate_students),
                    PUBLICATION_AUTHOR,
                )

"""Human-like protein-protein interaction network.

The Human PPI dataset (paper, Table 2): one dense graph — 4.7K vertices,
86K directed edges (43K undirected interactions), average degree ~37, max
degree 771, 89 distinct vertex labels (protein annotations), and — the
detail the paper leans on — **zero edge labels**.  All edges carry the
unlabeled label 0, which is why SumRDF overestimates on Human (merging
buckets aggregates *all* edge weights between them, Section 6.2.1) and why
IMPR performs comparatively well (no label to fail a walk on).

The generator uses a community structure (proteins cluster into
complexes) plus skewed cross-community edges to reproduce the density and
hub profile.
"""

from __future__ import annotations

import random

from ..graph.digraph import Graph
from ..graph.digraph import UNLABELED
from .base import Dataset, ZipfSampler

#: number of distinct vertex labels in real Human
NUM_VERTEX_LABELS = 89


def generate(
    num_vertices: int = 900,
    avg_degree: float = 16.0,
    num_communities: int = 40,
    seed: int = 0,
    seal: bool = True,
) -> Dataset:
    """Generate a Human-like dense unlabeled-edge interaction network.

    ``seal`` (default) returns the compact sealed graph.
    """
    rng = random.Random(seed)
    graph = Graph()
    label_sampler = ZipfSampler(NUM_VERTEX_LABELS, exponent=1.1)
    community = []
    for _ in range(num_vertices):
        graph.add_vertex({label_sampler.sample(rng)})
        community.append(rng.randrange(num_communities))

    # undirected interactions: avg_degree counts undirected neighbors
    target_interactions = int(num_vertices * avg_degree / 2)
    hub_sampler = ZipfSampler(num_vertices, exponent=0.6)
    added = 0
    attempts = 0
    while added < target_interactions and attempts < target_interactions * 20:
        attempts += 1
        u = hub_sampler.sample(rng)
        if rng.random() < 0.7:
            # intra-community interaction
            peers = [v for v in range(max(0, u - 40), min(num_vertices, u + 40))
                     if community[v] == community[u] and v != u]
            if not peers:
                continue
            v = rng.choice(peers)
        else:
            v = hub_sampler.sample(rng)
            if u == v:
                continue
        if graph.has_edge(u, v, UNLABELED):
            continue
        graph.add_undirected_edge(u, v, UNLABELED)
        added += 1
    return Dataset(
        name="human",
        graph=graph.seal() if seal else graph,
        notes=(
            f"Human-like PPI, |V|={num_vertices}, avg undirected degree="
            f"{avg_degree}, seed={seed}"
        ),
    )

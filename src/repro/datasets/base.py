"""Shared infrastructure for the synthetic dataset generators.

The paper evaluates on LUBM, YAGO, DBpedia, AIDS and Human (Table 2).  Real
dumps are unavailable offline and far beyond pure-Python scale, so each
generator reproduces its dataset's *distinguishing statistics* at a reduced
scale — label vocabulary sizes, degree skew, predicate skew, and the
collection-vs-single-graph distinction — because those are what drive the
estimator behaviours the paper reports (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..graph.digraph import Graph


@dataclass
class Dataset:
    """A named data graph with optional label-name dictionaries."""

    name: str
    graph: Graph
    vertex_label_names: Dict[int, str] = field(default_factory=dict)
    edge_label_names: Dict[int, str] = field(default_factory=dict)
    #: free-form provenance notes (scale, seed, generator parameters)
    notes: str = ""

    def stats_row(self) -> Dict[str, object]:
        return self.graph.stats().as_row()


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Unnormalized Zipf weights ``1/rank^exponent`` for ranks 1..n."""
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


class ZipfSampler:
    """Samples ranks 0..n-1 with Zipf-distributed probabilities.

    Uses the inverse-CDF over precomputed cumulative weights; sampling is
    O(log n) and fully deterministic given the caller's RNG.
    """

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n <= 0:
            raise ValueError("ZipfSampler needs a positive support size")
        weights = zipf_weights(n, exponent)
        total = 0.0
        self._cumulative: List[float] = []
        for w in weights:
            total += w
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        target = rng.random() * self._total
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo


def preferential_targets(
    rng: random.Random, num_vertices: int, num_samples: int, exponent: float
) -> List[int]:
    """Vertex ids sampled with rank-Zipf skew (hubs get low ids)."""
    sampler = ZipfSampler(num_vertices, exponent)
    return [sampler.sample(rng) for _ in range(num_samples)]

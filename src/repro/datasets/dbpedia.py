"""DBpedia-like synthetic knowledge graph.

DBpedia's distinguishing statistics (paper, Table 2): an enormous edge
label vocabulary (39.6K predicates) with *extreme* predicate skew (the top
predicate has 98.7M of 225M triples, the bottom has 1), a compact vertex
label vocabulary (244 ontology classes), and huge hubs (max degree 7.3M on
66.9M vertices).

The generator reproduces those contrasts at reduced scale: a scaled
predicate vocabulary with Zipf exponent > 1 (a handful of predicates own
most edges, a long tail owns one edge each), 244-class vertex labels, and
strongly rank-skewed endpoints producing mega-hubs.
"""

from __future__ import annotations

import random

from ..graph.digraph import Graph
from .base import Dataset, ZipfSampler

#: number of distinct vertex labels (ontology classes) in real DBpedia
NUM_VERTEX_LABELS = 244


def generate(
    num_vertices: int = 8000,
    num_edges: int = 24000,
    num_edge_labels: int = 500,
    seed: int = 0,
    seal: bool = True,
) -> Dataset:
    """Generate a DBpedia-like graph with heavy predicate and degree skew.

    ``seal`` (default) returns the compact sealed graph.
    """
    rng = random.Random(seed)
    graph = Graph()
    vertex_label_sampler = ZipfSampler(NUM_VERTEX_LABELS, exponent=1.2)
    for _ in range(num_vertices):
        graph.add_vertex({vertex_label_sampler.sample(rng)})

    predicate_sampler = ZipfSampler(num_edge_labels, exponent=1.3)
    endpoint_sampler = ZipfSampler(num_vertices, exponent=0.95)
    added = 0
    while added < num_edges:
        src = endpoint_sampler.sample(rng)
        dst = endpoint_sampler.sample(rng)
        if src == dst:
            continue
        label = predicate_sampler.sample(rng)
        if graph.add_edge(src, dst, label):
            added += 1
    return Dataset(
        name="dbpedia",
        graph=graph.seal() if seal else graph,
        notes=(
            f"DBpedia-like, |V|={num_vertices}, |E|={num_edges}, "
            f"elabels<={num_edge_labels}, seed={seed}"
        ),
    )

"""AIDS-like collection of small molecule graphs.

The AIDS antiviral screen dataset (paper, Table 2): 10K small graphs with
254K vertices and 548K (directed) edges total, 50 distinct vertex labels
(atom types, heavily skewed toward carbon), 4 distinct edge labels (bond
types), tiny max degree (22) — molecules are sparse and near-planar.

Since the dataset contains multiple graphs, the paper aggregates the
number of embeddings across all graphs; we represent the collection as a
disjoint union with ``Graph.num_graphs`` recording the member count, so
aggregate counting falls out of ordinary matching.

Each member graph is a random molecule-like structure: a random tree
(chemists' skeleton) plus occasional ring-closing edges, with undirected
bonds stored as edge pairs.
"""

from __future__ import annotations

import random
from typing import List

from ..graph.digraph import Graph
from .base import Dataset, ZipfSampler

#: number of distinct vertex labels (atom types) in real AIDS
NUM_VERTEX_LABELS = 50
#: number of distinct edge labels (bond types) in real AIDS
NUM_EDGE_LABELS = 4


def generate(
    num_graphs: int = 300,
    min_atoms: int = 8,
    max_atoms: int = 40,
    seed: int = 0,
    seal: bool = True,
) -> Dataset:
    """Generate an AIDS-like collection of ``num_graphs`` molecules.

    ``seal`` (default) returns the compact sealed graph; ``seal=False``
    keeps the mutable dict-backed form.
    """
    rng = random.Random(seed)
    graph = Graph(num_graphs=num_graphs)
    atom_sampler = ZipfSampler(NUM_VERTEX_LABELS, exponent=1.6)
    bond_sampler = ZipfSampler(NUM_EDGE_LABELS, exponent=1.2)
    for _ in range(num_graphs):
        _add_molecule(graph, rng, rng.randint(min_atoms, max_atoms),
                      atom_sampler, bond_sampler)
    return Dataset(
        name="aids",
        graph=graph.seal() if seal else graph,
        notes=(
            f"AIDS-like, graphs={num_graphs}, atoms per graph in "
            f"[{min_atoms},{max_atoms}], seed={seed}"
        ),
    )


def _add_molecule(
    graph: Graph,
    rng: random.Random,
    num_atoms: int,
    atom_sampler: ZipfSampler,
    bond_sampler: ZipfSampler,
) -> None:
    atoms: List[int] = [
        graph.add_vertex({atom_sampler.sample(rng)}) for _ in range(num_atoms)
    ]
    # skeleton: random tree with small fan-out (molecules are chain-like)
    for i in range(1, num_atoms):
        parent = atoms[rng.randrange(max(1, i - 3), i)] if i > 1 else atoms[0]
        graph.add_undirected_edge(atoms[i], parent, bond_sampler.sample(rng))
    # ring closures: a few extra bonds between nearby atoms
    num_rings = rng.randint(0, max(1, num_atoms // 8))
    for _ in range(num_rings):
        i = rng.randrange(num_atoms)
        j = rng.randrange(num_atoms)
        if i != j and abs(i - j) <= 6:
            graph.add_undirected_edge(
                atoms[i], atoms[j], bond_sampler.sample(rng)
            )

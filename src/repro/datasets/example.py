"""The paper's running example (Figure 1).

The figure itself is not reproduced in the text, but its structure is fully
determined by the worked examples:

* Figure 2's characteristic sets: ``({A}, {a, c})`` with count 1 and
  frequencies a=2, c=1 (center v0); ``({A}, {a, b, d})`` with count 1 and
  frequencies 1/1/1 (center v1); ``({C}, {c})`` with count 2, frequency 2
  (centers v4, v5).
* Section 2's three embeddings of the triangle query
  ``u0 --a--> u1 --b--> u2 --c--> u0`` with ``L(u0) = {A}``:
  ``{(u0,v0),(u1,v2),(u2,v4)}``, ``{(u0,v1),(u1,v3),(u2,v5)}`` and
  ``{(u0,v0),(u1,v1),(u2,v0)}`` (the last uses the c-labeled self loop
  at v0).
* Section 3.4's IMPR walkthrough: the visible subgraph of walk <v0, v1>
  excludes v7 and the edges (v2,v4), (v3,v5), (v3,v7).
* Section 4's eight relations R_A, R_B, R_C, R_a..R_e.

These pin the data graph to the one built below; the module doubles as a
cross-validation asset — several tests check our estimators against the
numbers worked out in the paper.
"""

from __future__ import annotations

from ..graph.digraph import Graph
from ..graph.query import QueryGraph

# vertex labels
LABEL_A, LABEL_B, LABEL_C = 0, 1, 2
# edge labels
EDGE_A, EDGE_B, EDGE_C, EDGE_D, EDGE_E = 0, 1, 2, 3, 4

VERTEX_LABEL_NAMES = {LABEL_A: "A", LABEL_B: "B", LABEL_C: "C"}
EDGE_LABEL_NAMES = {
    EDGE_A: "a",
    EDGE_B: "b",
    EDGE_C: "c",
    EDGE_D: "d",
    EDGE_E: "e",
}


def figure1_graph() -> Graph:
    """The data graph G of Figure 1(b)."""
    graph = Graph()
    labels = {
        0: (LABEL_A,),
        1: (LABEL_A,),
        2: (LABEL_B,),
        3: (LABEL_B,),
        4: (LABEL_C,),
        5: (LABEL_C,),
        6: (),
        7: (),
    }
    for v in range(8):
        graph.add_vertex(labels[v])
    for src, dst, label in (
        (0, 2, EDGE_A),
        (0, 1, EDGE_A),
        (1, 3, EDGE_A),
        (2, 4, EDGE_B),
        (3, 5, EDGE_B),
        (1, 0, EDGE_B),
        (4, 0, EDGE_C),
        (5, 1, EDGE_C),
        (0, 0, EDGE_C),
        (1, 6, EDGE_D),
        (3, 7, EDGE_E),
    ):
        graph.add_edge(src, dst, label)
    return graph


def figure1_query() -> QueryGraph:
    """The triangle query Q of Figure 1(a); its true cardinality in G is 3."""
    return QueryGraph(
        vertex_labels=[(LABEL_A,), (), ()],
        edges=[(0, 1, EDGE_A), (1, 2, EDGE_B), (2, 0, EDGE_C)],
    )


#: the true cardinality of the Figure 1 query (Section 2 lists the three
#: embeddings explicitly)
FIGURE1_TRUE_CARDINALITY = 3

"""YAGO-like synthetic knowledge graph.

YAGO's distinguishing statistics (paper, Table 2): a *very large vertex
label vocabulary* (188K distinct labels for 12.8M vertices), a moderate
edge label vocabulary (91), low average degree (2.47) with heavy skew
(max degree 0.25M), and mild predicate skew (max 8.3K triples per
predicate over 15.8M edges).

The generator reproduces those contrasts at reduced scale: Zipf-distributed
vertex labels drawn from a vocabulary proportional to the vertex count,
91 Zipf-distributed edge labels, and rank-skewed endpoints producing a
power-law degree distribution.  Label sparsity is what drives IMPR's and
CS's sampling failures on YAGO in the paper.
"""

from __future__ import annotations

import random

from ..graph.digraph import Graph
from .base import Dataset, ZipfSampler

#: number of distinct edge labels in real YAGO
NUM_EDGE_LABELS = 91


def generate(
    num_vertices: int = 6000,
    num_edges: int = 9000,
    seed: int = 0,
    label_vocabulary: int = 0,
    seal: bool = True,
) -> Dataset:
    """Generate a YAGO-like graph.

    ``label_vocabulary`` defaults to ``num_vertices // 15``, mirroring the
    real ratio of distinct vertex labels to vertices (188K / 12.8M ~ 1/68,
    raised to 1/15 here so small graphs still show label diversity).
    """
    rng = random.Random(seed)
    if label_vocabulary <= 0:
        label_vocabulary = max(50, num_vertices // 15)
    graph = Graph()
    vertex_label_sampler = ZipfSampler(label_vocabulary, exponent=1.1)
    for _ in range(num_vertices):
        count = 1 if rng.random() < 0.7 else 2
        labels = {vertex_label_sampler.sample(rng) for _ in range(count)}
        graph.add_vertex(labels)

    edge_label_sampler = ZipfSampler(NUM_EDGE_LABELS, exponent=0.8)
    endpoint_sampler = ZipfSampler(num_vertices, exponent=0.8)
    added = 0
    while added < num_edges:
        src = endpoint_sampler.sample(rng)
        dst = endpoint_sampler.sample(rng)
        if src == dst:
            continue
        label = edge_label_sampler.sample(rng)
        if graph.add_edge(src, dst, label):
            added += 1
    return Dataset(
        name="yago",
        graph=graph.seal() if seal else graph,
        notes=(
            f"YAGO-like, |V|={num_vertices}, |E|={num_edges}, "
            f"vlabels<={label_vocabulary}, seed={seed}"
        ),
    )

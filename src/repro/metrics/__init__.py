"""Evaluation measures (paper, Section 5.1)."""

from .charts import bar, render_signed_chart
from .qerror import (
    QErrorSummary,
    geometric_mean,
    is_underestimate,
    percentile,
    qerror,
    signed_qerror,
)
from .report import format_value, render_grouped_qerrors, render_table

__all__ = [
    "QErrorSummary",
    "bar",
    "render_signed_chart",
    "format_value",
    "geometric_mean",
    "is_underestimate",
    "percentile",
    "qerror",
    "render_grouped_qerrors",
    "render_table",
    "signed_qerror",
]

"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates the paper's figures as text tables: one
row per group (query / bucket / topology / size) and one column block per
technique.  Keeping rendering here lets every bench print consistently.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.2e}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    formatted = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)


def render_grouped_qerrors(
    group_name: str,
    groups: Sequence[str],
    per_technique: Mapping[str, Mapping[str, object]],
    metric: str = "median q-error",
    title: Optional[str] = None,
) -> str:
    """Table with one row per group and one column per technique.

    ``per_technique[technique][group]`` holds the metric value (or None for
    unsupported/failed combinations, rendered as '-').
    """
    headers = [group_name] + list(per_technique.keys())
    rows = []
    for group in groups:
        row: List[object] = [group]
        for technique in per_technique:
            row.append(per_technique[technique].get(group))
        rows.append(row)
    return render_table(headers, rows, title=title)

"""ASCII bar charts for signed q-errors.

The paper's accuracy figures are log-scale bar charts whose y-axis is the
q-error with the under/over-estimation direction made explicit (Section
5.1: "since the q-error alone does not differentiate the under/over-
estimation, we represent it explicitly on the y-axis").  This module
renders the same form in plain text: one row per group, one bar per
technique, bars growing left for underestimation and right for
overestimation, with log-scaled lengths.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

#: glyphs for the two directions
UNDER_GLYPH = "<"
OVER_GLYPH = ">"


def bar(signed_qerror: float, half_width: int = 20, max_magnitude: float = 1e6) -> str:
    """Render one signed q-error as a centered ASCII bar.

    ``signed_qerror`` follows :func:`repro.metrics.qerror.signed_qerror`:
    magnitude >= 1, sign = estimation direction.  The bar is log-scaled:
    each character is a constant factor, the full half-width spans
    ``max_magnitude``.
    """
    magnitude = abs(signed_qerror)
    if magnitude < 1.0 or math.isnan(magnitude):
        magnitude = 1.0
    scale = math.log10(max(magnitude, 1.0)) / math.log10(max_magnitude)
    length = min(half_width, int(round(scale * half_width)))
    if signed_qerror < 0:
        left = UNDER_GLYPH * length
        return left.rjust(half_width) + "|" + " " * half_width
    right = OVER_GLYPH * length
    return " " * half_width + "|" + right.ljust(half_width)


def render_signed_chart(
    group_name: str,
    groups: Sequence[str],
    per_technique: Mapping[str, Mapping[str, Optional[float]]],
    half_width: int = 20,
    max_magnitude: float = 1e6,
    title: Optional[str] = None,
) -> str:
    """Figure-style chart: per group, one signed bar per technique.

    ``per_technique[technique][group]`` is a signed q-error (None for
    unsupported combinations).  The chart is the textual cousin of the
    paper's Figures 6-9: direction at a glance, magnitude on a log scale.
    """
    label_width = max(
        [len(g) for g in groups] + [len(t) for t in per_technique] + [4]
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    axis = (
        " " * (label_width + 2)
        + f"under {UNDER_GLYPH * 3}".ljust(half_width)
        + "1"
        + f"{OVER_GLYPH * 3} over".rjust(half_width)
    )
    lines.append(axis)
    for group in groups:
        lines.append(f"{group}:")
        for technique, values in per_technique.items():
            value = values.get(group)
            if value is None:
                body = "(cannot process)".center(2 * half_width + 1)
            else:
                body = bar(value, half_width, max_magnitude)
            lines.append(f"  {technique.rjust(label_width)} {body}")
    return "\n".join(lines)

"""The q-error accuracy measure (paper, Section 5.1).

q-error = max( max(1,c)/max(1,c_hat), max(1,c_hat)/max(1,c) )

where ``c`` is the true cardinality and ``c_hat`` the estimate.  Because
the q-error alone does not distinguish under- from over-estimation, the
paper plots it with an explicit sign; :func:`signed_qerror` returns the
negative q-error for underestimates accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


def qerror(true_cardinality: float, estimate: float) -> float:
    """The q-error of an estimate (>= 1.0; 1.0 is a perfect estimate).

    Non-finite inputs are rejected explicitly: ``NaN`` slips through a
    plain ``< 0`` check (every comparison with NaN is False) and
    ``max(1.0, nan)`` returns ``1.0``, so without this guard a NaN
    estimate would silently score as *perfect*.
    """
    if not math.isfinite(true_cardinality) or not math.isfinite(estimate):
        raise ValueError(
            f"cardinalities must be finite, got "
            f"({true_cardinality!r}, {estimate!r})"
        )
    if true_cardinality < 0 or estimate < 0:
        raise ValueError("cardinalities cannot be negative")
    true_clamped = max(1.0, true_cardinality)
    estimate_clamped = max(1.0, estimate)
    return max(true_clamped / estimate_clamped, estimate_clamped / true_clamped)


def signed_qerror(true_cardinality: float, estimate: float) -> float:
    """q-error with sign: negative for underestimation (paper's y-axis)."""
    value = qerror(true_cardinality, estimate)
    if max(1.0, estimate) < max(1.0, true_cardinality):
        return -value
    return value


def is_underestimate(true_cardinality: float, estimate: float) -> bool:
    return max(1.0, estimate) < max(1.0, true_cardinality)


@dataclass
class QErrorSummary:
    """Distributional summary of q-errors over a query set.

    The paper reports mean and standard deviation for LUBM and the
    5/25/50/75/95 percentiles for the other datasets (Section 5.1).
    """

    count: int
    mean: float
    std: float
    percentiles: Dict[int, float]
    underestimated_fraction: float
    failures: int = 0

    @classmethod
    def from_pairs(
        cls,
        pairs: Sequence[tuple],
        failures: int = 0,
    ) -> "QErrorSummary":
        """Build a summary from (true_cardinality, estimate) pairs."""
        values = sorted(qerror(c, e) for c, e in pairs)
        if not values:
            return cls(0, float("nan"), float("nan"), {}, float("nan"), failures)
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        percentiles = {
            p: percentile(values, p) for p in (5, 25, 50, 75, 95)
        }
        under = sum(1 for c, e in pairs if is_underestimate(c, e)) / n
        return cls(n, mean, math.sqrt(variance), percentiles, under, failures)

    @property
    def median(self) -> float:
        return self.percentiles.get(50, float("nan"))


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return sorted_values[low]
    fraction = rank - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the natural average for ratio-scale q-errors."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    return math.exp(sum(math.log(max(v, 1e-300)) for v in values) / len(values))

"""Phase-level latency breakdown of a sweep (Figure-10 style).

The paper's efficiency analysis (Section 6.4, Figure 10) compares the
techniques' on-line latencies and explains them by where the time goes —
e.g. SumRDF "spends most of the time on GetSubstructure and EstCard".
This module turns the per-record observability data collected by the
evaluation runners (``EvalRecord.phases`` / ``counters``, filled by
``run_cell``; see ``docs/tracing.md``) into that analysis:

* :func:`phase_breakdown` — mean seconds per Algorithm-1 phase per
  technique;
* :func:`counter_totals` — summed counters per technique (walks drawn,
  summary entries scanned, backtracking steps, ...);
* :func:`render_phase_report` — both as aligned text tables, the form
  every other report in the repository takes;
* ``gcare trace <results.jsonl>`` renders a sweep log from the CLI.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..metrics.report import render_table
from .runner import EvalRecord

#: canonical phase order: the off-line phase first, then the Algorithm-1
#: on-line phases in execution order
PHASE_ORDER = ("prepare", "decompose", "substructures", "agg", "selectivity")


def phase_breakdown(
    records: Iterable[EvalRecord],
) -> Dict[str, Dict[str, float]]:
    """Mean seconds per phase per technique.

    Only records carrying a phase split contribute (records from
    pre-observability logs have none).  The ``prepare`` phase appears on
    at most one record per technique per process — the cell that
    triggered summary construction — and is averaged over *those*
    records only, since it is an off-line, once-per-summary cost.
    """
    sums: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, Dict[str, int]] = {}
    for record in records:
        for phase, seconds in record.phases.items():
            sums.setdefault(record.technique, {}).setdefault(phase, 0.0)
            counts.setdefault(record.technique, {}).setdefault(phase, 0)
            sums[record.technique][phase] += seconds
            counts[record.technique][phase] += 1
    return {
        technique: {
            phase: total / counts[technique][phase]
            for phase, total in phases.items()
        }
        for technique, phases in sums.items()
    }


def counter_totals(
    records: Iterable[EvalRecord],
) -> Dict[str, Dict[str, int]]:
    """Summed counter values per technique over all traced records."""
    totals: Dict[str, Dict[str, int]] = {}
    for record in records:
        for name, value in record.counters.items():
            bucket = totals.setdefault(record.technique, {})
            bucket[name] = bucket.get(name, 0) + value
    return totals


def _ordered_phases(breakdown: Dict[str, Dict[str, float]]) -> List[str]:
    present = {phase for phases in breakdown.values() for phase in phases}
    ordered = [phase for phase in PHASE_ORDER if phase in present]
    ordered += sorted(present - set(PHASE_ORDER))
    return ordered


def render_phase_report(
    records: Sequence[EvalRecord],
    title: Optional[str] = None,
) -> str:
    """Phase table (mean ms per phase per technique) + counter table."""
    records = list(records)
    breakdown = phase_breakdown(records)
    if not breakdown:
        return "no phase data (run the sweep with tracing: gcare sweep --trace)"
    phases = _ordered_phases(breakdown)
    online = [p for p in phases if p != "prepare"]
    rows: List[List[object]] = []
    for technique in sorted(breakdown):
        row: List[object] = [technique.upper()]
        for phase in phases:
            seconds = breakdown[technique].get(phase)
            row.append(None if seconds is None else seconds * 1000.0)
        row.append(
            sum(breakdown[technique].get(p, 0.0) for p in online) * 1000.0
        )
        rows.append(row)
    headers = ["technique"] + [f"{p} (ms)" for p in phases] + ["online (ms)"]
    parts = [render_table(headers, rows, title=title)]

    totals = counter_totals(records)
    counter_rows: List[List[object]] = []
    for technique in sorted(totals):
        for name in sorted(totals[technique]):
            counter_rows.append([technique.upper(), name, totals[technique][name]])
    if counter_rows:
        parts.append(
            render_table(
                ["technique", "counter", "total"],
                counter_rows,
                title="counter totals",
            )
        )
    return "\n\n".join(parts)


def render_trace_log(path: str) -> str:
    """Render the phase report of a results log written by a traced sweep."""
    from .results_log import ResultsLog

    records = ResultsLog(path).load()
    return render_phase_report(
        records, title=f"phase breakdown: {path} ({len(records)} records)"
    )

"""Table 3 — the summarized accurate/inaccurate comparison matrix.

The paper condenses all experiments into a per-technique verdict over six
query-feature columns (LUBM queryset; #embeddings below/above 10^3; query
size 3-6 / 9-12; tree vs graph topology).  We derive the same matrix from
our measured records: a technique is *accurate* for a column when its
median q-error is within a threshold and it successfully processed at
least half of the column's runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.registry import ALL_TECHNIQUES
from ..graph.topology import ACYCLIC_TOPOLOGIES, Topology
from ..metrics.qerror import QErrorSummary
from ..metrics.report import render_table
from .runner import EvalRecord

#: median q-error at or below which a technique counts as accurate
ACCURACY_THRESHOLD = 10.0

ACCURATE = "✓"
INACCURATE = "✗"
NO_DATA = "-"

#: column ids in Table 3 order
COLUMNS = (
    "LUBM queryset",
    "#emb <= 10^3",
    "#emb > 10^3",
    "size 3~6",
    "size 9~12",
    "tree",
    "graph",
)


def _verdict(pairs: List, failures: int) -> str:
    total = len(pairs) + failures
    if total == 0:
        return NO_DATA
    if failures > total / 2:
        return INACCURATE
    if not pairs:
        return INACCURATE
    summary = QErrorSummary.from_pairs(pairs, failures=failures)
    return ACCURATE if summary.median <= ACCURACY_THRESHOLD else INACCURATE


def _column_of(record: EvalRecord) -> List[str]:
    """All Table 3 columns a record contributes to."""
    columns: List[str] = []
    if record.query_name.startswith("Q"):
        columns.append("LUBM queryset")
        return columns
    if record.true_cardinality <= 10**3:
        columns.append("#emb <= 10^3")
    else:
        columns.append("#emb > 10^3")
    size = int(record.groups.get("size", "0"))
    if 3 <= size <= 6:
        columns.append("size 3~6")
    elif 9 <= size <= 12:
        columns.append("size 9~12")
    topology = record.groups.get("topology")
    if topology in {t.value for t in ACYCLIC_TOPOLOGIES}:
        columns.append("tree")
    elif topology is not None:
        columns.append("graph")
    return columns


def table3_matrix(
    records: Iterable[EvalRecord],
    techniques: Sequence[str] = ALL_TECHNIQUES,
) -> Dict[str, Dict[str, str]]:
    """Compute {technique: {column: verdict}} from evaluation records."""
    pairs: Dict[str, Dict[str, List]] = {
        t: {c: [] for c in COLUMNS} for t in techniques
    }
    failures: Dict[str, Dict[str, int]] = {
        t: {c: 0 for c in COLUMNS} for t in techniques
    }
    for record in records:
        if record.technique not in pairs:
            continue
        for column in _column_of(record):
            if record.failed:
                failures[record.technique][column] += 1
            else:
                pairs[record.technique][column].append(
                    (record.true_cardinality, record.estimate)
                )
    return {
        technique: {
            column: _verdict(
                pairs[technique][column], failures[technique][column]
            )
            for column in COLUMNS
        }
        for technique in techniques
    }


def render_table3(matrix: Dict[str, Dict[str, str]]) -> str:
    """Render the verdict matrix as a Table 3 style text table."""
    rows = [
        [technique.upper()] + [matrix[technique][c] for c in COLUMNS]
        for technique in matrix
    ]
    return render_table(
        ["technique"] + list(COLUMNS),
        rows,
        title=(
            f"accurate ({ACCURATE}) = median q-error <= {ACCURACY_THRESHOLD} "
            f"and <50% failures (Table 3)"
        ),
    )

"""Benchmark harness: per-figure experiment runners and report tables."""

from . import figures, regression, tables, workloads
from .figures import ExperimentResult
from .runner import (
    EvalRecord,
    EvaluationRunner,
    NamedQuery,
    group_by,
    mean_elapsed,
    summarize,
)

__all__ = [
    "EvalRecord",
    "EvaluationRunner",
    "ExperimentResult",
    "NamedQuery",
    "figures",
    "regression",
    "group_by",
    "mean_elapsed",
    "summarize",
    "tables",
    "workloads",
]

"""Benchmark harness: per-figure experiment runners and report tables."""

from . import figures, regression, tables, workloads
from .figures import ExperimentResult
from .parallel import ParallelEvaluationRunner
from .results_log import ResultsLog
from .runner import (
    EvalRecord,
    EvaluationRunner,
    NamedQuery,
    derive_seed,
    group_by,
    mean_elapsed,
    run_cell,
    summarize,
)
from .summary_cache import SummaryCache, graph_fingerprint, summary_key

__all__ = [
    "EvalRecord",
    "EvaluationRunner",
    "ExperimentResult",
    "NamedQuery",
    "ParallelEvaluationRunner",
    "ResultsLog",
    "derive_seed",
    "figures",
    "regression",
    "group_by",
    "mean_elapsed",
    "run_cell",
    "summarize",
    "SummaryCache",
    "graph_fingerprint",
    "summary_key",
    "tables",
    "workloads",
]

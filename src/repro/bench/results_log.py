"""Append-only JSONL results log: the checkpoint/resume substrate.

Long sweeps (the paper runs every query 30 times per technique) must
survive interruption — a crash, a timeout-killed worker, or plain ^C
should not throw away hours of completed cells.  The log is the simplest
durable structure that supports this:

* one JSON object per line, the :meth:`repro.bench.runner.EvalRecord.to_dict`
  form of one completed ``(technique, query, run)`` cell;
* records are appended (and flushed) as they complete, in completion
  order — the file is a stream, not a snapshot;
* a re-invocation loads the log, indexes it by cell key, and skips every
  cell already present, so no cell is ever executed twice;
* a torn final line (the process died mid-write) is ignored on load.

Because cell seeds are derived deterministically (see
:func:`repro.bench.runner.derive_seed`), a resumed sweep produces exactly
the records the uninterrupted sweep would have — the merged log is
indistinguishable from a single run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Union

from .runner import CellKey, EvalRecord

PathLike = Union[str, Path]


class ResultsLog:
    """A results log bound to one file path.

    The file need not exist yet; it is created on the first
    :meth:`append`.  One instance may be shared by a runner and its
    monitoring code, but not across processes — workers send records to
    the parent, and only the parent writes.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultsLog({str(self.path)!r})"

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[EvalRecord]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # torn write from an interrupted process; everything
                    # before it is intact, so just stop here
                    return
                yield EvalRecord.from_dict(payload)

    def load(self) -> List[EvalRecord]:
        """All intact records, in completion order."""
        return list(self)

    def completed(self) -> Dict[CellKey, EvalRecord]:
        """Logged records indexed by cell key (last write wins)."""
        return {record.key: record for record in self}

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: EvalRecord) -> None:
        """Durably append one completed cell."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict()) + "\n")
            handle.flush()

"""Append-only JSONL results log: the checkpoint/resume substrate.

Long sweeps (the paper runs every query 30 times per technique) must
survive interruption — a crash, a timeout-killed worker, or plain ^C
should not throw away hours of completed cells.  The log is the simplest
durable structure that supports this:

* one JSON object per line, the :meth:`repro.bench.runner.EvalRecord.to_dict`
  form of one completed ``(technique, query, run)`` cell;
* records are appended (and flushed — optionally fsynced) as they
  complete, in completion order — the file is a stream, not a snapshot;
* a re-invocation loads the log, indexes it by cell key, and skips every
  cell already present, so no cell is ever executed twice;
* a torn final line (the process died mid-write) is ignored on load, and
  :meth:`ResultsLog.recover` audits the file and *truncates* the torn
  tail in place, so subsequent appends never graft onto a partial line.

Because cell seeds are derived deterministically (see
:func:`repro.bench.runner.derive_seed`), a resumed sweep produces exactly
the records the uninterrupted sweep would have — the merged log is
indistinguishable from a single run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .runner import CellKey, EvalRecord

PathLike = Union[str, Path]


@dataclass
class RecoveryReport:
    """Outcome of a :meth:`ResultsLog.recover` audit."""

    path: str
    #: intact records kept in the log
    records: int
    #: bytes removed from the torn tail (0 when the log was intact)
    truncated_bytes: int = 0
    #: 1-based line number where the tear began, or None
    truncated_at_line: Optional[int] = None
    #: True when the final record merely lacked its newline and was repaired
    repaired_newline: bool = False

    @property
    def ok(self) -> bool:
        """True when the log needed no truncation."""
        return self.truncated_bytes == 0


class ResultsLog:
    """A results log bound to one file path.

    The file need not exist yet; it is created on the first
    :meth:`append`.  One instance may be shared by a runner and its
    monitoring code, but not across processes — workers send records to
    the parent, and only the parent writes.

    ``fsync=True`` makes every append force the line to stable storage
    (``os.fsync``) — slower, but a machine losing power mid-sweep keeps
    every acknowledged record, not just what the OS got around to
    writing back.
    """

    def __init__(self, path: PathLike, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        #: cached append handle; opening per record made the open/close
        #: syscall pair the dominant cost of a fast cell (see bench/perf)
        self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultsLog({str(self.path)!r})"

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[EvalRecord]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # torn write from an interrupted process; everything
                    # before it is intact, so just stop here
                    return
                yield EvalRecord.from_dict(payload)

    def load(self) -> List[EvalRecord]:
        """All intact records, in completion order."""
        return list(self)

    def completed(self) -> Dict[CellKey, EvalRecord]:
        """Logged records indexed by cell key (last write wins)."""
        return {record.key: record for record in self}

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Audit the log and truncate a torn tail in place.

        Scans every line: a line that fails to decode (or decodes to
        something :meth:`EvalRecord.from_dict` rejects) marks the start
        of the torn tail — it and everything after it are removed, and
        the dropped cells will simply be re-executed on resume (the
        determinism contract makes the re-run records identical).  A
        final record that parses but lost its newline is repaired by
        appending one, so the next append cannot graft onto it.  A
        missing or intact log is a no-op.
        """
        self.close()  # never truncate/repair underneath the cached handle
        if not self.path.exists():
            return RecoveryReport(str(self.path), 0)
        records = 0
        good_end = 0
        torn_line: Optional[int] = None
        needs_newline = False
        offset = 0
        with self.path.open("rb") as handle:
            for line_no, raw in enumerate(handle, 1):
                stripped = raw.strip()
                if stripped:
                    try:
                        EvalRecord.from_dict(
                            json.loads(stripped.decode("utf-8"))
                        )
                    except Exception:
                        torn_line = line_no
                        break
                    records += 1
                offset += len(raw)
                good_end = offset
                needs_newline = not raw.endswith(b"\n")
        size = self.path.stat().st_size
        truncated = size - good_end if torn_line is not None else 0
        if truncated:
            with self.path.open("r+b") as handle:
                handle.truncate(good_end)
        if needs_newline:
            with self.path.open("ab") as handle:
                handle.write(b"\n")
        return RecoveryReport(
            str(self.path),
            records,
            truncated_bytes=truncated,
            truncated_at_line=torn_line,
            repaired_newline=needs_newline,
        )

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: EvalRecord) -> None:
        """Durably append one completed cell.

        The append handle is opened once and reused: append mode
        (``O_APPEND``) means every write lands at the current end of
        file regardless of what other handles did in between, and
        flush-per-record (plus optional ``fsync``) keeps the durability
        guarantee identical to the old open-per-record path.
        """
        handle = self._handle
        if handle is None or handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = self._handle = self.path.open("a", encoding="utf-8")
        handle.write(json.dumps(record.to_dict()) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        """Drop the cached append handle (reopened lazily on next append)."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._handle = None

    def __enter__(self) -> "ResultsLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Tracked performance benchmarks for the sealed graph substrate.

``gcare bench`` (and ``benchmarks/perf_bench.py``) run a fixed-seed suite
over the bundled AIDS-like dataset and emit a JSON report — checked in as
``BENCH_PR10.json`` (``BENCH_PR9.json`` is the previous baseline) —
covering:

* graph build + seal time and the ``deep_sizeof`` shrink factor,
* per-technique summary preparation, cold vs. hydrated from an exported
  summary blob (the prepare-once path the parallel runner uses),
* estimate hot loops (repeated ``estimate()`` against a warm shared
  cache) on the dict-backed vs. sealed substrate,
* the exact matcher over the full workload on both substrates: the
  sealed and bitset passes pin the pure-Python kernel backend (the
  metrics' historical semantics), and a separate ``matcher_kernels``
  pass measures the default numpy-dispatch configuration on its own
  fresh seal,
* shared-memory worker attach vs. per-worker unpickling of the sealed
  graph (the transport the parallel runner uses),
* results-log append throughput (the persistent-handle fast path),
* the estimation service (``gcare serve``): cold vs warm-cache p50 and a
  seeded closed-loop load run (p50/p95/p99 + throughput under
  ``report["serve"]``) on the example graph,
* warm restart: boot time of a service reattaching a predecessor's
  checksummed shared-memory arenas versus a cold boot that must prepare
  every summary from scratch (``speedups["warm_restart"]``),
* incremental update: absorbing a delta batch via ``reseal`` + per-
  technique ``apply_deltas`` versus rebuilding the sealed substrate and
  every summary from scratch (``speedups["incremental_update"]``, on a
  ~10x ``aids`` generation so the cold path has real work to skip),
* in full mode, a real ``--workers 4`` sweep wall-clock + peak worker
  RSS with shared memory on vs. off.

All wall-clock metrics are *per-operation* seconds (medians over
``reps``), so quick and full runs are comparable, and regression checks
against a baseline file compare like with like.  The suite never asserts
on absolute speed by itself — :func:`check_regression` applies a slack
factor (default 3x) so CI machines of different speeds don't flap.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence

from .. import kernels as _kernels
from ..core.errors import GCareError
from ..core.registry import available_techniques, create_estimator
from ..datasets import load_dataset
from ..graph.digraph import Graph
from ..matching.homomorphism import HomomorphismCounter
from ..obs.size import deep_sizeof
from .workloads import workload

#: benchmark schema version (bump when metrics change incompatibly)
SCHEMA_VERSION = 10

#: estimator constructor kwargs, fixed so runs are reproducible
_TECH_KWARGS: Dict[str, dict] = {
    "wj": {"sampling_ratio": 0.03, "seed": 7},
    "jsub": {"sampling_ratio": 0.03, "seed": 7},
    "impr": {"seed": 7},
    "cs": {"seed": 7},
}

#: techniques whose estimate hot loop is benchmarked (cheap enough to
#: repeat; sumrdf/bs estimates run for seconds per query and would
#: dominate the suite without adding substrate signal)
_HOT_TECHNIQUES = ("wj", "jsub", "cs")


def _median_time(fn: Callable[[], object], reps: int) -> float:
    """Median wall-clock seconds of ``reps`` runs of ``fn``."""
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _estimate_all(estimator, queries) -> None:
    for query in queries:
        try:
            estimator.estimate(query)
        except GCareError:
            pass  # unsupported shapes still exercise the dispatch path


def run_benchmarks(quick: bool = False, seed: int = 1) -> dict:
    """Run the suite; return the JSON-serializable report."""
    reps = 1 if quick else 3
    hot_iters = 2 if quick else 6
    report: dict = {
        "meta": {
            "bench": "gcare-perf",
            "schema_version": SCHEMA_VERSION,
            "quick": quick,
            "seed": seed,
            "python": platform.python_version(),
            "dataset": f"aids(seed={seed})",
        },
        "timings_s": {},
        "speedups": {},
    }
    timings = report["timings_s"]
    speedups = report["speedups"]

    # --- load + seal -------------------------------------------------
    timings["load_dict"] = _median_time(
        lambda: load_dataset("aids", seed=seed, seal=False), reps
    )
    dataset = load_dataset("aids", seed=seed, seal=False)
    graph_dict = dataset.graph
    timings["seal"] = _median_time(graph_dict.seal, reps)
    graph_sealed = graph_dict.seal()

    size_dict = deep_sizeof(graph_dict)
    size_sealed = deep_sizeof(graph_sealed)
    report["graph"] = {
        "num_vertices": graph_dict.num_vertices,
        "num_edges": graph_dict.num_edges,
        "deep_sizeof_dict": size_dict,
        "deep_sizeof_sealed": size_sealed,
        "shrink_factor": round(size_dict / size_sealed, 2),
    }

    queries = [named.query for named in workload("aids", dataset_seed=seed)]
    if quick:
        queries = queries[:8]
    hot_queries = queries[:6]
    report["meta"]["num_queries"] = len(queries)

    # --- exact matcher, both substrates, bitset kernel on/off ---------
    def matcher_pass(graph: Graph, use_bitsets: Optional[bool] = None) -> None:
        for query in queries:
            HomomorphismCounter(graph, query, use_bitsets=use_bitsets).count()

    # every matcher variant gets one untimed warmup pass so the medians
    # measure steady state: the one-off shared-cache build (bitset
    # arenas, candidate plans, pair views) otherwise lands in whichever
    # variant happens to touch its graph first and skews the ratios
    matcher_pass(graph_dict)
    matcher_dict = _median_time(lambda: matcher_pass(graph_dict), reps)
    # the sealed and bitset passes pin the pure-Python kernel backend so
    # these metrics keep their historical (pre-kernels) semantics; each
    # backend runs on its own fresh seal so graph-level caches are built
    # and reused by one backend only (contents are bit-identical either
    # way — the isolation is for timing honesty, not correctness)
    with _kernels.force_backend("python"):
        graph_sealed_py = graph_dict.seal()
        matcher_pass(graph_sealed_py, use_bitsets=False)
        matcher_sealed = _median_time(
            lambda: matcher_pass(graph_sealed_py, use_bitsets=False), reps
        )
        matcher_pass(graph_sealed_py, use_bitsets=True)
        matcher_bitset = _median_time(
            lambda: matcher_pass(graph_sealed_py, use_bitsets=True), reps
        )
    # the default configuration users get: auto kernel dispatch (numpy
    # when installed) on a sealed graph
    matcher_pass(graph_sealed)
    matcher_kernels = _median_time(lambda: matcher_pass(graph_sealed), reps)
    timings["matcher_dict_per_query"] = matcher_dict / len(queries)
    timings["matcher_sealed_per_query"] = matcher_sealed / len(queries)
    timings["matcher_bitset_per_query"] = matcher_bitset / len(queries)
    timings["matcher_kernels_per_query"] = matcher_kernels / len(queries)
    speedups["matcher"] = round(matcher_dict / matcher_sealed, 2)
    speedups["matcher_bitset"] = round(matcher_dict / matcher_bitset, 2)
    speedups["matcher_kernels"] = round(matcher_dict / matcher_kernels, 2)

    # pinned per-backend matcher passes, each on its own fresh seal.
    # ``matcher_kernels`` above keeps its historical meaning (whatever
    # the default dispatch resolves to); these pin the accelerated legs
    # explicitly so the c-vs-numpy ratio is an apples-to-apples claim
    matcher_backends: Dict[str, float] = {}
    for backend in ("numpy", "c"):
        available = (
            _kernels.numpy_available()
            if backend == "numpy"
            else _kernels.native_available()
        )
        if not available:
            continue
        with _kernels.force_backend(backend):
            graph_fresh = graph_dict.seal()
            matcher_pass(graph_fresh)
            elapsed = _median_time(lambda: matcher_pass(graph_fresh), reps)
            del graph_fresh
        matcher_backends[backend] = elapsed
        timings[f"matcher_kernels_{backend}_per_query"] = (
            elapsed / len(queries)
        )
        speedups[f"matcher_kernels_{backend}"] = round(
            matcher_dict / elapsed, 2
        )
    # the per-backend seals are sizeable cyclic object graphs; reclaim
    # them now so later allocation-heavy phases (summary hydration) are
    # not taxed by gen-2 collections walking dead matcher state
    gc.collect()
    if "numpy" in matcher_backends and "c" in matcher_backends:
        speedups["matcher_c_vs_numpy"] = round(
            matcher_backends["numpy"] / matcher_backends["c"], 2
        )
        if not quick:
            assert speedups["matcher_c_vs_numpy"] >= 2.0, (
                "native matcher kernel must be >= 2x the numpy leg, got "
                f"{speedups['matcher_c_vs_numpy']}x"
            )

    # --- worker transport: shm attach vs unpickling the sealed graph --
    _bench_shm_transport(graph_sealed, timings, speedups, reps)

    # --- results log: persistent-handle append throughput -------------
    _bench_results_log(timings, reps)

    # --- estimation service: cold vs warm-cache latency + load run ----
    _bench_serve(timings, speedups, report, quick, seed)

    # --- warm restart: manifest reattach vs cold prepare-and-publish --
    _bench_warm_restart(graph_sealed, timings, speedups, quick, seed)

    # --- incremental update: O(delta) reseal+maintain vs cold rebuild --
    _bench_incremental(timings, speedups, quick, seed)

    if not quick:
        # --- real parallel sweep: wall clock + peak worker RSS --------
        _bench_parallel_sweep(seed, timings, speedups, report)

    # --- prepare: cold vs hydrated from an exported blob --------------
    # available_techniques(), not ALL_TECHNIQUES: without numpy the bs
    # metrics drop out and compare_reports skips them against a full
    # baseline, so the suite stays runnable on the pure-Python leg
    for name in available_techniques():
        kwargs = _TECH_KWARGS.get(name, {})
        cold_samples = []
        blob: Optional[bytes] = None
        for _ in range(reps):
            estimator = create_estimator(name, graph_sealed, **kwargs)
            start = time.perf_counter()
            estimator.prepare()
            cold_samples.append(time.perf_counter() - start)
            blob = estimator.export_summary()
        timings[f"prepare_cold.{name}"] = statistics.median(cold_samples)

        def hydrate() -> None:
            fresh = create_estimator(name, graph_sealed, **kwargs)
            fresh.import_summary(blob)

        timings[f"prepare_cached.{name}"] = _median_time(hydrate, reps)

    # --- estimate hot loops, both substrates --------------------------
    for name in _HOT_TECHNIQUES:
        kwargs = _TECH_KWARGS.get(name, {})
        per_op: Dict[str, float] = {}
        for label, graph in (("dict", graph_dict), ("sealed", graph_sealed)):
            estimator = create_estimator(name, graph, **kwargs)
            estimator.prepare()
            _estimate_all(estimator, hot_queries)  # warm caches

            def hot_loop() -> None:
                for _ in range(hot_iters):
                    _estimate_all(estimator, hot_queries)

            total = _median_time(hot_loop, reps)
            per_op[label] = total / (hot_iters * len(hot_queries))
        timings[f"estimate_hot_dict.{name}"] = per_op["dict"]
        timings[f"estimate_hot_sealed.{name}"] = per_op["sealed"]
        speedups[f"{name}_hot"] = round(per_op["dict"] / per_op["sealed"], 2)

    if not quick:
        # the BENCH_PR5 regression this suite now guards: JSUB's sealed
        # hot loop must beat the dict substrate (full mode only — quick
        # runs use too few iterations for the ratio to be stable)
        assert speedups["jsub_hot"] > 1.0, (
            "JSUB sealed hot loop regressed below the dict substrate: "
            f"{speedups['jsub_hot']}x"
        )

    return report


def _bench_shm_transport(
    graph_sealed: Graph, timings: dict, speedups: dict, reps: int
) -> None:
    """Worker warm-start cost: attach the shm graph vs. unpickle a copy.

    This is the per-worker startup the parallel runner pays once per
    process: the pickle path deserializes every CSR array into private
    memory, the shm path maps the published segment and builds lazy
    views.  Skipped (metrics absent) on platforms without shared memory.
    """
    import pickle

    from .. import shm as shm_mod
    from ..graph.compact import CompactGraph

    if not shm_mod.shm_supported():
        return
    blob = pickle.dumps(graph_sealed)
    timings["worker_unpickle_sealed"] = _median_time(
        lambda: pickle.loads(blob), max(reps, 3)
    )
    handle, ref = graph_sealed.to_shm()
    try:
        timings["worker_attach_shm"] = _median_time(
            lambda: CompactGraph.from_shm(ref), max(reps, 3)
        )
    finally:
        handle.release()
    speedups["shm_attach"] = round(
        timings["worker_unpickle_sealed"] / timings["worker_attach_shm"], 2
    )


def _bench_results_log(timings: dict, reps: int) -> None:
    """Per-record append cost of the results log (persistent handle).

    Guards the satellite fix for the open/close-per-record append path:
    the persistent handle must keep a no-fsync append safely under a
    millisecond — if a regression reintroduces per-record opens the
    metric blows past the noise floor and the baseline check catches it.
    """
    import tempfile

    from .results_log import ResultsLog
    from .runner import EvalRecord

    record = EvalRecord(
        technique="wj", query_name="bench", run=0,
        true_cardinality=1, estimate=1.0, elapsed=0.0, groups={},
    )
    appends = 200
    with tempfile.TemporaryDirectory() as tmp:
        log = ResultsLog(os.path.join(tmp, "bench.jsonl"))

        def burst() -> None:
            for _ in range(appends):
                log.append(record)

        try:
            timings["results_log_append"] = (
                _median_time(burst, max(reps, 2)) / appends
            )
        finally:
            log.close()
    # micro-bench assertion: one buffered append through the cached
    # handle is a write+flush; 1 ms of budget is ~100x headroom on any
    # non-pathological filesystem, while open-per-record busts it
    assert timings["results_log_append"] < 0.001, (
        "results-log append path regressed: "
        f"{timings['results_log_append'] * 1e6:.0f} us/append"
    )


def _bench_serve(
    timings: dict, speedups: dict, report: dict, quick: bool, seed: int
) -> None:
    """SLO metrics of the estimation service on the example graph.

    Two measurements against one running
    :class:`~repro.serve.service.EstimationService`:

    * **cold vs warm p50** — every distinct (technique, query, run) cell
      is requested once (cold: a worker pipe round-trip per request) and
      then again (warm: result-cache hits answered in the parent).  The
      warm path must be at least **5x** faster at the median — that gap
      *is* the cache's reason to exist, and the assertion keeps it from
      silently eroding;
    * **closed-loop load run** — the seeded ``gcare load`` schedule
      (4 clients) against the same service; p50/p95/p99 + throughput
      land in ``report["serve"]``, the numbers ``docs/serving.md``'s
      SLO methodology is anchored to.

    The example graph is deliberate: estimates answer in microseconds
    there, so these metrics isolate the *serving machinery* (dispatch,
    queueing, cache) rather than estimator cost.
    """
    from ..datasets.example import figure1_graph
    from ..obs.histogram import LatencyHistogram
    from ..serve import (
        EstimationService,
        LoadGenerator,
        ServiceConfig,
        example_workload,
        local_executor,
    )

    techniques = ("wj", "cset")
    workload_queries = example_workload()
    runs = 4 if quick else 10
    load_requests = 60 if quick else 200
    config = ServiceConfig(
        techniques=techniques,
        seed=seed,
        time_limit=10.0,
        workers=2,
        cache_entries=4096,
        cache_ttl=None,
    )
    with EstimationService(figure1_graph(), config) as service:
        cells = [
            (technique, name, run)
            for technique in techniques
            for name in sorted(workload_queries)
            for run in range(runs)
        ]

        def measure(histogram: LatencyHistogram) -> None:
            for technique, name, run in cells:
                start = time.perf_counter()
                service.estimate(
                    technique, workload_queries[name], run=run, name=name
                )
                histogram.record(time.perf_counter() - start)

        cold = LatencyHistogram()
        measure(cold)  # first touch of every fingerprint: worker round-trips
        warm = LatencyHistogram()
        measure(warm)  # identical requests: parent-side cache hits
        timings["serve_cold_p50"] = cold.percentile(0.50)
        timings["serve_warm_p50"] = warm.percentile(0.50)
        speedups["serve_warm_cache"] = round(
            cold.percentile(0.50) / max(warm.percentile(0.50), 1e-9), 2
        )
        assert warm.percentile(0.50) * 5 <= cold.percentile(0.50), (
            "warm-cache p50 must be >= 5x faster than cold on the example "
            f"graph: cold {cold.percentile(0.50) * 1e6:.1f}us vs warm "
            f"{warm.percentile(0.50) * 1e6:.1f}us"
        )

        generator = LoadGenerator(
            workload_queries,
            techniques,
            requests=load_requests,
            clients=4,
            seed=seed,
        )
        result = generator.run(local_executor(service, workload_queries))
        summary = result.histogram.summary()
        timings["serve_load_p50"] = summary["p50_s"]
        report["serve"] = {
            "workload": "example",
            "techniques": list(techniques),
            "requests": result.requests,
            "clients": 4,
            "throughput_rps": round(result.throughput_rps, 1),
            "p50_s": summary["p50_s"],
            "p95_s": summary["p95_s"],
            "p99_s": summary["p99_s"],
            "cached": result.cached,
            "status_counts": {
                str(status): count
                for status, count in sorted(result.status_counts.items())
            },
            "cold_p50_s": cold.percentile(0.50),
            "warm_p50_s": warm.percentile(0.50),
        }


def _bench_warm_restart(
    graph_sealed: Graph, timings: dict, speedups: dict, quick: bool, seed: int
) -> None:
    """Warm restart (manifest reattach) versus cold boot of the service.

    A daemon with a ``state_dir`` disowns its shared-memory arenas at
    close and leaves a checksummed generation manifest behind; its
    successor reattaches the live arenas and skips the cold ``prepare``
    entirely.  This measures both boot paths on the AIDS-like graph with
    the two most prepare-heavy always-available techniques (``cset``,
    ``sumrdf``) — the workload warm restart exists for — and asserts the
    warm path is at least **5x** faster in full mode (quick mode only
    records; a single sample on a loaded CI box is too noisy to gate).

    Skipped entirely when shared memory is unsupported: without arenas
    there is nothing to hand off and every boot is cold by construction.
    """
    import shutil
    import tempfile

    from .. import shm as shm_mod
    from ..serve import EstimationService, ServiceConfig, discard_state

    if not shm_mod.shm_supported():  # pragma: no cover - exotic platform
        return
    reps = 1 if quick else 3
    state_dir = tempfile.mkdtemp(prefix="gcare-bench-state-")
    # one worker: the fork + ready handshake is identical on both paths,
    # so keeping it minimal isolates the cost warm restart removes (the
    # parent-side prepare + publish) instead of diluting it
    config = ServiceConfig(
        techniques=("cset", "sumrdf"),
        seed=seed,
        time_limit=30.0,
        workers=1,
        state_dir=state_dir,
        watchdog_interval=0.0,
    )
    cold_samples: List[float] = []
    warm_samples: List[float] = []
    try:
        for _ in range(reps):
            discard_state(state_dir)  # no manifest: forces the cold path
            start = time.perf_counter()
            service = EstimationService(graph_sealed, config).start()
            cold_samples.append(time.perf_counter() - start)
            counters = service.stats()["counters"]
            assert counters.get("serve.cold_starts") == 1, (
                "expected a cold boot after discard_state"
            )
            service.close()  # disowns the arenas + refreshes the manifest
            start = time.perf_counter()
            service = EstimationService(graph_sealed, config).start()
            warm_samples.append(time.perf_counter() - start)
            counters = service.stats()["counters"]
            assert counters.get("serve.warm_restarts") == 1, (
                "expected a warm reattach of the disowned generation"
            )
            service.close()
    finally:
        discard_state(state_dir)
        shutil.rmtree(state_dir, ignore_errors=True)
    cold = statistics.median(cold_samples)
    warm = statistics.median(warm_samples)
    timings["serve_cold_boot"] = cold
    timings["serve_warm_boot"] = warm
    speedups["warm_restart"] = round(cold / max(warm, 1e-9), 2)
    if not quick:
        assert warm * 5 <= cold, (
            "warm restart must reattach at least 5x faster than a cold "
            f"boot: cold {cold * 1e3:.1f}ms vs warm {warm * 1e3:.1f}ms"
        )


def _bench_incremental(
    timings: dict, speedups: dict, quick: bool, seed: int
) -> None:
    """Absorbing a delta batch: incremental path versus cold rebuild.

    The incremental-graph subsystem's headline claim.  Both paths start
    from identical state — a sealed graph with prepared ``cset`` and
    ``sumrdf`` summaries (the two prepare-heaviest always-available
    techniques, both of which maintain their summaries in place) — and
    absorb the same seeded 32-delta batch:

    * **cold** re-seals the mutated dict graph from scratch and
      re-prepares every summary — the only option before the mutation
      journal existed, and still the fallback for techniques without an
      ``update_summary`` hook;
    * **incremental** patches the CSR arenas (``reseal``, amortized
      O(delta)) and repairs each summary through
      ``Estimator.apply_deltas``.

    The graph is a ~10x ``aids`` generation so the cold path's O(V+E)
    work dwarfs fixed overheads; on it the incremental path must win by
    at least **10x** (asserted in full mode; quick runs use a smaller
    generation and only record).  Differential tests in
    ``tests/test_incremental.py`` prove the two paths produce
    bit-identical sealed graphs and estimates — this benchmark is purely
    about the time the journal saves.
    """
    from .stream import MutationStream

    techniques = ("cset", "sumrdf")
    num_graphs = 600 if quick else 3000
    reps = 1 if quick else 3
    batch_size = 32

    dataset = load_dataset(
        "aids", seed=seed, num_graphs=num_graphs, seal=False
    )
    stream = MutationStream(dataset.graph, seed=seed)
    sealed = stream.twin.seal()
    estimators = {}
    for name in techniques:
        estimator = create_estimator(
            name, sealed, **_TECH_KWARGS.get(name, {})
        )
        estimator.prepare()
        estimators[name] = estimator

    cold_samples: List[float] = []
    incremental_samples: List[float] = []
    for _ in range(reps):
        deltas = stream.next_batch(batch_size)
        # cold: rebuild the sealed substrate + every summary from scratch
        start = time.perf_counter()
        cold_sealed = stream.twin.seal()
        for name in techniques:
            fresh = create_estimator(
                name, cold_sealed, **_TECH_KWARGS.get(name, {})
            )
            fresh.prepare()
        cold_samples.append(time.perf_counter() - start)
        # incremental: patch the arenas + repair the summaries in place
        start = time.perf_counter()
        sealed = sealed.reseal(deltas)
        for estimator in estimators.values():
            mode = estimator.apply_deltas(sealed, deltas)
            assert mode == "incremental", (
                f"{estimator.name} fell back to a re-prepare; the metric "
                "would measure the wrong path"
            )
        incremental_samples.append(time.perf_counter() - start)

    cold = statistics.median(cold_samples)
    incremental = statistics.median(incremental_samples)
    timings["update_cold_rebuild"] = cold
    timings["update_incremental"] = incremental
    speedups["incremental_update"] = round(cold / max(incremental, 1e-9), 2)
    if not quick:
        assert incremental * 10 <= cold, (
            "incremental update must absorb a delta batch at least 10x "
            f"faster than a cold rebuild: cold {cold * 1e3:.1f}ms vs "
            f"incremental {incremental * 1e3:.1f}ms"
        )


def _bench_parallel_sweep(
    seed: int, timings: dict, speedups: dict, report: dict
) -> None:
    """End-to-end ``--workers 4`` sweep: wall clock + peak worker RSS.

    Each mode (shm on / off) runs in a fresh subprocess so
    ``RUSAGE_CHILDREN``'s high-water mark is per-mode instead of
    cumulative across the suite.  Workers use the ``spawn`` start method
    — under ``fork`` the pickle path inherits the parent's graph pages
    copy-on-write, which hides exactly the per-worker copy this metric
    exists to measure — and the graph is a ~10x ``aids`` generation so
    the copied pages dominate interpreter baseline RSS.  The query set
    is the standard small-graph workload: the label universe is shared,
    and a perf sweep only needs estimates, not true cardinalities, so
    re-deriving a workload against the large graph would waste minutes
    of exact counting for identical measurements.  Full mode only —
    spawning eight worker processes is not smoke-test material.
    """
    import json as _json
    import subprocess
    import sys

    script = r"""
import json, resource, sys, time
sys.path[:0] = {path!r}
from repro.bench.parallel import ParallelEvaluationRunner
from repro.bench.workloads import workload
from repro.datasets import load_dataset

use_shm = sys.argv[1] == "shm"
graph = load_dataset("aids", seed={seed}, num_graphs=3000).graph.seal()
queries = list(workload("aids", dataset_seed={seed}))
runner = ParallelEvaluationRunner(
    graph, ("cset", "wj", "cs"), seed=7, time_limit=30.0,
    workers=4, use_shm=use_shm, start_method="spawn",
)
start = time.perf_counter()
runner.run(queries, runs=2)
wall = time.perf_counter() - start
peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(json.dumps({{"wall_s": wall, "peak_worker_rss_kb": peak}}))
"""
    results = {}
    for mode in ("pickle", "shm"):
        proc = subprocess.run(
            [sys.executable, "-c", script.format(path=sys.path, seed=seed),
             mode],
            capture_output=True, text=True, timeout=900,
        )
        if proc.returncode != 0:  # pragma: no cover - bench robustness
            return  # leave the metrics absent rather than fail the suite
        results[mode] = _json.loads(proc.stdout.strip().splitlines()[-1])
    timings["sweep_w4_pickle"] = results["pickle"]["wall_s"]
    timings["sweep_w4_shm"] = results["shm"]["wall_s"]
    report["sweep_w4"] = {
        "workers": 4,
        "peak_worker_rss_kb_pickle": results["pickle"]["peak_worker_rss_kb"],
        "peak_worker_rss_kb_shm": results["shm"]["peak_worker_rss_kb"],
    }
    pickle_rss = results["pickle"]["peak_worker_rss_kb"]
    shm_rss = results["shm"]["peak_worker_rss_kb"]
    if shm_rss:
        speedups["sweep_rss_shrink"] = round(pickle_rss / shm_rss, 2)


def check_regression(
    current: dict, baseline: dict, factor: float = 3.0
) -> List[str]:
    """Compare ``current`` timings against a baseline report.

    Returns human-readable failure strings for every metric that got more
    than ``factor`` times slower than the baseline.  Metrics present in
    only one report are skipped (schema growth is not a regression), as
    are metrics still under a 1 ms noise floor — no-op prepares measure
    in microseconds, where timer jitter alone exceeds any ratio.
    """
    failures: List[str] = []
    base = baseline.get("timings_s", {})
    cur = current.get("timings_s", {})
    for metric, base_value in sorted(base.items()):
        value = cur.get(metric)
        if value is None or base_value <= 0:
            continue
        if value < 0.001:
            continue
        if value > base_value * factor:
            failures.append(
                f"{metric}: {value:.6f}s vs baseline {base_value:.6f}s "
                f"(> {factor:.1f}x slower)"
            )
    return failures


def compare_reports(
    current: dict,
    baseline: dict,
    tolerance: float = 0.20,
    noise_floor: float = 0.001,
) -> List[dict]:
    """Per-metric comparison rows between two benchmark reports.

    Each row is ``{metric, baseline_s, current_s, ratio, status}`` where
    ``ratio`` is current/baseline (< 1 means faster) and ``status`` is
    one of ``"faster"``, ``"ok"`` (within ``tolerance``), ``"noise"``
    (both sides under ``noise_floor``, where timer jitter dominates any
    ratio), or ``"regression"``.  Metrics present in only one report are
    skipped — schema growth is not a regression.
    """
    rows: List[dict] = []
    base = baseline.get("timings_s", {})
    cur = current.get("timings_s", {})
    for metric in sorted(set(base) & set(cur)):
        base_value = base[metric]
        value = cur[metric]
        if base_value <= 0 or value <= 0:
            continue
        ratio = value / base_value
        if value < noise_floor and base_value < noise_floor:
            status = "noise"
        elif ratio <= 1.0:
            status = "faster"
        elif ratio <= 1.0 + tolerance:
            status = "ok"
        else:
            status = "regression"
        rows.append(
            {
                "metric": metric,
                "baseline_s": base_value,
                "current_s": value,
                "ratio": ratio,
                "status": status,
            }
        )
    return rows


def format_comparison(rows: Sequence[dict], tolerance: float = 0.20) -> str:
    """Render :func:`compare_reports` rows as an aligned text table."""
    header = ("metric", "baseline", "current", "change", "status")
    table: List[tuple] = [header]
    for row in rows:
        ratio = row["ratio"]
        change = (
            f"{1.0 / ratio:.2f}x faster" if ratio <= 1.0
            else f"{ratio:.2f}x slower"
        )
        table.append(
            (
                row["metric"],
                f"{row['baseline_s'] * 1000.0:.3f} ms",
                f"{row['current_s'] * 1000.0:.3f} ms",
                change,
                row["status"].upper() if row["status"] == "regression"
                else row["status"],
            )
        )
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            .rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    regressions = sum(1 for r in rows if r["status"] == "regression")
    lines.append(
        f"{len(rows)} shared metric(s); {regressions} regression(s) past "
        f"{tolerance:.0%} tolerance"
    )
    return "\n".join(lines)


def format_report(report: dict) -> str:
    """Short human-readable summary of a benchmark report."""
    lines = [
        f"gcare perf bench (schema v{report['meta']['schema_version']}, "
        f"quick={report['meta']['quick']})",
        f"graph: |V|={report['graph']['num_vertices']} "
        f"|E|={report['graph']['num_edges']} "
        f"deep_sizeof shrink {report['graph']['shrink_factor']}x",
    ]
    for key, value in sorted(report["speedups"].items()):
        lines.append(f"speedup {key}: {value}x sealed vs dict")
    slowest = sorted(
        report["timings_s"].items(), key=lambda kv: kv[1], reverse=True
    )[:5]
    for metric, value in slowest:
        lines.append(f"{metric}: {value * 1000.0:.2f} ms")
    return "\n".join(lines)


def save_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)

"""Tracked performance benchmarks for the sealed graph substrate.

``gcare bench`` (and ``benchmarks/perf_bench.py``) run a fixed-seed suite
over the bundled AIDS-like dataset and emit a JSON report — checked in as
``BENCH_PR4.json`` — covering:

* graph build + seal time and the ``deep_sizeof`` shrink factor,
* per-technique summary preparation, cold vs. hydrated from an exported
  summary blob (the prepare-once path the parallel runner uses),
* estimate hot loops (repeated ``estimate()`` against a warm shared
  cache) on the dict-backed vs. sealed substrate,
* the exact matcher over the full workload on both substrates.

All wall-clock metrics are *per-operation* seconds (medians over
``reps``), so quick and full runs are comparable, and regression checks
against a baseline file compare like with like.  The suite never asserts
on absolute speed by itself — :func:`check_regression` applies a slack
factor (default 3x) so CI machines of different speeds don't flap.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..core.errors import GCareError
from ..core.registry import ALL_TECHNIQUES, create_estimator
from ..datasets import load_dataset
from ..graph.digraph import Graph
from ..matching.homomorphism import HomomorphismCounter
from ..obs.size import deep_sizeof
from .workloads import workload

#: benchmark schema version (bump when metrics change incompatibly)
SCHEMA_VERSION = 4

#: estimator constructor kwargs, fixed so runs are reproducible
_TECH_KWARGS: Dict[str, dict] = {
    "wj": {"sampling_ratio": 0.03, "seed": 7},
    "jsub": {"sampling_ratio": 0.03, "seed": 7},
    "impr": {"seed": 7},
    "cs": {"seed": 7},
}

#: techniques whose estimate hot loop is benchmarked (cheap enough to
#: repeat; sumrdf/bs estimates run for seconds per query and would
#: dominate the suite without adding substrate signal)
_HOT_TECHNIQUES = ("wj", "jsub", "cs")


def _median_time(fn: Callable[[], object], reps: int) -> float:
    """Median wall-clock seconds of ``reps`` runs of ``fn``."""
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _estimate_all(estimator, queries) -> None:
    for query in queries:
        try:
            estimator.estimate(query)
        except GCareError:
            pass  # unsupported shapes still exercise the dispatch path


def run_benchmarks(quick: bool = False, seed: int = 1) -> dict:
    """Run the suite; return the JSON-serializable report."""
    reps = 1 if quick else 3
    hot_iters = 2 if quick else 6
    report: dict = {
        "meta": {
            "bench": "gcare-perf",
            "schema_version": SCHEMA_VERSION,
            "quick": quick,
            "seed": seed,
            "python": platform.python_version(),
            "dataset": f"aids(seed={seed})",
        },
        "timings_s": {},
        "speedups": {},
    }
    timings = report["timings_s"]
    speedups = report["speedups"]

    # --- load + seal -------------------------------------------------
    timings["load_dict"] = _median_time(
        lambda: load_dataset("aids", seed=seed, seal=False), reps
    )
    dataset = load_dataset("aids", seed=seed, seal=False)
    graph_dict = dataset.graph
    timings["seal"] = _median_time(graph_dict.seal, reps)
    graph_sealed = graph_dict.seal()

    size_dict = deep_sizeof(graph_dict)
    size_sealed = deep_sizeof(graph_sealed)
    report["graph"] = {
        "num_vertices": graph_dict.num_vertices,
        "num_edges": graph_dict.num_edges,
        "deep_sizeof_dict": size_dict,
        "deep_sizeof_sealed": size_sealed,
        "shrink_factor": round(size_dict / size_sealed, 2),
    }

    queries = [named.query for named in workload("aids", dataset_seed=seed)]
    if quick:
        queries = queries[:8]
    hot_queries = queries[:6]
    report["meta"]["num_queries"] = len(queries)

    # --- exact matcher, both substrates ------------------------------
    def matcher_pass(graph: Graph) -> None:
        for query in queries:
            HomomorphismCounter(graph, query).count()

    matcher_dict = _median_time(lambda: matcher_pass(graph_dict), reps)
    matcher_sealed = _median_time(lambda: matcher_pass(graph_sealed), reps)
    timings["matcher_dict_per_query"] = matcher_dict / len(queries)
    timings["matcher_sealed_per_query"] = matcher_sealed / len(queries)
    speedups["matcher"] = round(matcher_dict / matcher_sealed, 2)

    # --- prepare: cold vs hydrated from an exported blob --------------
    for name in ALL_TECHNIQUES:
        kwargs = _TECH_KWARGS.get(name, {})
        cold_samples = []
        blob: Optional[bytes] = None
        for _ in range(reps):
            estimator = create_estimator(name, graph_sealed, **kwargs)
            start = time.perf_counter()
            estimator.prepare()
            cold_samples.append(time.perf_counter() - start)
            blob = estimator.export_summary()
        timings[f"prepare_cold.{name}"] = statistics.median(cold_samples)

        def hydrate() -> None:
            fresh = create_estimator(name, graph_sealed, **kwargs)
            fresh.import_summary(blob)

        timings[f"prepare_cached.{name}"] = _median_time(hydrate, reps)

    # --- estimate hot loops, both substrates --------------------------
    for name in _HOT_TECHNIQUES:
        kwargs = _TECH_KWARGS.get(name, {})
        per_op: Dict[str, float] = {}
        for label, graph in (("dict", graph_dict), ("sealed", graph_sealed)):
            estimator = create_estimator(name, graph, **kwargs)
            estimator.prepare()
            _estimate_all(estimator, hot_queries)  # warm caches

            def hot_loop() -> None:
                for _ in range(hot_iters):
                    _estimate_all(estimator, hot_queries)

            total = _median_time(hot_loop, reps)
            per_op[label] = total / (hot_iters * len(hot_queries))
        timings[f"estimate_hot_dict.{name}"] = per_op["dict"]
        timings[f"estimate_hot_sealed.{name}"] = per_op["sealed"]
        speedups[f"{name}_hot"] = round(per_op["dict"] / per_op["sealed"], 2)

    return report


def check_regression(
    current: dict, baseline: dict, factor: float = 3.0
) -> List[str]:
    """Compare ``current`` timings against a baseline report.

    Returns human-readable failure strings for every metric that got more
    than ``factor`` times slower than the baseline.  Metrics present in
    only one report are skipped (schema growth is not a regression), as
    are metrics still under a 1 ms noise floor — no-op prepares measure
    in microseconds, where timer jitter alone exceeds any ratio.
    """
    failures: List[str] = []
    base = baseline.get("timings_s", {})
    cur = current.get("timings_s", {})
    for metric, base_value in sorted(base.items()):
        value = cur.get(metric)
        if value is None or base_value <= 0:
            continue
        if value < 0.001:
            continue
        if value > base_value * factor:
            failures.append(
                f"{metric}: {value:.6f}s vs baseline {base_value:.6f}s "
                f"(> {factor:.1f}x slower)"
            )
    return failures


def format_report(report: dict) -> str:
    """Short human-readable summary of a benchmark report."""
    lines = [
        f"gcare perf bench (schema v{report['meta']['schema_version']}, "
        f"quick={report['meta']['quick']})",
        f"graph: |V|={report['graph']['num_vertices']} "
        f"|E|={report['graph']['num_edges']} "
        f"deep_sizeof shrink {report['graph']['shrink_factor']}x",
    ]
    for key, value in sorted(report["speedups"].items()):
        lines.append(f"speedup {key}: {value}x sealed vs dict")
    slowest = sorted(
        report["timings_s"].items(), key=lambda kv: kv[1], reverse=True
    )[:5]
    for metric, value in slowest:
        lines.append(f"{metric}: {value * 1000.0:.2f} ms")
    return "\n".join(lines)


def save_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)

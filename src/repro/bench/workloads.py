"""Cached workload construction for the benchmark figures.

Generating queries (and especially computing their true cardinalities) is
the expensive part of every experiment, and Figures 6(b)-(d) share one
YAGO workload, Figures 7/8/9 share the AIDS and Human workloads.  This
module memoizes datasets and generated workloads per configuration within
the process, so a pytest-benchmark session builds each workload once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import os
import pathlib

from ..datasets import load_dataset
from ..datasets.base import Dataset
from ..graph.topology import Topology
from ..workload.generator import QueryGenerator, WorkloadQuery
from ..workload.store import load_workload, save_workload
from .runner import NamedQuery

#: directory for cross-process workload caching; set the GCARE_WORKLOAD_DIR
#: environment variable to override, or set it to "" to disable
WORKLOAD_CACHE_DIR = os.environ.get("GCARE_WORKLOAD_DIR", ".gcare_workloads")

_DATASET_CACHE: Dict[Tuple, Dataset] = {}
_WORKLOAD_CACHE: Dict[Tuple, List[NamedQuery]] = {}

#: query sizes from Table 1
QUERY_SIZES = (3, 6, 9, 12)

#: default per-dataset topology lists (Human yields no cyclic queries at
#: scale, and star/clique coverage differs — see Section 6.2)
ALL_TOPOLOGIES = tuple(Topology)


def dataset(name: str, seed: int = 1, **kwargs) -> Dataset:
    """Memoized dataset construction."""
    key = (name, seed, tuple(sorted(kwargs.items())))
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_dataset(name, seed=seed, **kwargs)
    return _DATASET_CACHE[key]


def workload(
    dataset_name: str,
    topologies: Sequence[Topology] = ALL_TOPOLOGIES,
    sizes: Sequence[int] = QUERY_SIZES,
    per_combination: int = 2,
    seed: int = 3,
    dataset_seed: int = 1,
    time_budget: float = 6.0,
    dataset_kwargs: Optional[dict] = None,
) -> List[NamedQuery]:
    """Memoized topology x size workload for one dataset."""
    key = (
        dataset_name,
        tuple(t.value for t in topologies),
        tuple(sizes),
        per_combination,
        seed,
        dataset_seed,
        tuple(sorted((dataset_kwargs or {}).items())),
    )
    if key in _WORKLOAD_CACHE:
        return _WORKLOAD_CACHE[key]
    data = dataset(dataset_name, seed=dataset_seed, **(dataset_kwargs or {}))
    # the disk key must identify the generated *graph*, not just the
    # parameters: generator defaults may change between versions
    key_with_shape = key + (data.graph.num_vertices, data.graph.num_edges)
    disk_path = _disk_cache_path(key_with_shape)
    if disk_path is not None and disk_path.exists():
        loaded = load_workload(disk_path)
        named = [
            NamedQuery.from_workload(f"{dataset_name}_", i, wq)
            for i, wq in enumerate(loaded)
        ]
        _WORKLOAD_CACHE[key] = named
        return named
    generator = QueryGenerator(data.graph, seed=seed, count_time_limit=2.0)
    from ..workload.generator import _feasible

    queries: List[NamedQuery] = []
    raw_queries: List[WorkloadQuery] = []
    index = 0
    for topology in topologies:
        for size in sizes:
            if not _feasible(topology, size):
                continue
            for workload_query in generator.generate_diverse(
                topology,
                size,
                count=per_combination,
                max_attempts=200,
                time_budget=time_budget,
            ):
                raw_queries.append(workload_query)
                queries.append(
                    NamedQuery.from_workload(
                        f"{dataset_name}_", index, workload_query
                    )
                )
                index += 1
    _WORKLOAD_CACHE[key] = queries
    if disk_path is not None:
        save_workload(raw_queries, disk_path)
    return queries


def _disk_cache_path(key) -> "pathlib.Path | None":
    if not WORKLOAD_CACHE_DIR:
        return None
    import hashlib

    digest = hashlib.sha1(repr(key).encode()).hexdigest()[:16]
    return pathlib.Path(WORKLOAD_CACHE_DIR) / f"workload_{digest}.json"


def clear_caches() -> None:
    """Drop all memoized datasets and workloads (mainly for tests)."""
    _DATASET_CACHE.clear()
    _WORKLOAD_CACHE.clear()

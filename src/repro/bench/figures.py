"""Reproductions of every table and figure in the paper's evaluation.

Each function regenerates one artifact of Section 5/6 at laptop scale and
returns an :class:`ExperimentResult` whose ``table`` is a printable text
rendition of the paper's figure (rows = the figure's x-axis groups,
columns = techniques) and whose ``data`` carries the raw aggregates for
programmatic assertions.  The ``benchmarks/`` suite and the ``gcare`` CLI
are thin wrappers over this module.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.registry import ALL_TECHNIQUES, create_estimator
from ..datasets import DATASET_NAMES
from ..graph.topology import Topology
from ..matching.homomorphism import count_embeddings
from ..metrics.charts import render_signed_chart
from ..metrics.qerror import QErrorSummary, signed_qerror
from ..metrics.report import render_table
from ..plans.study import PlanQualityStudy, records_as_table
from ..workload import dbpedia_queries, lubm_queries
from ..workload.buckets import bucket_label, bucket_of
from . import workloads
from .runner import EvalRecord, EvaluationRunner, NamedQuery, group_by, summarize

#: sampling-based techniques (Section 6.3 varies their sampling ratio)
SAMPLING_TECHNIQUES = ("impr", "cs", "wj", "jsub")

#: default per-query time limit for the laptop-scale reproduction
DEFAULT_TIME_LIMIT = 10.0


def _make_runner(
    graph,
    techniques: Sequence[str],
    sampling_ratio: float,
    seed: int,
    time_limit: float,
    workers: Optional[int] = None,
) -> EvaluationRunner:
    """Runner factory for the figure reproductions.

    Serial by default — the reproduction graphs are tiny and worker
    startup would dominate.  ``workers > 1`` (or the ``GCARE_WORKERS``
    environment variable, e.g. exported by ``pytest --gcare-workers``)
    switches to the process-parallel runner with hard timeouts.
    """
    if workers is None:
        workers = int(os.environ.get("GCARE_WORKERS", "0") or 0)
    if workers > 1:
        from .parallel import ParallelEvaluationRunner

        return ParallelEvaluationRunner(
            graph,
            techniques,
            sampling_ratio=sampling_ratio,
            seed=seed,
            time_limit=time_limit,
            workers=workers,
        )
    return EvaluationRunner(
        graph,
        techniques,
        sampling_ratio=sampling_ratio,
        seed=seed,
        time_limit=time_limit,
    )


@dataclass
class ExperimentResult:
    """One reproduced artifact: identifier, printable table, raw data."""

    experiment_id: str
    title: str
    table: str
    data: Dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.experiment_id}: {self.title} ==\n{self.table}"


# ---------------------------------------------------------------------------
# Table 2 — dataset statistics
# ---------------------------------------------------------------------------
def table2_statistics(seed: int = 1) -> ExperimentResult:
    """Regenerate Table 2 for the five (scaled) datasets."""
    rows = []
    data = {}
    columns: List[str] = []
    per_dataset = {}
    for name in DATASET_NAMES:
        stats = workloads.dataset(name, seed=seed).stats_row()
        per_dataset[name] = stats
        columns = list(stats)
    for metric in columns:
        rows.append([metric] + [per_dataset[n][metric] for n in DATASET_NAMES])
    table = render_table(["statistic"] + list(DATASET_NAMES), rows)
    data["stats"] = per_dataset
    return ExperimentResult("T2", "Statistics of datasets (Table 2)", table, data)


# ---------------------------------------------------------------------------
# Figure 6(a) — accuracy on the LUBM benchmark queries
# ---------------------------------------------------------------------------
def fig6a_lubm_accuracy(
    universities: int = 4,
    sampling_ratio: float = 0.03,
    runs: int = 5,
    seed: int = 0,
    techniques: Sequence[str] = ALL_TECHNIQUES,
    time_limit: float = DEFAULT_TIME_LIMIT,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Mean (+/- std) q-error per LUBM benchmark query per technique.

    The paper reports averages of 30 runs; ``runs`` trades repetitions for
    wall-clock at laptop scale.
    """
    data = workloads.dataset("lubm", seed=1, universities=universities)
    queries: List[NamedQuery] = []
    for name, query in lubm_queries.benchmark_queries().items():
        truth = count_embeddings(data.graph, query, time_limit=60.0)
        queries.append(NamedQuery(name, query, truth.count))
    runner = _make_runner(
        data.graph, techniques, sampling_ratio, seed, time_limit, workers
    )
    records = runner.run(queries, runs=runs)
    per_query = summarize(records, lambda r: r.query_name)
    query_names = [q.name for q in queries]
    rows = []
    for name in query_names:
        row: List[object] = [name]
        truth = next(q.true_cardinality for q in queries if q.name == name)
        row.append(truth)
        for technique in techniques:
            summary = per_query.get(technique, {}).get(name)
            if summary is None or summary.count == 0:
                row.append(None)
            else:
                row.append(summary.mean)
        rows.append(row)
    table = render_table(
        ["query", "true card"] + [t.upper() for t in techniques],
        rows,
        title="mean q-error over runs ('-' = unsupported/timeout)",
    )
    return ExperimentResult(
        "F6a",
        "Accuracy on the LUBM benchmark (Figure 6a)",
        table,
        {"records": records, "summaries": per_query},
    )


# ---------------------------------------------------------------------------
# Figures 6(b)-(d), 7, 8, 9 — grouped accuracy on generated workloads
# ---------------------------------------------------------------------------
def accuracy_grouped(
    experiment_id: str,
    dataset_name: str,
    group_field: str,
    topologies: Sequence[Topology] = workloads.ALL_TOPOLOGIES,
    sizes: Sequence[int] = workloads.QUERY_SIZES,
    per_combination: int = 2,
    sampling_ratio: float = 0.03,
    runs: int = 1,
    seed: int = 0,
    techniques: Sequence[str] = ALL_TECHNIQUES,
    time_limit: float = DEFAULT_TIME_LIMIT,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Shared engine for the grouped-accuracy figures.

    ``group_field`` is one of ``"bucket"`` (result size), ``"topology"`` or
    ``"size"``; rows follow the paper's x-axis of the matching figure.
    """
    data = workloads.dataset(dataset_name)
    queries = workloads.workload(
        dataset_name,
        topologies=topologies,
        sizes=sizes,
        per_combination=per_combination,
    )
    runner = _make_runner(
        data.graph, techniques, sampling_ratio, seed, time_limit, workers
    )
    records = runner.run(queries, runs=runs)
    summaries = summarize(records, group_by(group_field))
    groups = _ordered_groups(queries, group_field)
    rows = []
    for group in groups:
        row: List[object] = [group]
        for technique in techniques:
            summary = summaries.get(technique, {}).get(group)
            row.append(
                summary.median if summary and summary.count else None
            )
        rows.append(row)
    table = render_table(
        [group_field] + [t.upper() for t in techniques],
        rows,
        title="median q-error ('-' = unsupported/timeout)",
    )
    chart = render_signed_chart(
        group_field,
        groups,
        _signed_medians(records, techniques, group_field),
        title="signed q-error (median; '<' under-, '>' over-estimation)",
    )
    return ExperimentResult(
        experiment_id,
        f"Accuracy on {dataset_name} grouped by {group_field}",
        table + "\n\n" + chart,
        {
            "records": records,
            "summaries": summaries,
            "groups": groups,
            "num_queries": len(queries),
        },
    )


def _signed_medians(
    records: Sequence[EvalRecord],
    techniques: Sequence[str],
    group_field: str,
) -> Dict[str, Dict[str, Optional[float]]]:
    """Median signed q-error per technique and group (None = no data)."""
    values: Dict[str, Dict[str, List[float]]] = {}
    for record in records:
        if record.failed:
            continue
        group = record.groups.get(group_field, "?")
        values.setdefault(record.technique, {}).setdefault(group, []).append(
            signed_qerror(record.true_cardinality, record.estimate)
        )
    result: Dict[str, Dict[str, Optional[float]]] = {}
    for technique in techniques:
        result[technique] = {}
        for group, signed in values.get(technique, {}).items():
            signed.sort(key=abs)
            result[technique][group] = signed[len(signed) // 2]
    return result


def _ordered_groups(queries: Sequence[NamedQuery], field_name: str) -> List[str]:
    values = {q.groups[field_name] for q in queries}
    if field_name == "size":
        return sorted(values, key=int)
    if field_name == "bucket":
        order = [bucket_label(b) for b in _all_buckets()]
        return [v for v in order if v in values]
    order = [t.value for t in Topology]
    return [v for v in order if v in values] + sorted(
        v for v in values if v not in order
    )


def _all_buckets():
    from ..workload.buckets import RESULT_SIZE_BUCKETS

    return RESULT_SIZE_BUCKETS


def fig6b_yago_result_size(**kwargs) -> ExperimentResult:
    """Figure 6(b): q-error vs query result size on YAGO."""
    return accuracy_grouped("F6b", "yago", "bucket", **kwargs)


def fig6c_yago_topology(**kwargs) -> ExperimentResult:
    """Figure 6(c): q-error vs query topology on YAGO."""
    return accuracy_grouped("F6c", "yago", "topology", **kwargs)


def fig6d_yago_size(**kwargs) -> ExperimentResult:
    """Figure 6(d): q-error vs query size on YAGO."""
    return accuracy_grouped("F6d", "yago", "size", **kwargs)


def fig7a_aids_result_size(**kwargs) -> ExperimentResult:
    """Figure 7(a): q-error vs result size on AIDS."""
    return accuracy_grouped("F7a", "aids", "bucket", **kwargs)


def fig7b_human_result_size(**kwargs) -> ExperimentResult:
    """Figure 7(b): q-error vs result size on Human."""
    return accuracy_grouped("F7b", "human", "bucket", **kwargs)


def fig8a_aids_topology(**kwargs) -> ExperimentResult:
    """Figure 8(a): q-error vs topology on AIDS."""
    return accuracy_grouped("F8a", "aids", "topology", **kwargs)


def fig8b_human_topology(**kwargs) -> ExperimentResult:
    """Figure 8(b): q-error vs topology on Human."""
    return accuracy_grouped("F8b", "human", "topology", **kwargs)


def fig9_aids_size(**kwargs) -> ExperimentResult:
    """Figure 9: q-error vs query size on AIDS."""
    return accuracy_grouped("F9", "aids", "size", **kwargs)


# ---------------------------------------------------------------------------
# Section 6.3 — varying the sampling ratio
# ---------------------------------------------------------------------------
def sec63_sampling_ratio(
    dataset_name: str = "yago",
    ratios: Sequence[float] = (0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03),
    techniques: Sequence[str] = SAMPLING_TECHNIQUES,
    per_combination: int = 1,
    runs: int = 1,
    seed: int = 0,
    time_limit: float = DEFAULT_TIME_LIMIT,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Median q-error of each sampling technique per sampling ratio.

    The paper's ratios are {0.01, 0.03, 0.1, 0.3, 1, 3}% — i.e. fractions
    0.0001 .. 0.03 — on YAGO and AIDS.
    """
    data = workloads.dataset(dataset_name)
    queries = [
        q
        for q in workloads.workload(dataset_name, per_combination=2)
        # sampling sensitivity only shows on non-trivial cardinalities
        if q.true_cardinality > 10
    ][: max(4, per_combination * 8)]
    per_ratio: Dict[float, Dict[str, Optional[float]]] = {}
    all_records: Dict[float, List[EvalRecord]] = {}
    for ratio in ratios:
        runner = _make_runner(
            data.graph, techniques, ratio, seed, time_limit, workers
        )
        records = runner.run(queries, runs=runs)
        all_records[ratio] = records
        summaries = summarize(records)
        per_ratio[ratio] = {
            technique: (
                summaries[technique]["all"].median
                if technique in summaries and summaries[technique]["all"].count
                else None
            )
            for technique in techniques
        }
    rows = [
        [f"{ratio * 100:g}%"] + [per_ratio[ratio][t] for t in techniques]
        for ratio in ratios
    ]
    table = render_table(
        ["sampling ratio"] + [t.upper() for t in techniques],
        rows,
        title=f"median q-error on {dataset_name} (Section 6.3)",
    )
    return ExperimentResult(
        "S63",
        f"Varying sampling ratio on {dataset_name}",
        table,
        {"per_ratio": per_ratio, "records": all_records},
    )


# ---------------------------------------------------------------------------
# Figure 10 — efficiency (off-line preparation + on-line estimation)
# ---------------------------------------------------------------------------
def fig10_efficiency(
    dataset_names: Sequence[str] = ("lubm", "aids"),
    techniques: Sequence[str] = ALL_TECHNIQUES,
    sampling_ratio: float = 0.03,
    seed: int = 0,
    time_limit: float = DEFAULT_TIME_LIMIT,
    per_combination: int = 1,
) -> ExperimentResult:
    """Preparation times and mean per-query estimation times (Figure 10).

    The paper reports off-line summary construction (C-SET < SumRDF < BS)
    and on-line per-query times grouped by dataset.
    """
    prep_rows = []
    online_rows = []
    data_out: Dict[str, Dict] = {}
    for dataset_name in dataset_names:
        data = workloads.dataset(dataset_name)
        queries = workloads.workload(
            dataset_name, per_combination=per_combination
        )
        runner = EvaluationRunner(
            data.graph,
            techniques,
            sampling_ratio=sampling_ratio,
            seed=seed,
            time_limit=time_limit,
        )
        prep = runner.prepare()
        records = runner.run(queries, runs=1)
        from .runner import mean_elapsed

        online = mean_elapsed(records)
        prep_rows.append(
            [dataset_name] + [prep.get(t) for t in techniques]
        )
        online_rows.append(
            [dataset_name]
            + [online.get(t, {}).get("all") for t in techniques]
        )
        data_out[dataset_name] = {
            "preparation": prep,
            "online": {t: online.get(t, {}).get("all") for t in techniques},
            "records": records,
        }
    prep_table = render_table(
        ["dataset"] + [t.upper() for t in techniques],
        prep_rows,
        title="off-line preparation time [s] (summary construction)",
    )
    online_table = render_table(
        ["dataset"] + [t.upper() for t in techniques],
        online_rows,
        title="mean on-line per-query estimation time [s]",
    )
    return ExperimentResult(
        "F10",
        "Efficiency tests (Figure 10)",
        prep_table + "\n\n" + online_table,
        data_out,
    )


# ---------------------------------------------------------------------------
# Figure 11 — impact on plan quality
# ---------------------------------------------------------------------------
def fig11_plan_quality(
    techniques: Sequence[str] = ALL_TECHNIQUES,
    sampling_ratio: float = 0.03,
    seed: int = 0,
    time_limit: float = DEFAULT_TIME_LIMIT,
    include_dbpedia: bool = True,
) -> ExperimentResult:
    """Execute optimizer plans fed by each technique's estimates.

    Reproduces Figure 11: per query, the elapsed execution time of the plan
    chosen under each technique's cardinalities, next to the plan built
    from true cardinalities (TC).
    """
    sections = []
    data_out: Dict[str, Dict] = {}
    # -- LUBM queries (Figure 11a) -------------------------------------
    lubm_data = workloads.dataset("lubm")
    study = PlanQualityStudy(lubm_data.graph)
    estimators = {
        name: create_estimator(
            name,
            lubm_data.graph,
            sampling_ratio=sampling_ratio,
            seed=seed,
            time_limit=time_limit,
        )
        for name in techniques
    }
    records = study.run(lubm_queries.benchmark_queries(), estimators)
    table = records_as_table(records)
    names = lubm_queries.query_names()
    rows = [
        [tech] + [table.get(tech, {}).get(q) for q in names]
        for tech in table
    ]
    sections.append(
        render_table(
            ["technique"] + names,
            rows,
            title="LUBM: plan execution time [s] per estimator (Figure 11a)",
        )
    )
    data_out["lubm"] = {"records": records, "table": table}
    # -- DBpedia log-query analogues (Figure 11b) ----------------------
    if include_dbpedia:
        dbp_data = workloads.dataset("dbpedia")
        profile_queries = dbpedia_queries.benchmark_queries(dbp_data)
        study = PlanQualityStudy(dbp_data.graph)
        estimators = {
            name: create_estimator(
                name,
                dbp_data.graph,
                sampling_ratio=sampling_ratio,
                seed=seed,
                time_limit=time_limit,
            )
            for name in techniques
        }
        queries = {name: wq.query for name, wq in profile_queries.items()}
        records = study.run(queries, estimators)
        table = records_as_table(records)
        names = list(queries)
        rows = [
            [tech] + [table.get(tech, {}).get(q) for q in names]
            for tech in table
        ]
        sections.append(
            render_table(
                ["technique"] + names,
                rows,
                title="DBpedia: plan execution time [s] per estimator (Figure 11b)",
            )
        )
        data_out["dbpedia"] = {"records": records, "table": table}
    return ExperimentResult(
        "F11",
        "Impact on plan quality (Figure 11)",
        "\n\n".join(sections),
        data_out,
    )

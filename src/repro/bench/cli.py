"""Command-line interface: ``gcare <experiment> [options]``.

Regenerates any of the paper's tables and figures from the terminal::

    gcare list                 # show available experiments
    gcare t2                   # Table 2 dataset statistics
    gcare f6a --runs 3         # LUBM accuracy (Figure 6a)
    gcare f8a                  # AIDS topology accuracy (Figure 8a)
    gcare s63 --dataset aids   # sampling-ratio sensitivity
    gcare f10                  # efficiency
    gcare f11                  # plan quality
    gcare t3                   # summary verdict matrix

Dataset and workload export (the official G-CARE text format / JSON)::

    gcare export-dataset yago --out yago.txt
    gcare export-workload aids --out aids_queries.json

One-off estimation of a query file against a graph file::

    gcare estimate --graph yago.txt --query q.txt --technique wj

Parallel full-grid sweep with hard timeouts and a resumable results log
(re-running the same command skips every cell already in the log)::

    gcare sweep aids --workers 4 --runs 5 --results-log aids.jsonl

Add ``--trace`` to a sweep to record a phase-level span trace and counter
set into every record, then render the Figure-10-style breakdown::

    gcare sweep aids --trace --results-log aids.jsonl
    gcare trace aids.jsonl

Accuracy experiments also accept ``--workers N`` to fan their evaluation
grid out over worker processes (e.g. ``gcare f6c --workers 4``).

Validate a graph/query/triples file before feeding it to an experiment
(per-line diagnostics; exit status 1 if anything is malformed)::

    gcare validate yago.txt
    gcare validate q.txt --kind query

Estimation as a service: boot the long-lived daemon on a graph, then
drive it with the seeded closed-loop load generator (in-process with no
``--url``, over HTTP with one)::

    gcare serve example --techniques wj,cset --port 8642
    gcare load --url http://127.0.0.1:8642 --requests 200 --clients 4
    curl -s localhost:8642/stats | python -m json.tool

Streaming updates: a seeded interleaving of graph mutations and
estimates, in-process or against a daemon's ``POST /swap`` delta mode,
reporting per-update latency, staleness, and summary-update modes::

    gcare stream example --updates 50 --batch-size 8
    gcare stream example --url http://127.0.0.1:8642

Chaos-test the sweep pipeline itself with deterministic fault injection
(see ``docs/robustness.md`` for the plan syntax and fault taxonomy)::

    gcare sweep aids --inject 'est_card:nan:0.3,worker:crash:0.1' \\
        --inject-seed 7 --fallback cset --results-log chaos.jsonl --fsync
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from . import figures
from .tables import render_table3, table3_matrix


def _t3() -> figures.ExperimentResult:
    """Table 3 needs records from the LUBM and YAGO experiments."""
    lubm = figures.fig6a_lubm_accuracy(runs=1)
    yago = figures.fig6c_yago_topology()
    records = list(lubm.data["records"]) + list(yago.data["records"])
    matrix = table3_matrix(records)
    return figures.ExperimentResult(
        "T3",
        "Summarized comparison (Table 3)",
        render_table3(matrix),
        {"matrix": matrix},
    )


EXPERIMENTS: Dict[str, Callable[..., figures.ExperimentResult]] = {
    "t2": figures.table2_statistics,
    "f6a": figures.fig6a_lubm_accuracy,
    "f6b": figures.fig6b_yago_result_size,
    "f6c": figures.fig6c_yago_topology,
    "f6d": figures.fig6d_yago_size,
    "f7a": figures.fig7a_aids_result_size,
    "f7b": figures.fig7b_human_result_size,
    "f8a": figures.fig8a_aids_topology,
    "f8b": figures.fig8b_human_topology,
    "f9": figures.fig9_aids_size,
    "s63": figures.sec63_sampling_ratio,
    "f10": figures.fig10_efficiency,
    "f11": figures.fig11_plan_quality,
    "t3": _t3,
}


def _export_dataset(name: str, out: str, seed: int) -> int:
    from ..datasets import load_dataset
    from ..graph.io import dump_graph

    dataset = load_dataset(name, seed=seed)
    dump_graph(dataset.graph, out)
    print(f"wrote {dataset.graph} to {out} ({dataset.notes})")
    return 0


def _export_workload(dataset_name: str, out: str, seed: int) -> int:
    from . import workloads
    from ..workload.store import save_workload
    from ..workload.generator import WorkloadQuery
    from ..graph.topology import Topology

    named = workloads.workload(dataset_name, per_combination=2, seed=seed)
    raw = [
        WorkloadQuery(
            q.query, Topology(q.groups["topology"]), q.true_cardinality
        )
        for q in named
    ]
    save_workload(raw, out)
    print(f"wrote {len(raw)} queries with true cardinalities to {out}")
    return 0


def _trace_report(path: str) -> int:
    """Render the phase/counter breakdown of a traced sweep's results log."""
    from .phase_report import render_trace_log

    print(render_trace_log(path))
    return 0


def _validate(path: str, kind: str, max_diagnostics: int = 20) -> int:
    """Validate a graph/query/triples file; per-line diagnostics, exit 1."""
    from ..graph.io import (
        load_graph_checked,
        load_query_checked,
        load_triples_checked,
    )

    try:
        if kind == "query":
            _, report = load_query_checked(path)
        elif kind == "triples":
            *_, report = load_triples_checked(path)
        else:
            _, report = load_graph_checked(path)
    except OSError as exc:
        print(f"{path}: cannot read: {exc}")
        return 1
    # one corrupt line can cascade (e.g. every later vertex id lands out
    # of sequence), so cap the per-line listing at the first few
    for diagnostic in report.diagnostics[:max_diagnostics]:
        print(f"{path}:{diagnostic}")
    hidden = len(report.diagnostics) - max_diagnostics
    if hidden > 0:
        print(f"{path}: ... and {hidden} more malformed lines")
    status = "OK" if report.ok else "MALFORMED"
    print(
        f"{path}: {status} ({kind}; {report.loaded} records loaded, "
        f"{report.skipped} malformed lines)"
    )
    return 0 if report.ok else 1


def _sweep(
    dataset_name: str,
    techniques: str,
    workers: int,
    results_log: str,
    runs: int,
    sampling_ratio: float,
    seed: int,
    time_limit: float,
    trace: bool = False,
    inject: str = None,
    inject_seed: int = 0,
    fsync: bool = False,
    fallback: str = None,
    memory_budget: int = None,
    worker_retries: int = None,
    summary_cache_dir: str = None,
    no_summary_cache: bool = False,
    batch_size: int = None,
    no_shm: bool = False,
) -> int:
    """Run the full (technique, query, run) grid, parallel and resumable."""
    from ..core.registry import available_techniques
    from ..kernels import active_backend, fallback_note
    from ..faults.plan import FaultPlan
    from ..metrics.report import render_table
    from . import workloads
    from .parallel import DEFAULT_WORKER_RETRIES, ParallelEvaluationRunner
    from .results_log import ResultsLog
    from .runner import summarize
    from .summary_cache import SummaryCache

    print(f"kernels: backend={active_backend()}")
    note = fallback_note()
    if note is not None:  # one line, once, when kernels run degraded
        print(note)
    names = (
        [t.strip() for t in techniques.split(",") if t.strip()]
        if techniques
        else available_techniques()
    )
    plan = None
    if inject:
        plan = FaultPlan.parse(inject, seed=inject_seed)
        print(f"fault injection: {len(plan.specs)} spec(s), seed {plan.seed}")
    cache = None
    if not no_summary_cache:
        # in-memory by default (prepare-once across workers); a directory
        # persists summaries across invocations of the same sweep
        cache = SummaryCache(summary_cache_dir)
    data = workloads.dataset(dataset_name, seed=1)
    queries = workloads.workload(dataset_name)
    runner = ParallelEvaluationRunner(
        data.graph,
        names,
        sampling_ratio=sampling_ratio,
        seed=seed,
        time_limit=time_limit,
        workers=workers,
        trace=trace,
        fault_plan=plan,
        memory_budget=memory_budget,
        fallback=fallback,
        worker_retries=(
            DEFAULT_WORKER_RETRIES if worker_retries is None else worker_retries
        ),
        summary_cache=cache,
        batch_size=batch_size,
        use_shm=False if no_shm else None,
    )
    log = ResultsLog(results_log, fsync=fsync) if results_log else None
    try:
        records = runner.run(queries, runs=runs, results_log=log)
    finally:
        # the runner closes on its own exit paths too; this covers any
        # failure before the runner takes ownership of the handle
        if log is not None:
            log.close()
    stats = runner.last_run_stats
    if cache is not None and (cache.hits or cache.stores):
        scope = cache.directory or "in-memory"
        print(
            f"summary cache ({scope}): {cache.hits} hit(s), "
            f"{cache.misses} miss(es), {cache.stores} store(s)"
        )
    print(
        f"{stats.get('cells', len(records))} cells: "
        f"{stats.get('executed', 0)} executed, "
        f"{stats.get('resumed', 0)} resumed from log, "
        f"{stats.get('timeouts', 0)} hard timeouts, "
        f"{stats.get('retries', 0)} retries, "
        f"{stats.get('respawns', 0)} respawns"
    )
    if stats.get("batches"):
        shm_note = (
            f", {stats.get('shm_bytes', 0) / 1e6:.1f} MB in "
            f"{stats.get('shm_segments', 0)} shared-memory segment(s)"
            if stats.get("shm_segments")
            else ", shared memory off"
        )
        print(
            f"dispatch: {stats['batches']} batch(es) of "
            f"{stats.get('batch_size', 1)} cell(s){shm_note}"
        )
    if log is not None:
        print(f"results log: {log.path}")
    summaries = summarize(records)
    rows = []
    for name in names:
        summary = summaries.get(name, {}).get("all")
        if summary is None:
            rows.append([name.upper(), None, None, 0])
        else:
            rows.append(
                [
                    name.upper(),
                    summary.median if summary.count else None,
                    summary.mean if summary.count else None,
                    summary.failures,
                ]
            )
    print()
    print(
        render_table(
            ["technique", "median q-error", "mean q-error", "failures"],
            rows,
            title=f"{dataset_name}: {len(queries)} queries x {runs} runs",
        )
    )
    if trace:
        from .phase_report import render_phase_report

        print()
        print(render_phase_report(records, title="phase breakdown"))
    return 0


def _serve_target_graph(target: str, seed: int):
    """Resolve a serve/load target: 'example', a dataset name, or a file."""
    import os

    if target == "example":
        from ..datasets.example import figure1_graph

        return figure1_graph()
    if os.path.exists(target):
        from ..graph.io import load_graph

        return load_graph(target)
    from . import workloads

    return workloads.dataset(target, seed=seed).graph


def _serve(
    target: str,
    techniques: str,
    workers: int,
    host: str,
    port: int,
    sampling_ratio: float,
    seed: int,
    time_limit: float,
    cache_entries: int,
    cache_ttl: float,
    max_inflight: int,
    queue_depth: int,
    inject: str = None,
    inject_seed: int = 0,
    no_shm: bool = False,
    state_dir: str = None,
    breaker_threshold: int = 5,
    breaker_cooldown: float = 30.0,
    watchdog_interval: float = 5.0,
    max_worker_rss: int = None,
    recycle_after: int = None,
) -> int:
    """Boot the estimation daemon and serve until interrupted."""
    from ..core.registry import available_techniques
    from ..faults.plan import FaultPlan
    from ..kernels import active_backend, fallback_note
    from ..serve import EstimationService, ServiceConfig, run_daemon

    print(f"kernels: backend={active_backend()}")
    note = fallback_note()
    if note is not None:
        print(note)
    names = (
        [t.strip() for t in techniques.split(",") if t.strip()]
        if techniques
        else available_techniques()
    )
    plan = None
    if inject:
        plan = FaultPlan.parse(inject, seed=inject_seed)
        print(f"fault injection: {len(plan.specs)} spec(s), seed {plan.seed}")
    graph = _serve_target_graph(target, seed)
    config = ServiceConfig(
        techniques=names,
        sampling_ratio=sampling_ratio,
        seed=seed,
        time_limit=time_limit,
        workers=max(1, workers or 2),
        cache_entries=cache_entries,
        cache_ttl=None if cache_ttl <= 0 else cache_ttl,
        max_inflight=max_inflight,
        queue_depth=queue_depth,
        fault_plan=plan,
        use_shm=False if no_shm else None,
        state_dir=state_dir,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
        watchdog_interval=watchdog_interval,
        max_worker_rss=max_worker_rss,
        recycle_after=recycle_after,
    )
    service = EstimationService(graph, config).start()
    if state_dir:
        counters = service.stats()["counters"]
        boot = "warm" if counters.get("serve.warm_restarts") else "cold"
        print(f"{boot} start (state dir {state_dir})")
    try:
        run_daemon(
            service,
            host=host,
            port=port,
            ready_callback=lambda address: print(
                f"serving {service.graph} [{', '.join(names)}] at {address}",
                flush=True,
            ),
        )
    finally:
        service.close()
    return 0


def _served_techniques(url: str) -> list:
    """The technique list a running daemon reports via ``GET /stats``."""
    import json
    from urllib.request import urlopen

    try:
        with urlopen(url.rstrip("/") + "/stats", timeout=10) as response:
            payload = json.loads(response.read().decode("utf-8"))
        return [str(name) for name in payload.get("techniques", [])]
    except Exception:
        return []


def _load(
    target: str,
    url: str,
    techniques: str,
    requests: int,
    clients: int,
    seed: int,
    runs: int,
    queries: str = None,
    serial: bool = False,
    out: str = None,
    sampling_ratio: float = 0.03,
    time_limit: float = 10.0,
    workers: int = 2,
) -> int:
    """Drive a seeded closed-loop load run, in-process or over HTTP."""
    import json

    from ..core.registry import available_techniques
    from ..serve import (
        EstimationService,
        LoadGenerator,
        ServiceConfig,
        example_workload,
        http_executor,
        load_workload,
        local_executor,
    )

    if techniques:
        names = [t.strip() for t in techniques.split(",") if t.strip()]
    elif url:
        # default to what the daemon actually serves, not what this
        # process could serve — otherwise a wj,cset daemon gets pelted
        # with 404s for the other five techniques
        names = _served_techniques(url) or available_techniques()
    else:
        names = available_techniques()
    workload = load_workload(queries) if queries else example_workload()
    generator = LoadGenerator(
        workload, names, requests=requests, clients=clients,
        seed=seed, runs=max(1, runs),
    )
    service = None
    try:
        if url:
            execute = http_executor(url, workload)
            source = url
        else:
            graph = _serve_target_graph(target or "example", seed)
            config = ServiceConfig(
                techniques=names,
                sampling_ratio=sampling_ratio,
                seed=seed,
                time_limit=time_limit,
                workers=max(1, workers or 2),
            )
            service = EstimationService(graph, config).start()
            execute = local_executor(service, workload)
            source = f"in-process ({service.graph})"
        result = generator.run(execute, concurrent=not serial)
    finally:
        if service is not None:
            service.close()
    summary = result.to_dict()
    latency = summary["latency"]
    mode = "serial" if serial else f"{clients} concurrent client(s)"
    print(
        f"load vs {source}: {result.requests} request(s), {mode}, "
        f"seed {seed}"
    )
    print(
        f"  throughput {summary['throughput_rps']:.1f} req/s | "
        f"p50 {latency['p50_s'] * 1000:.3f} ms | "
        f"p95 {latency['p95_s'] * 1000:.3f} ms | "
        f"p99 {latency['p99_s'] * 1000:.3f} ms"
    )
    print(
        f"  statuses {summary['status_counts']} | "
        f"{result.cached} served from cache"
    )
    for error in summary["errors"]:
        print(f"  error: {error}")
    if url:
        from ..serve.loadgen import fetch_metrics

        metrics = fetch_metrics(url)
        if metrics:
            summary["server_metrics"] = metrics
            hits = metrics.get("gcare_cache_hits", 0.0)
            misses = metrics.get("gcare_cache_misses", 0.0)
            recycles = metrics.get("gcare_watchdog_recycles_total", 0.0)
            total = hits + misses
            rate = f"{hits / total:.0%}" if total else "n/a"
            print(
                f"  server: cache hit rate {rate} | "
                f"generation {metrics.get('gcare_generation', 0):.0f} | "
                f"watchdog recycles {recycles:.0f}"
            )
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {out}")
    failures = sum(
        count
        for status, count in result.status_counts.items()
        if status not in (200, 429)
    )
    return 1 if failures else 0


def _soak(
    target: str,
    duration: float,
    seed: int,
    clients: int,
    workers: int,
    techniques: str,
    inject: str = None,
    inject_seed: int = 0,
    queries: str = None,
    out: str = None,
) -> int:
    """Run the seeded chaos-soak harness; non-zero exit on any violation."""
    import json
    import os
    import tempfile

    from ..faults.plan import FaultPlan
    from ..kernels import active_backend, fallback_note
    from ..serve import example_workload, load_workload
    from ..serve.soak import DEFAULT_PLAN_TOKENS, SoakConfig, run_soak

    print(f"kernels: backend={active_backend()}")
    note = fallback_note()
    if note is not None:
        print(note)
    plan = FaultPlan.parse(inject or DEFAULT_PLAN_TOKENS, seed=inject_seed)
    names = (
        [t.strip() for t in techniques.split(",") if t.strip()]
        if techniques
        else None
    )
    workload = load_workload(queries) if queries else example_workload()
    config = SoakConfig(
        duration_s=duration,
        seed=seed,
        clients=clients,
        workers=max(1, workers or 2),
        techniques=names,
        plan=plan,
    )
    tmp_path = None
    try:
        if target != "example" and os.path.exists(target):
            graph_path = target
            graph = None
        else:
            # dataset / example targets: dump to a temp file so the
            # ``swap`` fault has something reloadable to storm against
            from ..graph.io import dump_graph

            graph = _serve_target_graph(target, seed)
            fd, tmp_path = tempfile.mkstemp(
                prefix="gcare-soak-", suffix=".txt"
            )
            os.close(fd)
            dump_graph(graph, tmp_path)
            graph_path = tmp_path
        print(
            f"soak: {duration:.0f}s, {clients} client(s), seed {seed}, "
            f"{len(plan.specs)} fault spec(s)"
        )
        report = run_soak(graph, workload, config, graph_path=graph_path)
    finally:
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    payload = report.to_dict()
    print(
        f"  {payload['requests']} request(s) in {payload['duration_s']:.1f}s"
        f" | statuses {payload['status_counts']}"
        f" | worker kills {payload['worker_kills']}"
    )
    print(f"  actions: {payload['actions']}")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {out}")
    if report.ok:
        print("  invariants: OK (0 violations)")
        return 0
    print(f"  INVARIANT VIOLATIONS ({len(payload['violations'])}):")
    for violation in payload["violations"]:
        print(f"    {violation}")
    return 1


def _stream(
    target: str,
    url: str,
    techniques: str,
    updates: int,
    batch_size: int,
    estimates_per_update: int,
    seed: int,
    sampling_ratio: float,
    time_limit: float,
    out: str = None,
) -> int:
    """Drive a seeded streaming-update run, in-process or over HTTP."""
    import json

    from ..kernels import active_backend
    from .stream import StreamConfig, run_stream

    print(f"kernels: backend={active_backend()}")
    names = (
        [t.strip() for t in techniques.split(",") if t.strip()]
        if techniques
        else None
    )
    graph = _serve_target_graph(target or "example", seed)
    config = StreamConfig(
        techniques=names,
        updates=updates,
        batch_size=batch_size,
        estimates_per_update=estimates_per_update,
        seed=seed,
        sampling_ratio=sampling_ratio,
        time_limit=time_limit,
        url=url,
    )
    report = run_stream(graph, config)
    summary = report.to_dict()
    source = url or "in-process"
    print(
        f"stream vs {source}: {summary['updates']} update(s), "
        f"{summary['deltas']} delta(s), {summary['estimates']} estimate(s), "
        f"seed {seed}"
    )
    latency = summary["update_latency"]
    staleness = summary["staleness"]
    print(
        f"  update latency p50 {latency['p50_s'] * 1000:.3f} ms | "
        f"p95 {latency['p95_s'] * 1000:.3f} ms | "
        f"max {latency['max_s'] * 1000:.3f} ms"
    )
    print(
        f"  staleness p50 {staleness['p50_s'] * 1000:.3f} ms | "
        f"p95 {staleness['p95_s'] * 1000:.3f} ms | "
        f"max {staleness['max_s'] * 1000:.3f} ms"
    )
    print(
        f"  modes {summary['update_modes']} | "
        f"generation {summary['generation']} | "
        f"graph generation {summary['graph_generation']}"
    )
    if summary["cache_kept"] or summary["cache_dropped"]:
        print(
            f"  cache: {summary['cache_kept']} kept, "
            f"{summary['cache_dropped']} dropped across swaps"
        )
    if summary["errors"]:
        print(f"  errors: {summary['errors']}")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {out}")
    return 1 if summary["errors"] and not summary["estimates"] else 0


def _estimate(graph_path: str, query_path: str, technique: str,
              sampling_ratio: float, seed: int) -> int:
    from ..graph.io import load_graph, load_query
    from ..matching.homomorphism import count_embeddings
    from ..metrics.qerror import signed_qerror
    from .runner import EvaluationRunner  # noqa: F401 (import check)
    from ..core.registry import create_estimator

    graph = load_graph(graph_path)
    query = load_query(query_path)
    print(f"graph: {graph}")
    print(f"query: |V|={query.num_vertices} |E|={query.num_edges}")
    estimator = create_estimator(
        technique, graph, sampling_ratio=sampling_ratio, seed=seed,
        time_limit=300.0,
    )
    result = estimator.estimate(query)
    print(f"{estimator.display_name} estimate: {result.estimate:.4f} "
          f"({result.elapsed * 1000:.1f} ms, "
          f"{result.num_substructures} substructures)")
    truth = count_embeddings(graph, query, time_limit=300.0)
    if truth.complete:
        signed = signed_qerror(truth.count, result.estimate)
        direction = "under" if signed < 0 else "over"
        print(f"true cardinality: {truth.count} "
              f"(signed q-error {signed:+.2f}, {direction}estimate)")
    else:
        print("true cardinality: (counting exceeded the time budget)")
    return 0


def _bench(
    quick: bool,
    out: "str | None",
    check: "str | None",
    factor: float,
    seed: int,
    compare: "str | None" = None,
    tolerance: float = 0.20,
) -> int:
    """Run the tracked performance suite; optionally gate on a baseline."""
    from .perf import (
        check_regression,
        compare_reports,
        format_comparison,
        format_report,
        load_report,
        run_benchmarks,
        save_report,
    )

    report = run_benchmarks(quick=quick, seed=seed)
    print(format_report(report))
    if out:
        save_report(report, out)
        print(f"wrote {out}")
    status = 0
    if compare:
        rows = compare_reports(report, load_report(compare), tolerance)
        print()
        print(f"comparison vs {compare}:")
        print(format_comparison(rows, tolerance))
        if any(row["status"] == "regression" for row in rows):
            status = 1
    if check:
        failures = check_regression(report, load_report(check), factor)
        if failures:
            print(f"PERF REGRESSION vs {check}:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"no regressions vs {check} (factor {factor:.1f}x)")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="gcare",
        description="Regenerate the G-CARE paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="list",
        help=(
            "experiment id (t2, f6a..f11, s63, t3), 'sweep', 'serve', "
            "'load', 'stream', 'soak', 'bench', 'trace', 'validate', "
            "'export-dataset', 'export-workload', or 'list'"
        ),
    )
    parser.add_argument(
        "target", nargs="?", default=None,
        help=(
            "dataset name (sweep/export), results log path (trace), or "
            "file to check (validate)"
        ),
    )
    parser.add_argument(
        "--kind", default="graph", choices=("graph", "query", "triples"),
        help="file format for validate (default: graph)",
    )
    parser.add_argument(
        "--inject", default=None,
        help=(
            "fault plan for sweep: JSON file path or compact "
            "'site:fault[:prob[:tech+tech]]' tokens, comma-separated"
        ),
    )
    parser.add_argument(
        "--inject-seed", type=int, default=0,
        help="seed for deterministic fault decisions (sweep --inject)",
    )
    parser.add_argument(
        "--fsync", action="store_true",
        help="fsync every results-log append (crash-safe, slower)",
    )
    parser.add_argument(
        "--fallback", default=None,
        help="degraded-mode fallback technique when a cell fails (sweep)",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=None,
        help="soft per-cell memory budget in bytes (sweep)",
    )
    parser.add_argument(
        "--worker-retries", type=int, default=None,
        help="retries for cells whose worker died unexpectedly (sweep)",
    )
    parser.add_argument(
        "--summary-cache", default=None, metavar="DIR",
        help=(
            "persist prepared summaries under DIR so repeated sweeps of "
            "the same graph skip preparation (sweep)"
        ),
    )
    parser.add_argument(
        "--no-summary-cache", action="store_true",
        help="disable prepare-once summary sharing entirely (sweep)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record span traces + counters into every sweep record",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help=(
            "cells dispatched per worker message (sweep; default: "
            "auto-sized from the grid shape)"
        ),
    )
    parser.add_argument(
        "--no-shm", action="store_true",
        help=(
            "ship graph/summaries to sweep workers via pickle instead of "
            "shared memory (results are identical either way)"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="bench: reduced reps/queries for CI smoke runs",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help=(
            "bench: print a per-metric speedup/regression table vs this "
            "baseline JSON; exit non-zero past --tolerance"
        ),
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help=(
            "bench --compare: tolerated fractional slowdown per metric "
            "(default 0.20 = 20%%)"
        ),
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="bench: fail if any metric regresses vs this baseline JSON",
    )
    parser.add_argument(
        "--factor", type=float, default=3.0,
        help="bench: slowdown factor tolerated by --check (default 3.0)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (>1 enables the parallel runner)",
    )
    parser.add_argument(
        "--results-log", default=None,
        help="JSONL results log for checkpoint/resume (sweep)",
    )
    parser.add_argument(
        "--techniques", default=None,
        help="comma-separated technique names (sweep; default: all)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=10.0,
        help="per-query time budget in seconds (sweep)",
    )
    parser.add_argument("--runs", type=int, default=None, help="runs per query")
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (serve)"
    )
    parser.add_argument(
        "--port", type=int, default=8642, help="bind port (serve; 0 = any)"
    )
    parser.add_argument(
        "--url", default=None,
        help="daemon base URL to drive (load; default: in-process service)",
    )
    parser.add_argument(
        "--requests", type=int, default=200, help="total requests (load)"
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent closed-loop clients (load)",
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="load: execute the schedule on one thread in order",
    )
    parser.add_argument(
        "--queries", dest="load_queries", default=None,
        help="query file or directory for load (default: example workload)",
    )
    parser.add_argument(
        "--cache-entries", type=int, default=1024,
        help="result-cache capacity (serve; 0 disables)",
    )
    parser.add_argument(
        "--cache-ttl", type=float, default=300.0,
        help="result-cache TTL in seconds (serve; <=0 disables expiry)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=4,
        help="per-technique concurrent executions before queueing (serve)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=16,
        help="per-technique queued requests before 429 rejection (serve)",
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help=(
            "serve: persist the generation manifest under DIR so a "
            "restarted daemon warm-attaches the live arenas"
        ),
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=5,
        help=(
            "serve: consecutive failures opening a technique's circuit "
            "breaker (0 disables breakers)"
        ),
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="serve: seconds an open breaker rejects before probing",
    )
    parser.add_argument(
        "--watchdog-interval", type=float, default=5.0,
        help="serve: worker watchdog patrol period (0 disables)",
    )
    parser.add_argument(
        "--max-worker-rss", type=int, default=None, metavar="BYTES",
        help="serve: recycle a worker whose RSS exceeds this many bytes",
    )
    parser.add_argument(
        "--recycle-after", type=int, default=None, metavar="N",
        help="serve: proactively recycle a worker after N requests",
    )
    parser.add_argument(
        "--duration", type=float, default=60.0,
        help="soak: wall-clock seconds to drive the daemon (default 60)",
    )
    parser.add_argument(
        "--updates", type=int, default=20,
        help="stream: delta batches applied over the run",
    )
    parser.add_argument(
        "--batch-deltas", type=int, default=8,
        help="stream: mutations per delta batch",
    )
    parser.add_argument(
        "--estimates-per-update", type=int, default=4,
        help="stream: estimation requests after each batch",
    )
    parser.add_argument(
        "--dataset", default=None, help="dataset override for s63"
    )
    parser.add_argument(
        "--sampling-ratio", type=float, default=None, help="sampling ratio p"
    )
    parser.add_argument("--out", default=None, help="output path for exports")
    parser.add_argument("--seed", type=int, default=1, help="dataset seed")
    parser.add_argument("--graph", default=None, help="graph file (estimate)")
    parser.add_argument("--query", default=None, help="query file (estimate)")
    parser.add_argument(
        "--technique", default="wj", help="technique for estimate"
    )
    args = parser.parse_args(argv)

    if args.experiment == "estimate":
        if not args.graph or not args.query:
            print("usage: gcare estimate --graph g.txt --query q.txt "
                  "[--technique wj]")
            return 2
        return _estimate(
            args.graph, args.query, args.technique,
            args.sampling_ratio or 0.03, args.seed,
        )

    if args.experiment == "trace":
        if not args.target:
            print("usage: gcare trace <results.jsonl>")
            return 2
        return _trace_report(args.target)

    if args.experiment == "validate":
        if not args.target:
            print("usage: gcare validate <file> [--kind graph|query|triples]")
            return 2
        return _validate(args.target, args.kind)

    if args.experiment == "sweep":
        if not args.target:
            print("usage: gcare sweep <dataset> [--workers N] "
                  "[--results-log path] [--techniques a,b] [--runs N] "
                  "[--trace] [--inject plan] [--fallback tech]")
            return 2
        return _sweep(
            args.target,
            args.techniques,
            args.workers,
            args.results_log,
            args.runs or 1,
            args.sampling_ratio or 0.03,
            args.seed,
            args.time_limit,
            trace=args.trace,
            inject=args.inject,
            inject_seed=args.inject_seed,
            fsync=args.fsync,
            fallback=args.fallback,
            memory_budget=args.memory_budget,
            worker_retries=args.worker_retries,
            summary_cache_dir=args.summary_cache,
            no_summary_cache=args.no_summary_cache,
            batch_size=args.batch_size,
            no_shm=args.no_shm,
        )

    if args.experiment == "serve":
        if not args.target:
            print("usage: gcare serve <example|dataset|graph-file> "
                  "[--techniques a,b] [--workers N] [--host H] [--port P]")
            return 2
        return _serve(
            args.target,
            args.techniques,
            args.workers,
            args.host,
            args.port,
            args.sampling_ratio or 0.03,
            args.seed,
            args.time_limit,
            args.cache_entries,
            args.cache_ttl,
            args.max_inflight,
            args.queue_depth,
            inject=args.inject,
            inject_seed=args.inject_seed,
            no_shm=args.no_shm,
            state_dir=args.state_dir,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            watchdog_interval=args.watchdog_interval,
            max_worker_rss=args.max_worker_rss,
            recycle_after=args.recycle_after,
        )

    if args.experiment == "soak":
        return _soak(
            args.target or "example",
            args.duration,
            args.seed,
            args.clients,
            args.workers,
            args.techniques,
            inject=args.inject,
            inject_seed=args.inject_seed,
            queries=args.load_queries,
            out=args.out,
        )

    if args.experiment == "stream":
        return _stream(
            args.target,
            args.url,
            args.techniques,
            args.updates,
            args.batch_deltas,
            args.estimates_per_update,
            args.seed,
            args.sampling_ratio or 0.1,
            args.time_limit,
            out=args.out,
        )

    if args.experiment == "load":
        return _load(
            args.target,
            args.url,
            args.techniques,
            args.requests,
            args.clients,
            args.seed,
            args.runs or 1,
            queries=args.load_queries,
            serial=args.serial,
            out=args.out,
            sampling_ratio=args.sampling_ratio or 0.03,
            time_limit=args.time_limit,
            workers=args.workers,
        )

    if args.experiment == "bench":
        return _bench(
            args.quick, args.out, args.check, args.factor, args.seed,
            compare=args.compare, tolerance=args.tolerance,
        )

    if args.experiment in ("export-dataset", "export-workload"):
        if not args.target or not args.out:
            print(f"usage: gcare {args.experiment} <dataset> --out <path>")
            return 2
        if args.experiment == "export-dataset":
            return _export_dataset(args.target, args.out, args.seed)
        return _export_workload(args.target, args.out, args.seed)

    if args.experiment == "list":
        print("available experiments:")
        for key, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:5s} {doc}")
        return 0

    experiment = EXPERIMENTS.get(args.experiment.lower())
    if experiment is None:
        print(f"unknown experiment {args.experiment!r}; try 'gcare list'")
        return 2
    kwargs = {}
    if args.runs is not None and args.experiment.lower() == "f6a":
        kwargs["runs"] = args.runs
    if args.dataset is not None and args.experiment.lower() == "s63":
        kwargs["dataset_name"] = args.dataset
    if args.sampling_ratio is not None and args.experiment.lower() not in (
        "t2",
        "t3",
        "s63",
    ):
        kwargs["sampling_ratio"] = args.sampling_ratio
    if args.workers > 1 and args.experiment.lower() in (
        "f6a", "f6b", "f6c", "f6d", "f7a", "f7b", "f8a", "f8b", "f9", "s63",
    ):
        kwargs["workers"] = args.workers
    result = experiment(**kwargs)
    print(result)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""``gcare stream``: a seeded streaming-update workload driver.

The incremental-graph subsystem's load tool: a deterministic interleaving
of graph mutations and estimation requests, driven either against an
in-process incremental runner (mutable journaled twin + ``reseal`` +
``Estimator.apply_deltas``) or against a running daemon's ``POST /swap``
delta mode.  It answers the operational questions the batch ``gcare
load`` cannot:

* **per-update latency** — how long one delta batch takes to become
  servable (reseal + summary maintenance locally; the ``/swap``
  round-trip remotely);
* **staleness** — how far estimation lags the mutation stream: the age
  of the oldest unapplied delta at the moment each update completes;
* **update modes** — how often techniques advanced incrementally versus
  falling back to a re-prepare.

Everything is derived from one seed: the mutation stream, the query
picks, and the interleaving are reproducible run to run.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.delta import Delta, deltas_to_payload
from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from ..serve import protocol


@dataclass
class StreamConfig:
    """Tunables of one streaming run."""

    #: technique names driven (None = every available technique)
    techniques: Optional[Sequence[str]] = None
    #: delta batches applied over the run
    updates: int = 20
    #: mutations per batch
    batch_size: int = 8
    #: estimation requests issued after each batch
    estimates_per_update: int = 4
    seed: int = 0
    sampling_ratio: float = 0.1
    time_limit: Optional[float] = 30.0
    #: daemon base URL; None drives the in-process incremental runner
    url: Optional[str] = None
    #: HTTP timeout per request (daemon mode)
    http_timeout: float = 60.0


@dataclass
class StreamReport:
    """The JSON-serializable outcome of one streaming run."""

    updates: int = 0
    deltas: int = 0
    estimates: int = 0
    errors: int = 0
    #: seconds each batch took to become servable
    update_latencies: List[float] = field(default_factory=list)
    #: age of the oldest delta in each batch when its update completed
    staleness: List[float] = field(default_factory=list)
    update_modes: Dict[str, int] = field(default_factory=dict)
    generation: int = 0
    graph_generation: int = 0
    cache_kept: int = 0
    cache_dropped: int = 0

    @staticmethod
    def _quantiles(values: List[float]) -> Dict[str, float]:
        if not values:
            return {"p50_s": 0.0, "p95_s": 0.0, "max_s": 0.0}
        ordered = sorted(values)
        pick = lambda q: ordered[min(len(ordered) - 1, int(q * len(ordered)))]
        return {
            "p50_s": pick(0.50),
            "p95_s": pick(0.95),
            "max_s": ordered[-1],
        }

    def to_dict(self) -> dict:
        return {
            "updates": self.updates,
            "deltas": self.deltas,
            "estimates": self.estimates,
            "errors": self.errors,
            "update_latency": self._quantiles(self.update_latencies),
            "staleness": self._quantiles(self.staleness),
            "update_modes": dict(self.update_modes),
            "generation": self.generation,
            "graph_generation": self.graph_generation,
            "cache_kept": self.cache_kept,
            "cache_dropped": self.cache_dropped,
        }


# ---------------------------------------------------------------------------
# the seeded mutation stream
# ---------------------------------------------------------------------------
class MutationStream:
    """Deterministic delta batches against a mutable journaled twin.

    The twin graph mirrors the served graph's content; every batch is
    recorded through the twin's journal, so the emitted slices are
    guaranteed effective (no duplicate adds, no phantom removes) and
    contiguous — exactly what ``reseal``/``apply_deltas`` require.
    """

    def __init__(self, graph, seed: int) -> None:
        self.twin: Graph = graph.thaw() if hasattr(graph, "thaw") else graph
        self.twin.enable_journal()
        self.rng = random.Random(seed)
        labels = {label for _, _, label in self.twin.edges()}
        self._edge_labels: List[int] = sorted(labels) or [0]
        vlabels = {
            label
            for v in self.twin.vertices()
            for label in self.twin.vertex_labels(v)
        }
        self._vertex_labels: List[int] = sorted(vlabels) or [0]

    def next_batch(self, size: int) -> List[Delta]:
        rng = self.rng
        twin = self.twin
        base = twin.generation
        made = 0
        attempts = 0
        while made < size and attempts < size * 20:
            attempts += 1
            roll = rng.random()
            if roll < 0.45:
                u = rng.randrange(twin.num_vertices)
                v = rng.randrange(twin.num_vertices)
                label = rng.choice(self._edge_labels)
                if twin.add_edge(u, v, label):
                    made += 1
            elif roll < 0.80:
                edges = list(twin.edges())
                if not edges:
                    continue
                u, v, label = edges[rng.randrange(len(edges))]
                if twin.remove_edge(u, v, label):
                    made += 1
            elif roll < 0.95:
                count = rng.randint(0, 2)
                twin.add_vertex(
                    tuple(
                        rng.choice(self._vertex_labels) for _ in range(count)
                    )
                )
                made += 1
            else:
                v = rng.randrange(twin.num_vertices)
                label = rng.choice(self._vertex_labels)
                if label not in twin.vertex_labels(v):
                    twin.add_vertex_label(v, label)
                    made += 1
        return twin.deltas_since(base)

    def pick_query(self) -> QueryGraph:
        """A small query over the twin's current content.

        Single edges, 2-paths, and out-stars anchored on live edges, so
        the stream keeps asking about data the mutations churn.
        """
        rng = self.rng
        edges = list(self.twin.edges())
        if not edges:
            label = rng.choice(self._edge_labels)
            return QueryGraph([frozenset(), frozenset()], [(0, 1, label)])
        u, v, label = edges[rng.randrange(len(edges))]
        shape = rng.random()
        if shape < 0.4:
            return QueryGraph([frozenset(), frozenset()], [(0, 1, label)])
        if shape < 0.7:
            onward = [
                lab for src, _, lab in self.twin.edges() if src == v
            ]
            label2 = (
                onward[rng.randrange(len(onward))]
                if onward
                else rng.choice(self._edge_labels)
            )
            return QueryGraph(
                [frozenset(), frozenset(), frozenset()],
                [(0, 1, label), (1, 2, label2)],
            )
        out = [lab for src, _, lab in self.twin.edges() if src == u]
        label2 = (
            out[rng.randrange(len(out))]
            if out
            else rng.choice(self._edge_labels)
        )
        return QueryGraph(
            [frozenset(), frozenset(), frozenset()],
            [(0, 1, label), (0, 2, label2)],
        )


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------
def run_local(graph, config: StreamConfig) -> StreamReport:
    """Drive the incremental runner in-process.

    The servable state is a sealed graph plus one prepared estimator per
    technique; each batch goes through ``reseal`` + ``apply_deltas``,
    i.e. exactly the daemon's delta-swap path minus the transport.
    """
    from ..core.registry import available_techniques, create_estimator

    names = list(
        config.techniques
        if config.techniques is not None
        else available_techniques()
    )
    stream = MutationStream(graph, config.seed)
    sealed = stream.twin.seal()
    estimators = {}
    for name in names:
        estimator = create_estimator(
            name,
            sealed,
            sampling_ratio=config.sampling_ratio,
            seed=config.seed,
            time_limit=config.time_limit,
        )
        estimator.prepare()
        estimators[name] = estimator
    report = StreamReport()
    rng = random.Random(config.seed ^ 0x5EED)
    for _ in range(config.updates):
        batch_started = time.perf_counter()
        deltas = stream.next_batch(config.batch_size)
        if not deltas:
            continue
        update_started = time.perf_counter()
        sealed = sealed.reseal(deltas)
        for estimator in estimators.values():
            mode = estimator.apply_deltas(sealed, deltas)
            report.update_modes[mode] = report.update_modes.get(mode, 0) + 1
        finished = time.perf_counter()
        report.update_latencies.append(finished - update_started)
        report.staleness.append(finished - batch_started)
        report.updates += 1
        report.deltas += len(deltas)
        for _ in range(config.estimates_per_update):
            query = stream.pick_query()
            name = names[rng.randrange(len(names))]
            try:
                estimators[name].estimate(query)
                report.estimates += 1
            except Exception:
                report.errors += 1
    report.generation = report.updates
    report.graph_generation = getattr(sealed, "generation", 0)
    return report


def run_daemon(graph, config: StreamConfig) -> StreamReport:
    """Drive a running daemon's ``POST /swap`` delta mode.

    ``graph`` must mirror the daemon's served graph (same target file or
    dataset + seed), otherwise the very first batch is a torn journal
    and the run reports nothing but errors — which is itself the signal.
    """
    assert config.url is not None
    base = config.url.rstrip("/")
    stream = MutationStream(graph, config.seed)
    names = list(config.techniques or []) or _served_techniques(
        base, config.http_timeout
    )
    report = StreamReport()
    rng = random.Random(config.seed ^ 0x5EED)
    for _ in range(config.updates):
        batch_started = time.perf_counter()
        deltas = stream.next_batch(config.batch_size)
        if not deltas:
            continue
        update_started = time.perf_counter()
        reply = _post_json(
            base + "/swap",
            {"deltas": deltas_to_payload(deltas)},
            config.http_timeout,
        )
        finished = time.perf_counter()
        if reply.get("status", 500) != 200:
            # torn journal / diverged twin / transport failure: the error
            # envelope carries generation=None, so never read it as state
            report.errors += 1
            continue
        report.update_latencies.append(finished - update_started)
        report.staleness.append(finished - batch_started)
        report.updates += 1
        report.deltas += len(deltas)
        report.generation = int(reply.get("generation", report.generation))
        report.graph_generation = int(
            reply.get("graph_generation", report.graph_generation)
        )
        report.cache_kept += int(reply.get("cache_kept", 0))
        report.cache_dropped += int(reply.get("cache_dropped", 0))
        mode = str(reply.get("mode", "delta"))
        report.update_modes[mode] = report.update_modes.get(mode, 0) + 1
        for _ in range(config.estimates_per_update):
            query = stream.pick_query()
            name = names[rng.randrange(len(names))] if names else "wj"
            answer = _post_json(
                base + "/estimate",
                {
                    "technique": name,
                    "query": protocol.query_to_payload(query),
                    "run": 0,
                },
                config.http_timeout,
            )
            if answer.get("status") == 200:
                report.estimates += 1
            else:
                report.errors += 1
    return report


def run_stream(graph, config: StreamConfig) -> StreamReport:
    """Dispatch on config: daemon mode with a URL, local otherwise."""
    if config.url:
        return run_daemon(graph, config)
    return run_local(graph, config)


# ---------------------------------------------------------------------------
# HTTP plumbing (urllib only, mirroring loadgen)
# ---------------------------------------------------------------------------
def _post_json(url: str, payload: dict, timeout: float) -> dict:
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return json.loads(reply.read().decode())
    except urllib.error.HTTPError as exc:
        try:
            return json.loads(exc.read().decode())
        except Exception:
            return {"status": exc.code}
    except (OSError, ValueError) as exc:
        return {"status": 500, "error": str(exc)}


def _served_techniques(base: str, timeout: float) -> List[str]:
    try:
        with urllib.request.urlopen(base + "/stats", timeout=timeout) as reply:
            payload = json.loads(reply.read().decode())
        return [str(name) for name in payload.get("techniques", [])]
    except Exception:
        return []

"""Prepare-once summary sharing across workers and sweep invocations.

``PrepareSummaryStructure`` (Algorithm 1's off-line phase) is a pure
function of the data graph and the technique's parameters, yet the sweep
pipeline used to pay it once per worker per technique — and again on
every ``gcare sweep`` invocation.  This module makes the summary a cached
artifact:

* the parent runner (or whichever process touches a technique first)
  prepares, exports the summary via
  :meth:`~repro.core.framework.Estimator.export_summary`, and every other
  consumer hydrates from the serialized payload;
* a :class:`SummaryCache` keys payloads by a **content fingerprint** of
  the graph plus the technique's identity and parameters, holds them
  in memory, and optionally persists them under a directory
  (``gcare sweep --summary-cache DIR``) so repeated invocations skip
  preparation entirely.

Hydration is observable: a hydrated estimator carries
``_cache_charge_pending`` and ``hydration_time`` attributes, which the
first ``run_cell`` that uses it converts into a ``prepare_cached`` phase
entry — a cache hit must never masquerade as a full ``prepare`` span.

Fault injection bypasses this layer entirely (the runners never consult
the cache when a plan is active), so prepare-site faults still reach the
hooks inside ``run_cell``.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from ..core.framework import Estimator
from ..graph.digraph import Graph

PathLike = Union[str, Path]

#: bump when the payload layout or fingerprint definition changes; keyed
#: into every cache entry so stale on-disk payloads miss instead of load
#: (v2: summaries carry the delta-generation stamp incremental
#: maintenance keys its contiguity check on)
CACHE_VERSION = 2


def graph_fingerprint(graph: Graph) -> str:
    """Content fingerprint of a graph: same content, same fingerprint.

    Hashes the canonical accessor stream — vertex count, per-vertex label
    sets (sorted), and the edge stream in ``edges()`` order — so two
    graphs that are equal through the accessor API (e.g. a dict-backed
    graph and its sealed form) fingerprint identically.  Sealed graphs
    memoize the digest; mutable graphs are re-hashed on every call.
    """
    cached = getattr(graph, "_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(digest_size=16)
    update = digest.update
    update(f"g{graph.num_graphs};v{graph.num_vertices};e{graph.num_edges};".encode())
    for v in graph.vertices():
        labels = graph.vertex_labels(v)
        if labels:
            update(",".join(map(str, sorted(labels))).encode())
        update(b"|")
    for src, dst, label in graph.edges():
        update(f"{src},{dst},{label};".encode())
    fingerprint = digest.hexdigest()
    if getattr(graph, "sealed", False):
        graph._fingerprint = fingerprint
    return fingerprint


def summary_key(
    graph: Graph,
    technique: str,
    estimator: Estimator,
    extra: Optional[Mapping] = None,
) -> str:
    """Cache key: graph content + generation + technique + parameters.

    The generation component makes incremental updates first-class: after
    ``apply(deltas)`` the graph's fingerprint alone may collide with an
    unrelated state (fingerprints of mutable graphs re-hash content, and
    a delta batch that nets out restores the content), so summaries are
    keyed by the ``(fingerprint, generation)`` pair and a delta swap
    invalidates exactly the entries of the superseded generation instead
    of forcing a wholesale clear.
    """
    cls = type(estimator)
    parts = [
        f"v{CACHE_VERSION}",
        graph_fingerprint(graph),
        f"g{getattr(graph, 'generation', 0)}",
        technique,
        f"{cls.__module__}.{cls.__qualname__}",
        f"p={estimator.sampling_ratio!r}",
        f"s={estimator.seed!r}",
        f"t={estimator.time_limit!r}",
        repr(sorted((extra or {}).items())),
    ]
    return hashlib.blake2b(
        "|".join(parts).encode(), digest_size=16
    ).hexdigest()


def hydrate_from_blob(estimator: Estimator, payload: bytes) -> None:
    """Import a summary payload and mark the estimator as cache-hydrated.

    Records the hydration cost and arms ``_cache_charge_pending`` so the
    first cell run on this estimator charges a ``prepare_cached`` phase
    instead of a full ``prepare`` span.
    """
    start = time.perf_counter()
    estimator.import_summary(payload)
    estimator.hydration_time = time.perf_counter() - start
    estimator._cache_charge_pending = True


def blobs_to_shm(blobs: Mapping[str, bytes]):
    """Pack serialized summaries into one shared-memory segment.

    Returns ``(handle, ref)``: the creator-side
    :class:`~repro.shm.SealedArena` handle (release it once every worker
    has exited) and a picklable :class:`~repro.shm.ShmRef` that
    :func:`blobs_from_shm` turns back into a name→payload mapping in any
    process on this host.  One segment for all techniques: workers attach
    once and slice, instead of receiving a private pickled copy of every
    summary.
    """
    from ..shm import ShmArena, ShmRef

    arena = ShmArena()
    for name, payload in sorted(blobs.items()):
        arena.add_bytes(name, payload)
    handle, manifest = arena.seal()
    return handle, ShmRef("summaries", manifest)


def blobs_from_shm(ref) -> Dict[str, memoryview]:
    """Attach a :func:`blobs_to_shm` segment; zero-copy payload views.

    The returned memoryviews read the shared pages directly —
    :func:`hydrate_from_blob` accepts them as-is — and collectively pin
    the underlying mapping, so the mapping lives exactly as long as any
    payload is reachable.
    """
    from ..shm import ArenaView

    view = ArenaView(ref.manifest)
    return {key: view.bytes(key) for key in view.keys()}


class SummaryCache:
    """Keyed store of serialized summaries (in-memory + optional on-disk).

    ``directory=None`` keeps payloads in memory only — enough to share
    summaries between techniques' consumers inside one invocation.  With
    a directory, payloads persist as ``<key>.summary`` files and later
    ``gcare sweep --summary-cache DIR`` invocations (of the same graph
    and parameters) skip preparation entirely.
    """

    def __init__(self, directory: Optional[PathLike] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.summary"

    def get(self, key: str) -> Optional[bytes]:
        payload = self._memory.get(key)
        if payload is not None:
            return payload
        path = self._path(key)
        if path is not None and path.is_file():
            payload = path.read_bytes()
            self._memory[key] = payload
            return payload
        return None

    def put(self, key: str, payload: bytes) -> None:
        self._memory[key] = payload
        path = self._path(key)
        if path is not None:
            # atomic publish: a concurrent reader sees the old file or the
            # new one, never a torn write
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(payload)
            os.replace(tmp, path)

    # ------------------------------------------------------------------
    def hydrate(
        self,
        estimator: Estimator,
        technique: str,
        extra: Optional[Mapping] = None,
    ) -> bool:
        """Restore ``estimator``'s summary from the cache if present.

        Returns True on a hit (the estimator is then prepared and marked
        for ``prepare_cached`` phase accounting); False on a miss.
        """
        key = summary_key(estimator.graph, technique, estimator, extra)
        payload = self.get(key)
        if payload is None:
            self.misses += 1
            return False
        hydrate_from_blob(estimator, payload)
        self.hits += 1
        return True

    def store(
        self,
        estimator: Estimator,
        technique: str,
        extra: Optional[Mapping] = None,
    ) -> None:
        """Export a prepared estimator's summary into the cache."""
        if not estimator.prepared:
            return
        key = summary_key(estimator.graph, technique, estimator, extra)
        self.put(key, estimator.export_summary())
        self.stores += 1

    def __len__(self) -> int:
        return len(self._memory)

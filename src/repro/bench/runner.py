"""Evaluation harness: run techniques over query workloads, collect q-errors.

This is the engine behind every figure/table reproduction in
``benchmarks/``: it prepares each technique once (off-line summary
construction), runs every query the configured number of times (the paper
runs each query 30 times), and records per-run estimates, q-errors, times
and failures (unsupported queries, timeouts).
"""

from __future__ import annotations

import math
import time
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.errors import (
    EstimationTimeout,
    GCareError,
    InvalidEstimateError,
    MemoryBudgetExceeded,
    UnsupportedQueryError,
)
from ..core.framework import Estimator
from ..core.registry import create_estimator
from ..faults.inject import injected
from ..faults.memory import MemoryBudget
from ..faults.plan import FaultPlan
from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from ..metrics.qerror import QErrorSummary, qerror
from ..obs.trace import TraceCollector, traced
from ..workload.generator import WorkloadQuery


@dataclass
class NamedQuery:
    """A query with ground truth and grouping metadata."""

    name: str
    query: QueryGraph
    true_cardinality: int
    groups: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_workload(
        cls, prefix: str, index: int, workload_query: WorkloadQuery
    ) -> "NamedQuery":
        return cls(
            name=f"{prefix}{index}",
            query=workload_query.query,
            true_cardinality=workload_query.true_cardinality,
            groups={
                "topology": workload_query.topology.value,
                "size": str(workload_query.size),
                "bucket": workload_query.bucket_name,
            },
        )


#: key identifying one cell of the evaluation grid
CellKey = tuple  # (technique, query_name, run)


@dataclass
class EvalRecord:
    """Outcome of one estimation run of one technique on one query.

    ``elapsed`` is *on-line* estimation time only; off-line summary
    construction, when this cell is the one that triggered it, appears
    as the ``prepare`` entry of ``phases`` instead (the paper reports
    the two separately — Table 4 vs Figure 10).  ``phases``, ``counters``
    and ``trace`` are filled when the sweep runs with tracing enabled
    (``phases`` also without tracing, from ``info["timings"]``).
    """

    technique: str
    query_name: str
    run: int
    true_cardinality: int
    estimate: Optional[float]
    elapsed: float
    groups: Dict[str, str] = field(default_factory=dict)
    error: Optional[str] = None  # "unsupported" | "timeout" | other
    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    trace: Optional[dict] = None  # Trace.to_dict() when traced
    #: technique that actually produced ``estimate`` when the primary
    #: failed and a degraded-mode fallback stepped in (provenance)
    fallback_used: Optional[str] = None
    #: the primary technique's error when ``fallback_used`` is set
    primary_error: Optional[str] = None

    @property
    def qerror(self) -> Optional[float]:
        if self.estimate is None:
            return None
        if not math.isfinite(self.estimate) or self.estimate < 0:
            return None  # degenerate estimates never feed q-error
        return qerror(self.true_cardinality, self.estimate)

    @property
    def failed(self) -> bool:
        return self.estimate is None

    @property
    def key(self) -> CellKey:
        """The grid cell this record fills: ``(technique, query, run)``."""
        return (self.technique, self.query_name, self.run)

    def to_dict(self) -> dict:
        """JSON-serializable form (one line of a results log).

        Observability fields are emitted only when present — absent
        fields read back as their defaults, so old logs stay loadable.
        """
        payload = {
            "technique": self.technique,
            "query_name": self.query_name,
            "run": self.run,
            "true_cardinality": self.true_cardinality,
            "estimate": self.estimate,
            "elapsed": self.elapsed,
            "groups": dict(self.groups),
            "error": self.error,
        }
        if self.phases:
            payload["phases"] = dict(self.phases)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.trace is not None:
            payload["trace"] = self.trace
        if self.fallback_used is not None:
            payload["fallback_used"] = self.fallback_used
        if self.primary_error is not None:
            payload["primary_error"] = self.primary_error
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "EvalRecord":
        return cls(
            technique=payload["technique"],
            query_name=payload["query_name"],
            run=int(payload["run"]),
            true_cardinality=int(payload["true_cardinality"]),
            estimate=payload.get("estimate"),
            elapsed=float(payload.get("elapsed", 0.0)),
            groups=dict(payload.get("groups", {})),
            error=payload.get("error"),
            phases={
                k: float(v) for k, v in payload.get("phases", {}).items()
            },
            counters={
                k: int(v) for k, v in payload.get("counters", {}).items()
            },
            trace=payload.get("trace"),
            fallback_used=payload.get("fallback_used"),
            primary_error=payload.get("primary_error"),
        )


def derive_seed(base_seed: int, run: int) -> int:
    """Seed for repetition ``run`` of an estimator seeded with ``base_seed``.

    This is the determinism contract of the evaluation grid: the seed of a
    cell depends only on ``(base_seed, run)`` — never on which worker or in
    which order the cell executes — so parallel sweeps are bit-identical to
    serial ones.
    """
    return base_seed + run


def run_cell(
    name: str,
    estimator: Estimator,
    named: "NamedQuery",
    run: int,
    base_seed: Optional[int] = None,
    reseed: bool = True,
    trace: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    memory_budget: Optional[int] = None,
    fallback: Optional[Estimator] = None,
) -> EvalRecord:
    """Execute one ``(technique, query, run)`` cell of the evaluation grid.

    The single code path shared by the serial and parallel runners.  When
    ``reseed`` is set the estimator runs under ``derive_seed(base_seed,
    run)``; its own ``seed`` attribute is restored afterwards, so running a
    cell is side-effect-free for the caller.

    ``elapsed`` covers on-line estimation only.  When this cell is the one
    that triggers the estimator's off-line preparation, the build time is
    reported as the ``prepare`` entry of ``record.phases``, not folded into
    ``elapsed`` — otherwise the first query of every sweep would charge the
    whole summary construction to its latency.

    With ``trace`` set, the cell runs under a fresh
    :class:`~repro.obs.trace.TraceCollector`; the record carries the phase
    breakdown, the counter totals and the full serialized trace.  Tracing
    never touches the estimator's RNG, so traced estimates are identical
    to untraced ones.

    **Graceful degradation.**  Every failure mode becomes a structured
    record, never an escaped exception: ``"unsupported"``, ``"timeout"``,
    ``"invalid_estimate"`` (NaN/inf/negative — also enforced at record
    time, so degenerate values are never fed to q-error), ``"memory"``
    (soft budget exhausted or ``MemoryError``), and ``"error: ..."`` for
    anything else, including non-GCare exceptions from buggy estimators.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) injects
    deterministic faults into the Algorithm-1 hooks for this cell;
    ``memory_budget`` attaches a soft allocation budget in bytes.  Both
    are zero-cost when unset: one ``enabled`` check and the cell runs the
    exact pre-existing path.  ``fallback`` is a degraded-mode estimator
    run (uninjected) when the primary fails; on success the record
    carries its estimate with full provenance (``fallback_used`` /
    ``primary_error``).
    """
    seed_before = estimator.seed
    if reseed:
        base = seed_before if base_seed is None else base_seed
        estimator.seed = derive_seed(base, run)
    was_prepared = estimator.prepared
    collector = TraceCollector() if trace else None
    inject = fault_plan is not None and fault_plan.enabled
    error: Optional[str] = None
    estimate: Optional[float] = None
    elapsed = 0.0
    phases: Dict[str, float] = {}
    counters: Dict[str, int] = {}
    trace_payload: Optional[dict] = None
    start = time.monotonic()
    try:
        if collector is not None:
            context = traced(estimator, collector)
        else:
            context = nullcontext()
        with context:
            if inject or memory_budget is not None:
                # chaos/budgeted path: wrap hooks and attach the guard
                with ExitStack() as stack:
                    if memory_budget is not None:
                        guard = stack.enter_context(
                            MemoryBudget(memory_budget)
                        )
                        estimator.memory_guard = guard
                        stack.callback(
                            setattr, estimator, "memory_guard", None
                        )
                    else:
                        guard = None
                    if inject:
                        stack.enter_context(
                            injected(
                                estimator, fault_plan, name, named.name, run
                            )
                        )
                    estimate_result = estimator.estimate(named.query)
                    if guard is not None:
                        guard.check()  # catch blowups between check points
            else:
                estimate_result = estimator.estimate(named.query)
        estimate = estimate_result.estimate
        elapsed = estimate_result.elapsed  # on-line time only
        phases = dict(estimate_result.info.get("timings", {}))
    except UnsupportedQueryError:
        error = "unsupported"
    except EstimationTimeout:
        error = "timeout"
    except InvalidEstimateError:
        error = "invalid_estimate"
    except (MemoryBudgetExceeded, MemoryError):
        error = "memory"
    except GCareError as exc:
        error = f"error: {exc}"
    except Exception as exc:  # arbitrary estimator bugs degrade to a record
        error = f"error: {type(exc).__name__}: {exc}"
    finally:
        estimator.seed = seed_before
    if estimate is not None and (
        not math.isfinite(estimate) or estimate < 0
    ):  # record-time sanitization: estimate() subclasses may skip validation
        estimate = None
        error = "invalid_estimate"
    if error is not None:
        elapsed = time.monotonic() - start
        if not was_prepared and estimator.prepared:
            # the failing run still built the summary; keep elapsed on-line
            elapsed = max(0.0, elapsed - estimator.preparation_time)
    if collector is not None:
        snapshot = collector.snapshot()
        counters = dict(snapshot.counters)
        trace_payload = snapshot.to_dict()
        if error is not None:
            # partial run: attribute what we can from the (closed) spans
            phases = snapshot.phase_seconds()
    if not was_prepared and estimator.prepared:
        phases.setdefault("prepare", estimator.preparation_time)
    if getattr(estimator, "_cache_charge_pending", False):
        # the estimator was hydrated from the summary cache: the first
        # cell that uses it records the (cheap) hydration cost as
        # ``prepare_cached`` — never as a full ``prepare`` span
        estimator._cache_charge_pending = False
        phases.setdefault(
            "prepare_cached", getattr(estimator, "hydration_time", 0.0)
        )
    fallback_used: Optional[str] = None
    primary_error: Optional[str] = None
    if error is not None and fallback is not None:
        # degraded mode: the fallback runs clean (no injection, no budget)
        # under its own seed; kills and crashes never reach this point —
        # only cooperatively detected failures get a second chance
        fb_record = run_cell(
            fallback.name, fallback, named, run, reseed=reseed
        )
        if fb_record.error is None:
            primary_error, error = error, None
            fallback_used = fallback.name
            estimate = fb_record.estimate
            elapsed += fb_record.elapsed
    return EvalRecord(
        technique=name,
        query_name=named.name,
        run=run,
        true_cardinality=named.true_cardinality,
        estimate=estimate,
        elapsed=elapsed,
        groups=dict(named.groups),
        error=error,
        phases=phases,
        counters=counters,
        trace=trace_payload,
        fallback_used=fallback_used,
        primary_error=primary_error,
    )


class EvaluationRunner:
    """Runs a set of techniques over a set of queries."""

    def __init__(
        self,
        graph: Graph,
        techniques: Sequence[str],
        sampling_ratio: float = 0.03,
        seed: int = 0,
        time_limit: float = 20.0,
        estimator_kwargs: Optional[Mapping[str, Mapping]] = None,
        trace: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        memory_budget: Optional[int] = None,
        fallback: Optional[str] = None,
        summary_cache=None,
    ) -> None:
        self.graph = graph
        self.technique_names = list(techniques)
        self.sampling_ratio = sampling_ratio
        self.seed = seed
        self.time_limit = time_limit
        #: collect a span trace + counters into every record (off by default)
        self.trace = trace
        #: deterministic fault plan (None/empty = injection fully disabled)
        self.fault_plan = fault_plan
        #: soft per-cell memory budget in bytes (None = unlimited)
        self.memory_budget = memory_budget
        #: degraded-mode fallback technique name (None = no fallback)
        self.fallback_name = fallback
        #: optional :class:`repro.bench.summary_cache.SummaryCache`; when
        #: set, :meth:`prepare` hydrates summaries from it instead of
        #: rebuilding and stores freshly built ones back.  Ignored while a
        #: fault plan is active so prepare-site faults still fire.
        self.summary_cache = summary_cache
        self.estimator_kwargs = {
            name: dict(kwargs) for name, kwargs in (estimator_kwargs or {}).items()
        }
        self.estimators: Dict[str, Estimator] = {}
        self.preparation_times: Dict[str, float] = {}
        extra = self.estimator_kwargs
        for name in self.technique_names:
            kwargs = dict(extra.get(name, {}))
            self.estimators[name] = create_estimator(
                name,
                graph,
                sampling_ratio=sampling_ratio,
                seed=seed,
                time_limit=time_limit,
                **kwargs,
            )
        self.fallback_estimator: Optional[Estimator] = None
        if fallback is not None:
            self.fallback_estimator = create_estimator(
                fallback,
                graph,
                sampling_ratio=sampling_ratio,
                seed=seed,
                time_limit=time_limit,
            )

    @property
    def _inject(self) -> bool:
        return self.fault_plan is not None and self.fault_plan.enabled

    def prepare(self) -> Dict[str, float]:
        """Run off-line preparation for every technique; returns times.

        A preparation failure no longer aborts the whole sweep: the
        technique is left unprepared and each of its cells records the
        failure individually when ``run_cell`` retries the build.

        With a ``summary_cache`` attached (and no fault plan active),
        each technique first tries to hydrate its summary from the cache
        — recording a zero preparation time and arming ``prepare_cached``
        phase accounting — and freshly built summaries are stored back
        for the next consumer.
        """
        cache = None if self._inject else self.summary_cache
        for name, estimator in self.estimators.items():
            extra = self.estimator_kwargs.get(name)
            if (
                cache is not None
                and not estimator.prepared
                and cache.hydrate(estimator, name, extra)
            ):
                self.preparation_times[name] = 0.0
                continue
            try:
                self.preparation_times[name] = estimator.prepare()
            except Exception:
                continue  # degrade: per-cell records will carry the error
            if cache is not None:
                cache.store(estimator, name, extra)
        return dict(self.preparation_times)

    def grid(
        self, queries: Sequence[NamedQuery], runs: int
    ) -> List[tuple]:
        """The ``(technique, query, run)`` cells in canonical serial order.

        Both runners execute exactly this grid; the parallel runner also
        returns its records in this order, which is what makes serial and
        parallel sweeps directly comparable.
        """
        return [
            (name, named, run)
            for name in self.technique_names
            for named in queries
            for run in range(runs)
        ]

    def run(
        self,
        queries: Sequence[NamedQuery],
        runs: int = 1,
        reseed: bool = True,
        results_log=None,
    ) -> List[EvalRecord]:
        """Estimate every query ``runs`` times with every technique.

        When ``reseed`` is set, run ``r`` uses ``derive_seed(base_seed, r)``
        so sampling-based techniques produce independent repetitions.

        ``results_log`` (a :class:`repro.bench.results_log.ResultsLog`)
        enables checkpoint/resume: each record is appended to the log as it
        completes, and cells already present in the log are not re-executed
        — their logged records are returned in place.  An existing log is
        audited first (:meth:`ResultsLog.recover`), so a torn tail from a
        killed process is truncated instead of poisoning the resume.
        """
        if not self._inject:
            self.prepare()
        # under injection, preparation must happen inside run_cell so the
        # plan's prepare-site faults can reach it
        if results_log is not None:
            results_log.recover()
        done: Dict[CellKey, EvalRecord] = (
            results_log.completed() if results_log is not None else {}
        )
        try:
            return self._run_grid(queries, runs, reseed, results_log, done)
        finally:
            # the persistent append handle must not outlive the sweep —
            # error paths included, or repeated failed sweeps leak fds
            if results_log is not None:
                results_log.close()

    def _run_grid(
        self,
        queries: Sequence[NamedQuery],
        runs: int,
        reseed: bool,
        results_log,
        done: Dict[CellKey, EvalRecord],
    ) -> List[EvalRecord]:
        records: List[EvalRecord] = []
        for name, named, run in self.grid(queries, runs):
            key = (name, named.name, run)
            if key in done:
                records.append(done[key])
                continue
            record = run_cell(
                name,
                self.estimators[name],
                named,
                run,
                reseed=reseed,
                trace=self.trace,
                fault_plan=self.fault_plan,
                memory_budget=self.memory_budget,
                fallback=self.fallback_estimator,
            )
            if results_log is not None:
                results_log.append(record)
            records.append(record)
        return records

    @staticmethod
    def _run_one(
        name: str, estimator: Estimator, named: NamedQuery, run: int
    ) -> EvalRecord:
        """Backwards-compatible alias for :func:`run_cell`."""
        return run_cell(name, estimator, named, run, reseed=False)


# ---------------------------------------------------------------------------
# aggregation helpers
# ---------------------------------------------------------------------------
def summarize(
    records: Iterable[EvalRecord],
    group_key: Optional[Callable[[EvalRecord], str]] = None,
) -> Dict[str, Dict[str, QErrorSummary]]:
    """Summarize q-errors per technique (optionally per group).

    Returns ``{technique: {group: QErrorSummary}}``; without a group key the
    single group is named ``"all"``.  Failed runs count toward
    ``QErrorSummary.failures`` of their group, as do records carrying a
    degenerate (non-finite or negative) estimate — e.g. loaded from a log
    written before estimate sanitization — so bad values never reach
    :func:`~repro.metrics.qerror.qerror`.
    """
    grouped: Dict[str, Dict[str, List]] = {}
    failures: Dict[str, Dict[str, int]] = {}
    for record in records:
        group = group_key(record) if group_key else "all"
        degenerate = record.estimate is not None and (
            not math.isfinite(record.estimate) or record.estimate < 0
        )
        if record.failed or degenerate:
            failures.setdefault(record.technique, {}).setdefault(group, 0)
            failures[record.technique][group] += 1
            grouped.setdefault(record.technique, {}).setdefault(group, [])
            continue
        grouped.setdefault(record.technique, {}).setdefault(group, []).append(
            (record.true_cardinality, record.estimate)
        )
    result: Dict[str, Dict[str, QErrorSummary]] = {}
    for technique, groups in grouped.items():
        result[technique] = {}
        for group, pairs in groups.items():
            fail_count = failures.get(technique, {}).get(group, 0)
            result[technique][group] = QErrorSummary.from_pairs(
                pairs, failures=fail_count
            )
    return result


def group_by(field_name: str) -> Callable[[EvalRecord], str]:
    """Group-key factory over the query's metadata (topology/size/bucket)."""

    def key(record: EvalRecord) -> str:
        return record.groups.get(field_name, "?")

    return key


def mean_elapsed(
    records: Iterable[EvalRecord],
    group_key: Optional[Callable[[EvalRecord], str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Average per-query estimation time per technique (and group)."""
    sums: Dict[str, Dict[str, List[float]]] = {}
    for record in records:
        group = group_key(record) if group_key else "all"
        sums.setdefault(record.technique, {}).setdefault(group, []).append(
            record.elapsed
        )
    return {
        technique: {
            group: sum(values) / len(values) for group, values in groups.items()
        }
        for technique, groups in sums.items()
    }

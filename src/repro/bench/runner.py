"""Evaluation harness: run techniques over query workloads, collect q-errors.

This is the engine behind every figure/table reproduction in
``benchmarks/``: it prepares each technique once (off-line summary
construction), runs every query the configured number of times (the paper
runs each query 30 times), and records per-run estimates, q-errors, times
and failures (unsupported queries, timeouts).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.errors import EstimationTimeout, GCareError, UnsupportedQueryError
from ..core.framework import Estimator
from ..core.registry import create_estimator
from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from ..metrics.qerror import QErrorSummary, qerror
from ..obs.trace import TraceCollector, traced
from ..workload.generator import WorkloadQuery


@dataclass
class NamedQuery:
    """A query with ground truth and grouping metadata."""

    name: str
    query: QueryGraph
    true_cardinality: int
    groups: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_workload(
        cls, prefix: str, index: int, workload_query: WorkloadQuery
    ) -> "NamedQuery":
        return cls(
            name=f"{prefix}{index}",
            query=workload_query.query,
            true_cardinality=workload_query.true_cardinality,
            groups={
                "topology": workload_query.topology.value,
                "size": str(workload_query.size),
                "bucket": workload_query.bucket_name,
            },
        )


#: key identifying one cell of the evaluation grid
CellKey = tuple  # (technique, query_name, run)


@dataclass
class EvalRecord:
    """Outcome of one estimation run of one technique on one query.

    ``elapsed`` is *on-line* estimation time only; off-line summary
    construction, when this cell is the one that triggered it, appears
    as the ``prepare`` entry of ``phases`` instead (the paper reports
    the two separately — Table 4 vs Figure 10).  ``phases``, ``counters``
    and ``trace`` are filled when the sweep runs with tracing enabled
    (``phases`` also without tracing, from ``info["timings"]``).
    """

    technique: str
    query_name: str
    run: int
    true_cardinality: int
    estimate: Optional[float]
    elapsed: float
    groups: Dict[str, str] = field(default_factory=dict)
    error: Optional[str] = None  # "unsupported" | "timeout" | other
    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    trace: Optional[dict] = None  # Trace.to_dict() when traced

    @property
    def qerror(self) -> Optional[float]:
        if self.estimate is None:
            return None
        return qerror(self.true_cardinality, self.estimate)

    @property
    def failed(self) -> bool:
        return self.estimate is None

    @property
    def key(self) -> CellKey:
        """The grid cell this record fills: ``(technique, query, run)``."""
        return (self.technique, self.query_name, self.run)

    def to_dict(self) -> dict:
        """JSON-serializable form (one line of a results log).

        Observability fields are emitted only when present — absent
        fields read back as their defaults, so old logs stay loadable.
        """
        payload = {
            "technique": self.technique,
            "query_name": self.query_name,
            "run": self.run,
            "true_cardinality": self.true_cardinality,
            "estimate": self.estimate,
            "elapsed": self.elapsed,
            "groups": dict(self.groups),
            "error": self.error,
        }
        if self.phases:
            payload["phases"] = dict(self.phases)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "EvalRecord":
        return cls(
            technique=payload["technique"],
            query_name=payload["query_name"],
            run=int(payload["run"]),
            true_cardinality=int(payload["true_cardinality"]),
            estimate=payload.get("estimate"),
            elapsed=float(payload.get("elapsed", 0.0)),
            groups=dict(payload.get("groups", {})),
            error=payload.get("error"),
            phases={
                k: float(v) for k, v in payload.get("phases", {}).items()
            },
            counters={
                k: int(v) for k, v in payload.get("counters", {}).items()
            },
            trace=payload.get("trace"),
        )


def derive_seed(base_seed: int, run: int) -> int:
    """Seed for repetition ``run`` of an estimator seeded with ``base_seed``.

    This is the determinism contract of the evaluation grid: the seed of a
    cell depends only on ``(base_seed, run)`` — never on which worker or in
    which order the cell executes — so parallel sweeps are bit-identical to
    serial ones.
    """
    return base_seed + run


def run_cell(
    name: str,
    estimator: Estimator,
    named: "NamedQuery",
    run: int,
    base_seed: Optional[int] = None,
    reseed: bool = True,
    trace: bool = False,
) -> EvalRecord:
    """Execute one ``(technique, query, run)`` cell of the evaluation grid.

    The single code path shared by the serial and parallel runners.  When
    ``reseed`` is set the estimator runs under ``derive_seed(base_seed,
    run)``; its own ``seed`` attribute is restored afterwards, so running a
    cell is side-effect-free for the caller.

    ``elapsed`` covers on-line estimation only.  When this cell is the one
    that triggers the estimator's off-line preparation, the build time is
    reported as the ``prepare`` entry of ``record.phases``, not folded into
    ``elapsed`` — otherwise the first query of every sweep would charge the
    whole summary construction to its latency.

    With ``trace`` set, the cell runs under a fresh
    :class:`~repro.obs.trace.TraceCollector`; the record carries the phase
    breakdown, the counter totals and the full serialized trace.  Tracing
    never touches the estimator's RNG, so traced estimates are identical
    to untraced ones.
    """
    seed_before = estimator.seed
    if reseed:
        base = seed_before if base_seed is None else base_seed
        estimator.seed = derive_seed(base, run)
    was_prepared = estimator.prepared
    collector = TraceCollector() if trace else None
    error: Optional[str] = None
    estimate: Optional[float] = None
    elapsed = 0.0
    phases: Dict[str, float] = {}
    counters: Dict[str, int] = {}
    trace_payload: Optional[dict] = None
    start = time.monotonic()
    try:
        if collector is not None:
            context = traced(estimator, collector)
        else:
            context = nullcontext()
        with context:
            estimate_result = estimator.estimate(named.query)
        estimate = estimate_result.estimate
        elapsed = estimate_result.elapsed  # on-line time only
        phases = dict(estimate_result.info.get("timings", {}))
    except UnsupportedQueryError:
        error = "unsupported"
    except EstimationTimeout:
        error = "timeout"
    except GCareError as exc:  # pragma: no cover - defensive
        error = f"error: {exc}"
    finally:
        estimator.seed = seed_before
    if error is not None:
        elapsed = time.monotonic() - start
        if not was_prepared and estimator.prepared:
            # the failing run still built the summary; keep elapsed on-line
            elapsed = max(0.0, elapsed - estimator.preparation_time)
    if collector is not None:
        snapshot = collector.snapshot()
        counters = dict(snapshot.counters)
        trace_payload = snapshot.to_dict()
        if error is not None:
            # partial run: attribute what we can from the (closed) spans
            phases = snapshot.phase_seconds()
    if not was_prepared and estimator.prepared:
        phases.setdefault("prepare", estimator.preparation_time)
    return EvalRecord(
        technique=name,
        query_name=named.name,
        run=run,
        true_cardinality=named.true_cardinality,
        estimate=estimate,
        elapsed=elapsed,
        groups=dict(named.groups),
        error=error,
        phases=phases,
        counters=counters,
        trace=trace_payload,
    )


class EvaluationRunner:
    """Runs a set of techniques over a set of queries."""

    def __init__(
        self,
        graph: Graph,
        techniques: Sequence[str],
        sampling_ratio: float = 0.03,
        seed: int = 0,
        time_limit: float = 20.0,
        estimator_kwargs: Optional[Mapping[str, Mapping]] = None,
        trace: bool = False,
    ) -> None:
        self.graph = graph
        self.technique_names = list(techniques)
        self.sampling_ratio = sampling_ratio
        self.seed = seed
        self.time_limit = time_limit
        #: collect a span trace + counters into every record (off by default)
        self.trace = trace
        self.estimator_kwargs = {
            name: dict(kwargs) for name, kwargs in (estimator_kwargs or {}).items()
        }
        self.estimators: Dict[str, Estimator] = {}
        self.preparation_times: Dict[str, float] = {}
        extra = self.estimator_kwargs
        for name in self.technique_names:
            kwargs = dict(extra.get(name, {}))
            self.estimators[name] = create_estimator(
                name,
                graph,
                sampling_ratio=sampling_ratio,
                seed=seed,
                time_limit=time_limit,
                **kwargs,
            )

    def prepare(self) -> Dict[str, float]:
        """Run off-line preparation for every technique; returns times."""
        for name, estimator in self.estimators.items():
            self.preparation_times[name] = estimator.prepare()
        return dict(self.preparation_times)

    def grid(
        self, queries: Sequence[NamedQuery], runs: int
    ) -> List[tuple]:
        """The ``(technique, query, run)`` cells in canonical serial order.

        Both runners execute exactly this grid; the parallel runner also
        returns its records in this order, which is what makes serial and
        parallel sweeps directly comparable.
        """
        return [
            (name, named, run)
            for name in self.technique_names
            for named in queries
            for run in range(runs)
        ]

    def run(
        self,
        queries: Sequence[NamedQuery],
        runs: int = 1,
        reseed: bool = True,
        results_log=None,
    ) -> List[EvalRecord]:
        """Estimate every query ``runs`` times with every technique.

        When ``reseed`` is set, run ``r`` uses ``derive_seed(base_seed, r)``
        so sampling-based techniques produce independent repetitions.

        ``results_log`` (a :class:`repro.bench.results_log.ResultsLog`)
        enables checkpoint/resume: each record is appended to the log as it
        completes, and cells already present in the log are not re-executed
        — their logged records are returned in place.
        """
        self.prepare()
        done: Dict[CellKey, EvalRecord] = (
            results_log.completed() if results_log is not None else {}
        )
        records: List[EvalRecord] = []
        for name, named, run in self.grid(queries, runs):
            key = (name, named.name, run)
            if key in done:
                records.append(done[key])
                continue
            record = run_cell(
                name,
                self.estimators[name],
                named,
                run,
                reseed=reseed,
                trace=self.trace,
            )
            if results_log is not None:
                results_log.append(record)
            records.append(record)
        return records

    @staticmethod
    def _run_one(
        name: str, estimator: Estimator, named: NamedQuery, run: int
    ) -> EvalRecord:
        """Backwards-compatible alias for :func:`run_cell`."""
        return run_cell(name, estimator, named, run, reseed=False)


# ---------------------------------------------------------------------------
# aggregation helpers
# ---------------------------------------------------------------------------
def summarize(
    records: Iterable[EvalRecord],
    group_key: Optional[Callable[[EvalRecord], str]] = None,
) -> Dict[str, Dict[str, QErrorSummary]]:
    """Summarize q-errors per technique (optionally per group).

    Returns ``{technique: {group: QErrorSummary}}``; without a group key the
    single group is named ``"all"``.  Failed runs count toward
    ``QErrorSummary.failures`` of their group.
    """
    grouped: Dict[str, Dict[str, List]] = {}
    failures: Dict[str, Dict[str, int]] = {}
    for record in records:
        group = group_key(record) if group_key else "all"
        if record.failed:
            failures.setdefault(record.technique, {}).setdefault(group, 0)
            failures[record.technique][group] += 1
            grouped.setdefault(record.technique, {}).setdefault(group, [])
            continue
        grouped.setdefault(record.technique, {}).setdefault(group, []).append(
            (record.true_cardinality, record.estimate)
        )
    result: Dict[str, Dict[str, QErrorSummary]] = {}
    for technique, groups in grouped.items():
        result[technique] = {}
        for group, pairs in groups.items():
            fail_count = failures.get(technique, {}).get(group, 0)
            result[technique][group] = QErrorSummary.from_pairs(
                pairs, failures=fail_count
            )
    return result


def group_by(field_name: str) -> Callable[[EvalRecord], str]:
    """Group-key factory over the query's metadata (topology/size/bucket)."""

    def key(record: EvalRecord) -> str:
        return record.groups.get(field_name, "?")

    return key


def mean_elapsed(
    records: Iterable[EvalRecord],
    group_key: Optional[Callable[[EvalRecord], str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Average per-query estimation time per technique (and group)."""
    sums: Dict[str, Dict[str, List[float]]] = {}
    for record in records:
        group = group_key(record) if group_key else "all"
        sums.setdefault(record.technique, {}).setdefault(group, []).append(
            record.elapsed
        )
    return {
        technique: {
            group: sum(values) / len(values) for group, values in groups.items()
        }
        for technique, groups in sums.items()
    }

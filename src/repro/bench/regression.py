"""Regression tracking for benchmark results.

A benchmark framework's results are only useful if they are comparable
across runs — of different techniques, versions, or machines.  This
module persists *summaries* of experiment results (per technique/group
median q-errors, failure counts) as JSON snapshots and diffs two
snapshots, flagging regressions beyond a tolerance factor.

Typical use::

    from repro.bench import figures, regression

    result = figures.fig6c_yago_topology()
    snapshot = regression.snapshot_from_result(result)
    regression.save_snapshot(snapshot, "baselines/F6c.json")

    # ... after changing an estimator ...
    report = regression.compare(
        regression.load_snapshot("baselines/F6c.json"),
        regression.snapshot_from_result(figures.fig6c_yago_topology()),
    )
    assert not report.regressions, report.describe()
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

PathLike = Union[str, Path]

#: snapshot format version
FORMAT_VERSION = 1


@dataclass
class Snapshot:
    """Persisted summary of one experiment run."""

    experiment_id: str
    #: {technique: {group: median q-error}}
    medians: Dict[str, Dict[str, float]]
    #: {technique: {group: failure count}}
    failures: Dict[str, Dict[str, int]]

    def to_dict(self) -> dict:
        return {
            "version": FORMAT_VERSION,
            "experiment_id": self.experiment_id,
            "medians": self.medians,
            "failures": self.failures,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Snapshot":
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {payload.get('version')!r}"
            )
        return cls(
            experiment_id=payload["experiment_id"],
            medians=payload["medians"],
            failures=payload["failures"],
        )


@dataclass
class Difference:
    """One changed cell between two snapshots."""

    technique: str
    group: str
    kind: str  # "median" | "failures" | "missing" | "new"
    before: Optional[float]
    after: Optional[float]

    def describe(self) -> str:
        return (
            f"{self.technique}/{self.group} [{self.kind}]: "
            f"{self.before} -> {self.after}"
        )


@dataclass
class ComparisonReport:
    """Outcome of comparing a new snapshot against a baseline."""

    regressions: List[Difference] = field(default_factory=list)
    improvements: List[Difference] = field(default_factory=list)
    other_changes: List[Difference] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines: List[str] = []
        for title, diffs in (
            ("REGRESSIONS", self.regressions),
            ("improvements", self.improvements),
            ("other changes", self.other_changes),
        ):
            if diffs:
                lines.append(f"{title}:")
                lines.extend(f"  {d.describe()}" for d in diffs)
        return "\n".join(lines) or "no changes"


def snapshot_from_result(result) -> Snapshot:
    """Build a snapshot from an ExperimentResult with 'summaries' data.

    Works with any result of the grouped-accuracy experiments (F6b..F9);
    other experiments can construct :class:`Snapshot` directly.
    """
    summaries = result.data.get("summaries", {})
    medians: Dict[str, Dict[str, float]] = {}
    failures: Dict[str, Dict[str, int]] = {}
    for technique, groups in summaries.items():
        medians[technique] = {}
        failures[technique] = {}
        for group, summary in groups.items():
            if summary.count:
                medians[technique][group] = summary.median
            failures[technique][group] = summary.failures
    return Snapshot(result.experiment_id, medians, failures)


def snapshot_from_records(
    experiment_id: str,
    records,
    group_field: Optional[str] = None,
) -> Snapshot:
    """Build a snapshot directly from :class:`EvalRecord` instances.

    ``group_field`` selects the grouping metadata ("topology", "size",
    "bucket"); ``None`` collapses everything into the ``"all"`` group.
    This is how parallel-sweep output (see :func:`snapshot_from_log`)
    enters regression tracking without going through a figure function.
    """
    from .runner import group_by, summarize

    summaries = summarize(
        records, group_by(group_field) if group_field else None
    )
    medians: Dict[str, Dict[str, float]] = {}
    failures: Dict[str, Dict[str, int]] = {}
    for technique, groups in summaries.items():
        medians[technique] = {}
        failures[technique] = {}
        for group, summary in groups.items():
            if summary.count:
                medians[technique][group] = summary.median
            failures[technique][group] = summary.failures
    return Snapshot(experiment_id, medians, failures)


def snapshot_from_log(
    experiment_id: str,
    path: PathLike,
    group_field: Optional[str] = None,
) -> Snapshot:
    """Summarize a JSONL results log (a checkpointed sweep) as a snapshot.

    The log is the stream a :class:`~repro.bench.parallel.ParallelEvaluationRunner`
    writes; summaries are order-independent, so a resumed/merged log
    yields the same snapshot as an uninterrupted run.
    """
    from .results_log import ResultsLog

    return snapshot_from_records(
        experiment_id, ResultsLog(path).load(), group_field
    )


def save_snapshot(snapshot: Snapshot, path: PathLike) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot.to_dict(), indent=1))


def load_snapshot(path: PathLike) -> Snapshot:
    return Snapshot.from_dict(json.loads(Path(path).read_text()))


def compare(
    baseline: Snapshot,
    current: Snapshot,
    tolerance_factor: float = 3.0,
) -> ComparisonReport:
    """Diff two snapshots of the same experiment.

    A *regression* is a median q-error growing beyond
    ``tolerance_factor`` times the baseline (or new failures appearing);
    shrinking beyond the same factor counts as an improvement; anything
    else within tolerance is ignored, and appearing/disappearing cells
    are listed as other changes.
    """
    if baseline.experiment_id != current.experiment_id:
        raise ValueError(
            f"cannot compare {baseline.experiment_id!r} "
            f"with {current.experiment_id!r}"
        )
    report = ComparisonReport()
    techniques = set(baseline.medians) | set(current.medians)
    for technique in sorted(techniques):
        base_groups = baseline.medians.get(technique, {})
        cur_groups = current.medians.get(technique, {})
        for group in sorted(set(base_groups) | set(cur_groups)):
            before = base_groups.get(group)
            after = cur_groups.get(group)
            if before is None and after is not None:
                report.other_changes.append(
                    Difference(technique, group, "new", None, after)
                )
            elif before is not None and after is None:
                report.other_changes.append(
                    Difference(technique, group, "missing", before, None)
                )
            elif before is not None and after is not None:
                if after > before * tolerance_factor:
                    report.regressions.append(
                        Difference(technique, group, "median", before, after)
                    )
                elif before > after * tolerance_factor:
                    report.improvements.append(
                        Difference(technique, group, "median", before, after)
                    )
        base_failures = baseline.failures.get(technique, {})
        cur_failures = current.failures.get(technique, {})
        for group in sorted(set(base_failures) | set(cur_failures)):
            before_f = base_failures.get(group, 0)
            after_f = cur_failures.get(group, 0)
            if after_f > before_f:
                report.regressions.append(
                    Difference(
                        technique, group, "failures", before_f, after_f
                    )
                )
    return report

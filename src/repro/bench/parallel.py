"""Parallel evaluation engine: process fan-out with hard timeouts.

The serial :class:`~repro.bench.runner.EvaluationRunner` executes every
``(technique, query, run)`` cell in one process and relies on the
*cooperative* deadline checks inside :meth:`Estimator.estimate` — an
estimator that blocks between deadline checks stalls the whole sweep.
The paper's methodology (30 runs per query per technique under a hard
5-minute budget, Section 5.3) needs something stronger, and so does the
goal of saturating the hardware.  This module provides it:

* **process fan-out** — the evaluation grid is distributed over a pool of
  persistent worker processes; each worker builds each technique's
  estimator (and its off-line summary) once and then streams cells;
* **batched dispatch** — cells ship to workers in chunks (``batch_size``,
  auto-sized from the grid shape) so the pipe round trip and poll loop
  are paid per batch, not per cell, while the ``start`` message keeps
  deadline enforcement per-cell;
* **zero-copy shared memory** — when the platform supports it and the
  graph is sealed, the parent publishes the CSR buffers and the prepared
  summaries into named shared-memory segments and sends workers tiny
  :class:`~repro.shm.ShmRef` envelopes instead of pickled copies: attach
  cost is independent of graph size and every worker maps the same
  physical pages (``use_shm=False`` restores plain pickling; results are
  bit-identical either way);
* **hard timeout enforcement** — the parent tracks when each worker
  *started* estimating and kills any worker that exceeds the per-query
  ``time_limit`` plus a grace period.  The killed cell is recorded as
  ``error="timeout"`` and a fresh worker takes over the remaining cells,
  so a pathological estimator can delay a sweep but never hang it;
* **deterministic seeding** — every cell's seed is
  :func:`~repro.bench.runner.derive_seed` of ``(base_seed, run)``
  regardless of which worker executes it or in which order, so parallel
  results are identical to serial results field-for-field (``elapsed``
  aside);
* **checkpoint/resume** — with a
  :class:`~repro.bench.results_log.ResultsLog`, records stream to disk
  as they complete and a re-invocation skips every already-logged cell.

The default start method is ``fork`` where available (Linux): workers
inherit the graph and any estimators registered via
:func:`repro.core.registry.register_estimator` without pickling.  Under
``spawn`` every technique must be importable from the registry.

Serial execution stays the default elsewhere in the library — on the
tiny laptop-scale graphs of the reproduction, process startup can cost
more than the sweep itself.  Pass ``workers <= 1`` (or just use the base
runner) for those.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence

from .. import shm as shm_mod
from ..core.registry import create_estimator
from ..faults.inject import maybe_die
from ..faults.plan import FaultPlan
from ..graph.digraph import Graph
from ..obs.trace import NO_TRACE
from ..shm import ShmRef
from .results_log import ResultsLog
from .runner import EvalRecord, EvaluationRunner, NamedQuery, run_cell
from .summary_cache import blobs_from_shm, blobs_to_shm, hydrate_from_blob

#: extra wall-clock granted beyond ``time_limit`` before a worker is killed;
#: generous because the cooperative deadline should fire first — the kill
#: is a backstop, not the primary mechanism
DEFAULT_KILL_GRACE = 5.0

#: how many times a cell whose worker died unexpectedly is retried before
#: it is recorded as ``error="crashed"``
DEFAULT_WORKER_RETRIES = 1

#: base of the linear retry backoff (seconds slept before the respawn)
DEFAULT_RESPAWN_BACKOFF = 0.05

#: cap on replacement workers spawned for *unexpected* deaths (hard
#: timeout kills are intentional and not counted); once exhausted, the
#: remaining cells are recorded as crashed instead of respawning forever
DEFAULT_MAX_WORKER_RESPAWNS = 16


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _worker_main(
    conn,
    graph: Graph,
    sampling_ratio: float,
    seed: int,
    time_limit: Optional[float],
    estimator_kwargs: Mapping[str, Mapping],
    trace: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    memory_budget: Optional[int] = None,
    fallback: Optional[str] = None,
    summary_blobs: Optional[Mapping[str, bytes]] = None,
) -> None:
    """Worker loop: receive cell batches, run them, stream results back.

    Messages from the parent are ``(cells, reseed)`` pairs — ``cells`` a
    list of ``(index, technique, named, run)`` tuples — or ``None`` (shut
    down).  Cells inside a batch execute in order; for each one the
    worker sends ``("start", index)`` once the estimator is prepared and
    estimation actually begins — the parent measures the per-cell hard
    deadline from that moment — followed by ``("done", index, record)``
    or ``("failed", index, message)``.  Batching amortizes the
    send/recv/poll round trip per batch instead of per cell without
    weakening timeout enforcement: deadlines stay per-cell because the
    start message does.

    ``graph`` and ``summary_blobs`` may each arrive as a
    :class:`~repro.shm.ShmRef` instead of the real object: the worker
    then attaches the named shared-memory segment read-only —
    reconstruction cost is independent of graph size, and all workers
    share one set of physical pages instead of holding private copies.

    With ``trace`` set, each cell runs under its own collector and the
    serialized trace crosses the process boundary *inside* the pickled
    record (``EvalRecord.trace``) — no shared file or extra channel.

    With a ``fault_plan``, the worker first consults
    :func:`~repro.faults.inject.maybe_die` — a worker-site crash decision
    kills the process via ``os._exit`` *before* the start message, which
    the parent observes as an unexpected death (EOF), exactly like a real
    segfault.  Eager preparation is skipped under injection so the plan's
    prepare-site faults can reach it inside :func:`run_cell`.

    ``summary_blobs`` maps technique names to serialized summaries the
    parent prepared once; a worker hydrates its estimator from the blob
    instead of rebuilding the summary (the first cell then records a
    ``prepare_cached`` phase).  Blobs are never passed under injection.
    """
    if isinstance(graph, ShmRef):
        from ..graph.compact import CompactGraph

        graph = CompactGraph.from_shm(graph)
    if isinstance(summary_blobs, ShmRef):
        # zero-copy views; they pin the mapping for as long as they live
        summary_blobs = blobs_from_shm(summary_blobs)
    estimators: Dict[str, object] = {}
    fallback_estimator = None
    inject = fault_plan is not None and fault_plan.enabled
    try:
        while True:
            message = conn.recv()
            if message is None:
                return
            cells, reseed = message
            for index, technique, named, run in cells:
                try:
                    maybe_die(fault_plan, technique, named.name, run)
                    estimator = estimators.get(technique)
                    if estimator is None:
                        kwargs = dict(estimator_kwargs.get(technique, {}))
                        estimator = create_estimator(
                            technique,
                            graph,
                            sampling_ratio=sampling_ratio,
                            seed=seed,
                            time_limit=time_limit,
                            **kwargs,
                        )
                        if not inject:
                            blob = (
                                summary_blobs.get(technique)
                                if summary_blobs is not None
                                else None
                            )
                            if blob is not None:
                                hydrate_from_blob(estimator, blob)
                            else:
                                estimator.prepare()
                        estimators[technique] = estimator
                    if fallback is not None and fallback_estimator is None:
                        fallback_estimator = create_estimator(
                            fallback,
                            graph,
                            sampling_ratio=sampling_ratio,
                            seed=seed,
                            time_limit=time_limit,
                        )
                    conn.send(("start", index))
                    record = run_cell(
                        technique, estimator, named, run, reseed=reseed,
                        trace=trace, fault_plan=fault_plan,
                        memory_budget=memory_budget,
                        fallback=fallback_estimator,
                    )
                    conn.send(("done", index, record))
                except Exception as exc:  # keep worker alive for other cells
                    estimators.pop(technique, None)
                    conn.send(("failed", index, f"{type(exc).__name__}: {exc}"))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        return


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
class _Worker:
    """Parent-side handle of one worker process."""

    def __init__(self, ctx, args) -> None:
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn, *args), daemon=True
        )
        self.process.start()
        child_conn.close()
        #: cells assigned to this worker; the head is currently executing
        self.batch: "deque" = deque()
        #: (index, technique, named, run) currently executing, or None
        self.cell = None
        self.assigned_at: Optional[float] = None
        self.started_at: Optional[float] = None

    def assign(self, batch: Sequence, reseed: bool) -> None:
        """Ship a batch of cells; deadline tracking follows the head."""
        self.batch = deque(batch)
        self.cell = self.batch[0]
        self.assigned_at = time.monotonic()
        self.started_at = None
        self.conn.send((list(batch), reseed))

    def advance(self) -> None:
        """The current cell completed; track the next one in the batch."""
        if self.batch:
            self.batch.popleft()
        if self.batch:
            self.cell = self.batch[0]
            self.assigned_at = time.monotonic()
            self.started_at = None
        else:
            self.finish_cell()

    def drop_batch(self) -> List:
        """Clear the batch, returning the cells *behind* the current one.

        Used when the worker dies or is killed: the current cell gets its
        own retry/record decision, the rest are simply requeued — they
        never started, so they don't count as attempts.
        """
        rest = list(self.batch)[1:]
        self.batch = deque()
        return rest

    def finish_cell(self) -> None:
        self.batch = deque()
        self.cell = None
        self.assigned_at = None
        self.started_at = None

    def hard_deadline(
        self, time_limit: Optional[float], kill_grace: float,
        prepare_timeout: Optional[float],
    ) -> Optional[float]:
        """Monotonic instant after which this worker must be killed."""
        if self.cell is None:
            return None
        if self.started_at is not None:
            if time_limit is None:
                return None
            return self.started_at + time_limit + kill_grace
        if prepare_timeout is None:
            return None
        return self.assigned_at + prepare_timeout

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self.process.terminate()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=2.0)

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass


class ParallelEvaluationRunner(EvaluationRunner):
    """Evaluation runner that fans the grid out over worker processes.

    Parameters beyond :class:`EvaluationRunner`'s:

    workers:
        Number of worker processes.  ``workers <= 1`` falls back to the
        serial code path (still honoring ``results_log``).
    kill_grace:
        Seconds past ``time_limit`` before a busy worker is killed.  The
        cooperative deadline inside the estimator should fire first; the
        kill catches estimators that block between deadline checks.
    prepare_timeout:
        Optional hard budget for estimator construction + off-line
        preparation inside a worker (``None`` = unlimited).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available so locally registered techniques reach the workers.
    worker_retries:
        How many times a cell whose worker died *unexpectedly* (EOF on
        the pipe — segfault, OOM kill, ``os._exit``) is requeued before
        it is recorded as ``error="crashed"``.  Hard timeout kills are
        never retried — re-running a cell that already blew its budget
        would just blow it again.
    respawn_backoff:
        Base of the linear backoff slept before respawning after an
        unexpected death (``backoff * attempt``, capped at 1s).
    max_worker_respawns:
        Cap on replacement workers spawned for unexpected deaths across
        one :meth:`run` (``None`` = unlimited).  Once exhausted the pool
        shrinks instead, and any cells left when it empties are recorded
        as ``error="crashed"`` — a crash-looping estimator degrades the
        sweep, never wedges it.
    batch_size:
        Cells dispatched to a worker per message.  ``None`` (default)
        auto-sizes from the grid: roughly four batches per worker,
        clamped to [1, 32] — large grids amortize the IPC round trip,
        small grids keep all workers busy.  Timeouts stay per-cell
        (each cell still sends its own start message); a killed or
        crashed worker only forfeits its current cell — the unstarted
        remainder of its batch is requeued verbatim.
    use_shm:
        Ship the sealed graph and the prepared summaries to workers via
        named shared memory instead of pickling them per worker.
        ``None`` (default) enables it automatically when the platform
        supports shared memory and the graph is sealed; ``False`` forces
        plain pickling.  Results are bit-identical either way.
    """

    def __init__(
        self,
        graph: Graph,
        techniques: Sequence[str],
        sampling_ratio: float = 0.03,
        seed: int = 0,
        time_limit: float = 20.0,
        estimator_kwargs: Optional[Mapping[str, Mapping]] = None,
        workers: int = 4,
        kill_grace: float = DEFAULT_KILL_GRACE,
        prepare_timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        trace: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        memory_budget: Optional[int] = None,
        fallback: Optional[str] = None,
        summary_cache=None,
        worker_retries: int = DEFAULT_WORKER_RETRIES,
        respawn_backoff: float = DEFAULT_RESPAWN_BACKOFF,
        max_worker_respawns: Optional[int] = DEFAULT_MAX_WORKER_RESPAWNS,
        batch_size: Optional[int] = None,
        use_shm: Optional[bool] = None,
    ) -> None:
        super().__init__(
            graph,
            techniques,
            sampling_ratio=sampling_ratio,
            seed=seed,
            time_limit=time_limit,
            estimator_kwargs=estimator_kwargs,
            trace=trace,
            fault_plan=fault_plan,
            memory_budget=memory_budget,
            fallback=fallback,
            summary_cache=summary_cache,
        )
        self.workers = max(1, int(workers))
        self.kill_grace = kill_grace
        self.prepare_timeout = prepare_timeout
        self.start_method = start_method or _default_start_method()
        self.worker_retries = max(0, int(worker_retries))
        self.respawn_backoff = max(0.0, float(respawn_backoff))
        self.max_worker_respawns = max_worker_respawns
        self.batch_size = batch_size if batch_size is None else max(1, int(batch_size))
        self.use_shm = use_shm
        #: sweep-level observability sink (``shm.*`` gauges and the
        #: ``dispatch.batches`` counter); per-cell traces are separate
        #: and live inside each worker's :class:`EvalRecord`
        self.obs = NO_TRACE
        #: statistics of the most recent :meth:`run`
        self.last_run_stats: Dict[str, int] = {}
        #: per-cell-index count of unexpected-death attempts (this run)
        self._attempts: Dict[int, int] = {}
        #: replacement workers spawned for unexpected deaths (this run)
        self._crash_respawns = 0
        #: technique -> serialized summary, built once per :meth:`run` and
        #: shipped to every worker (None while a fault plan is active)
        self._summary_blobs: Optional[Dict[str, bytes]] = None
        #: what _spawn actually ships: the graph / blob mapping, or ShmRefs
        self._graph_payload = None
        self._blob_payload = None
        #: creator-side handles of segments published for this run
        self._shm_handles: List = []
        #: effective batch size of the current run
        self._batch = 1

    # ------------------------------------------------------------------
    def run(
        self,
        queries: Sequence[NamedQuery],
        runs: int = 1,
        reseed: bool = True,
        results_log: Optional[ResultsLog] = None,
    ) -> List[EvalRecord]:
        """Run the grid in parallel; returns records in serial grid order."""
        cells = [
            (index, name, named, run)
            for index, (name, named, run) in enumerate(self.grid(queries, runs))
        ]
        if results_log is not None:
            results_log.recover()  # truncate a torn tail before resuming
        done = results_log.completed() if results_log is not None else {}
        results: Dict[int, EvalRecord] = {}
        pending = deque()
        for index, name, named, run in cells:
            cached = done.get((name, named.name, run))
            if cached is not None:
                results[index] = cached
            else:
                pending.append((index, name, named, run))
        self.last_run_stats = {
            "cells": len(cells),
            "resumed": len(cells) - len(pending),
            "executed": 0,
            "timeouts": 0,
            "worker_failures": 0,
            "retries": 0,
            "respawns": 0,
            "batches": 0,
            "batch_size": 0,
            "shm_segments": 0,
            "shm_bytes": 0,
            "shm_attaches": 0,
            "shm_reaped": 0,
        }
        self._attempts = {}
        self._crash_respawns = 0
        if self.workers <= 1 or len(pending) <= 1:
            # tiny remainder: process startup would dominate
            serial = super().run(queries, runs, reseed, results_log)
            self.last_run_stats["executed"] = len(pending)
            return serial
        self._summary_blobs = self._build_summary_blobs()
        self._batch = self._effective_batch(len(pending))
        self.last_run_stats["batch_size"] = self._batch
        self._publish_shm()
        try:
            self._run_pool(pending, results, reseed, results_log)
        finally:
            self._release_shm()
            # close the persistent append handle on every exit path —
            # a sweep that dies mid-pool must not leak its log fd
            if results_log is not None:
                results_log.close()
        return [results[index] for index in range(len(cells))]

    def _effective_batch(self, n_pending: int) -> int:
        """Cells per dispatch message: explicit, else sized from the grid.

        Auto mode targets ~4 batches per worker — enough batches that a
        straggler cell can't serialize the tail of the sweep, few enough
        that IPC stops being per-cell.
        """
        if self.batch_size is not None:
            return self.batch_size
        if n_pending <= 0:
            return 1
        per_worker = -(-n_pending // (self.workers * 4))
        return max(1, min(32, per_worker))

    # ------------------------------------------------------------------
    def _build_summary_blobs(self) -> Optional[Dict[str, bytes]]:
        """Prepare every technique once in the parent, serialize for workers.

        The off-line summary is a pure function of the graph and the
        technique's parameters, so each worker hydrating the parent's
        serialized summary is equivalent to rebuilding it — minus the
        per-worker build cost.  Consults/feeds ``self.summary_cache``
        through :meth:`prepare`.  Returns ``None`` under fault injection
        (workers must build their own summaries inside ``run_cell`` so
        prepare-site faults can reach them); a technique whose summary
        fails to prepare or serialize simply ships no blob and the worker
        falls back to building it locally.
        """
        if self._inject:
            return None
        self.prepare()
        blobs: Dict[str, bytes] = {}
        for name, estimator in self.estimators.items():
            if not estimator.prepared:
                continue
            try:
                blobs[name] = estimator.export_summary()
            except Exception:
                continue  # unpicklable summary state: worker rebuilds
        return blobs

    # ------------------------------------------------------------------
    def _publish_shm(self) -> None:
        """Publish the sealed graph and summary blobs into shared memory.

        Sweep start is also when orphaned ``gcare-*`` segments of dead
        processes are reaped (a SIGKILLed previous run never got to run
        its finalizers).  Publication is best-effort: any failure falls
        back to shipping the real objects via pickle, which is always
        correct — shm is purely a transport optimization.
        """
        self._graph_payload = self.graph
        self._blob_payload = self._summary_blobs
        self._shm_handles = []
        if not shm_mod.shm_supported() or self.use_shm is False:
            return
        self.last_run_stats["shm_reaped"] = len(shm_mod.reap_orphans())
        use_shm = self.use_shm
        if use_shm is None:
            use_shm = bool(getattr(self.graph, "sealed", False))
        if not use_shm:
            return
        graph = self.graph
        if getattr(graph, "sealed", False) and hasattr(graph, "to_shm"):
            try:
                handle, ref = graph.to_shm()
            except Exception:
                pass  # unshareable graph: pickle it instead
            else:
                self._shm_handles.append(handle)
                self._graph_payload = ref
        if self._summary_blobs:
            try:
                handle, ref = blobs_to_shm(self._summary_blobs)
            except Exception:
                pass  # fall back to pickling the blob mapping
            else:
                self._shm_handles.append(handle)
                self._blob_payload = ref
        total = sum(h.nbytes for h in self._shm_handles)
        self.last_run_stats["shm_segments"] = len(self._shm_handles)
        self.last_run_stats["shm_bytes"] = total
        self.obs.gauge("shm.bytes", total)

    def _release_shm(self) -> None:
        """Unlink this run's segments (idempotent; workers have exited)."""
        for handle in self._shm_handles:
            try:
                handle.release()
            except Exception:  # pragma: no cover - defensive
                pass
        self._shm_handles = []
        self._graph_payload = None
        self._blob_payload = None

    # ------------------------------------------------------------------
    def _spawn(self, ctx) -> _Worker:
        if isinstance(self._graph_payload, ShmRef) or isinstance(
            self._blob_payload, ShmRef
        ):
            self.last_run_stats["shm_attaches"] += 1
            self.obs.gauge("shm.attach", self.last_run_stats["shm_attaches"])
        return _Worker(
            ctx,
            (
                self._graph_payload if self._graph_payload is not None else self.graph,
                self.sampling_ratio,
                self.seed,
                self.time_limit,
                self.estimator_kwargs,
                self.trace,
                self.fault_plan,
                self.memory_budget,
                self.fallback_name,
                self._blob_payload if self._blob_payload is not None else self._summary_blobs,
            ),
        )

    def _record(
        self,
        results: Dict[int, EvalRecord],
        results_log: Optional[ResultsLog],
        record: EvalRecord,
        index: int,
    ) -> None:
        results[index] = record
        if results_log is not None:
            results_log.append(record)

    def _failure_record(self, cell, error: str, elapsed: float) -> EvalRecord:
        _, name, named, run = cell
        return EvalRecord(
            technique=name,
            query_name=named.name,
            run=run,
            true_cardinality=named.true_cardinality,
            estimate=None,
            elapsed=elapsed,
            groups=dict(named.groups),
            error=error,
        )

    def _run_pool(
        self,
        pending: "deque",
        results: Dict[int, EvalRecord],
        reseed: bool,
        results_log: Optional[ResultsLog],
    ) -> None:
        from multiprocessing.connection import wait as connection_wait

        ctx = multiprocessing.get_context(self.start_method)
        pool: List[_Worker] = [
            self._spawn(ctx) for _ in range(min(self.workers, len(pending)))
        ]
        try:
            while pending or any(w.cell is not None for w in pool):
                if not pool:
                    # respawn cap exhausted and every worker gone: degrade
                    # the remaining cells to crash records rather than hang
                    while pending:
                        cell = pending.popleft()
                        self.last_run_stats["executed"] += 1
                        self._record(
                            results,
                            results_log,
                            self._failure_record(cell, "crashed", 0.0),
                            cell[0],
                        )
                    break
                for worker in list(pool):
                    if worker.cell is None and pending:
                        count = min(self._batch, len(pending))
                        batch = [pending.popleft() for _ in range(count)]
                        try:
                            worker.assign(batch, reseed)
                        except (OSError, BrokenPipeError):
                            # worker died while idle; requeue and replace
                            worker.finish_cell()
                            for cell in reversed(batch):
                                pending.appendleft(cell)
                            worker.kill()
                            self._replace(worker, pool, ctx, pending, crash=True)
                        else:
                            self.last_run_stats["batches"] += 1
                            self.obs.incr("dispatch.batches")
                busy = {w.conn: w for w in pool if w.cell is not None}
                ready = connection_wait(
                    list(busy), timeout=self._poll_timeout(busy.values())
                )
                for conn in ready:
                    worker = busy[conn]
                    self._drain(worker, results, results_log, pool, ctx, pending)
                self._enforce_deadlines(
                    pool, results, results_log, ctx, pending
                )
        finally:
            for worker in pool:
                worker.shutdown()

    def _poll_timeout(self, busy_workers) -> float:
        timeout = 0.5
        now = time.monotonic()
        for worker in busy_workers:
            deadline = worker.hard_deadline(
                self.time_limit, self.kill_grace, self.prepare_timeout
            )
            if deadline is not None:
                timeout = min(timeout, deadline - now)
        return max(0.01, timeout)

    def _drain(
        self,
        worker: _Worker,
        results: Dict[int, EvalRecord],
        results_log: Optional[ResultsLog],
        pool: List[_Worker],
        ctx,
        pending: "deque",
    ) -> None:
        """Process one message from a busy worker."""
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            # the worker died (segfault, OOM kill, os._exit, ...): retry
            # the current cell a bounded number of times, then record the
            # loss; the unstarted rest of its batch is requeued verbatim —
            # either way a replacement keeps the sweep going
            self.last_run_stats["worker_failures"] += 1
            cell = worker.cell
            index = cell[0]
            rest = worker.drop_batch()
            attempts = self._attempts.get(index, 0) + 1
            self._attempts[index] = attempts
            elapsed = time.monotonic() - (worker.assigned_at or time.monotonic())
            worker.kill()
            for requeued in reversed(rest):
                pending.appendleft(requeued)
            if attempts <= self.worker_retries:
                self.last_run_stats["retries"] += 1
                pending.appendleft(cell)
                if self.respawn_backoff:
                    time.sleep(min(self.respawn_backoff * attempts, 1.0))
            else:
                self.last_run_stats["executed"] += 1
                self._record(
                    results,
                    results_log,
                    self._failure_record(cell, "crashed", elapsed),
                    index,
                )
            self._replace(worker, pool, ctx, pending, crash=True)
            return
        kind = message[0]
        if kind == "start":
            worker.started_at = time.monotonic()
        elif kind == "done":
            _, index, record = message
            self.last_run_stats["executed"] += 1
            self._record(results, results_log, record, index)
            worker.advance()
        elif kind == "failed":
            _, index, error = message
            self.last_run_stats["executed"] += 1
            elapsed = time.monotonic() - (worker.assigned_at or time.monotonic())
            self._record(
                results,
                results_log,
                self._failure_record(worker.cell, f"error: {error}", elapsed),
                index,
            )
            worker.advance()

    def _enforce_deadlines(
        self,
        pool: List[_Worker],
        results: Dict[int, EvalRecord],
        results_log: Optional[ResultsLog],
        ctx,
        pending: "deque",
    ) -> None:
        now = time.monotonic()
        for worker in list(pool):
            deadline = worker.hard_deadline(
                self.time_limit, self.kill_grace, self.prepare_timeout
            )
            if deadline is None or now <= deadline:
                continue
            self.last_run_stats["timeouts"] += 1
            self.last_run_stats["executed"] += 1
            elapsed = now - (worker.started_at or worker.assigned_at or now)
            self._record(
                results,
                results_log,
                self._failure_record(worker.cell, "timeout", elapsed),
                worker.cell[0],
            )
            # only the running cell blew its budget; the rest of the
            # batch never started and is requeued for the replacement
            for requeued in reversed(worker.drop_batch()):
                pending.appendleft(requeued)
            worker.kill()
            self._replace(worker, pool, ctx, pending)

    def _replace(
        self,
        worker: _Worker,
        pool: List[_Worker],
        ctx,
        pending: "deque",
        crash: bool = False,
    ) -> None:
        """Swap a dead worker for a fresh one (if work and budget remain).

        ``crash`` marks an *unexpected* death, which counts against
        ``max_worker_respawns``; deliberate timeout kills do not.  When
        the cap is exhausted the pool just shrinks — once it empties,
        :meth:`_run_pool` degrades any remaining cells to ``"crashed"``.
        """
        worker.finish_cell()
        position = pool.index(worker)
        allowed = True
        if crash:
            cap = self.max_worker_respawns
            allowed = cap is None or self._crash_respawns < cap
        if pending and allowed:
            pool[position] = self._spawn(ctx)
            if crash:
                self._crash_respawns += 1
                self.last_run_stats["respawns"] += 1
        else:
            pool.pop(position)

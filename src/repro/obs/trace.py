"""Phase-level tracing for the estimation pipeline.

The G-CARE framework attributes estimator behaviour to the hooks of
Algorithm 1 — the paper's efficiency analysis (Section 6.4) explains
SumRDF's latency by where time is spent ("most of the time on
GetSubstructure and EstCard"), and follow-up analyses (Kim et al.,
"Combining Sampling and Synopses"; Chen et al. on summary-based CEG)
diagnose estimators through exactly this kind of per-phase/per-step
instrumentation.  This module supplies the substrate:

* **spans** — named intervals with parent/child nesting; the framework
  emits one per Algorithm-1 hook (``prepare_summary_structure``,
  ``decompose_query``, the ``get_substructures``/``est_card`` loop,
  ``agg_card``, ``selectivity``) under one ``estimate`` root;
* **counters** — monotonically increasing named integers (samples drawn,
  summary entries touched, backtracking steps, zero-estimate
  substructures);
* **gauges** — last-write-wins named values (summary size in bytes).

Two collector implementations share one duck-typed *sink protocol*
(``enabled`` / ``start`` / ``finish`` / ``span`` / ``incr`` / ``gauge`` /
``snapshot``):

* :class:`NullCollector` — the default.  Every estimator holds the
  module singleton :data:`NO_TRACE`; its methods are no-ops and hot
  loops guard their bookkeeping with one ``obs.enabled`` attribute
  check, so estimation with tracing off costs (near) nothing.
* :class:`TraceCollector` — the in-memory recorder.  Attach it with
  :func:`traced` (or assign ``estimator.obs``), run, then
  :meth:`~TraceCollector.snapshot` an immutable :class:`Trace`.

A :class:`Trace` is plain data: it serializes to a JSON-friendly dict
(``to_dict``/``from_dict``), which is how traces cross the
multiprocessing boundary of ``repro.bench.parallel`` — workers snapshot
their collector into each ``EvalRecord`` and the record rides the
result pipe and the JSONL results log unchanged.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

#: span names the framework emits, in execution order (the Algorithm-1
#: hooks plus the ``estimate`` root that parents the on-line ones)
HOOK_SPANS = (
    "prepare_summary_structure",
    "decompose_query",
    "get_substructures",
    "agg_card",
    "selectivity",
)

#: span name -> canonical short phase name used in reports and
#: ``EvalRecord.phases`` (matches ``EstimationResult.info["timings"]``)
SPAN_TO_PHASE = {
    "prepare_summary_structure": "prepare",
    "decompose_query": "decompose",
    "get_substructures": "substructures",
    "agg_card": "agg",
    "selectivity": "selectivity",
}


@dataclass
class Span:
    """One named interval; times are seconds on the monotonic clock."""

    name: str
    start: float
    end: Optional[float] = None  # None while still open
    parent: Optional[int] = None  # index of the parent span, None = root
    depth: int = 0

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None


@dataclass
class Trace:
    """An immutable snapshot of one traced run.

    ``complete`` is False when the snapshot had to close spans that were
    still open — a partial trace, e.g. from a run cut short by
    :class:`~repro.core.errors.EstimationTimeout` in a caller that
    snapshotted mid-flight, or from a killed worker.  Even partial
    traces are well-formed: every span is closed.
    """

    spans: List[Span] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    complete: bool = True

    # ------------------------------------------------------------------
    def span(self, name: str) -> Optional[Span]:
        """The first span named ``name``, or None."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, index: int) -> List[Span]:
        return [span for span in self.spans if span.parent == index]

    def phase_seconds(self) -> Dict[str, float]:
        """Per-phase durations in canonical short names.

        Sums the durations of every span mapped by :data:`SPAN_TO_PHASE`
        (spans outside the mapping — e.g. the ``estimate`` root — are
        not phases and are skipped).
        """
        result: Dict[str, float] = {}
        for span in self.spans:
            phase = SPAN_TO_PHASE.get(span.name)
            if phase is None:
                continue
            result[phase] = result.get(phase, 0.0) + span.duration
        return result

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly form with span times relative to the trace start."""
        origin = min((s.start for s in self.spans), default=0.0)
        return {
            "spans": [
                {
                    "name": s.name,
                    "start": s.start - origin,
                    "duration": s.duration,
                    "parent": s.parent,
                    "depth": s.depth,
                }
                for s in self.spans
            ],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "complete": self.complete,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Trace":
        spans = [
            Span(
                name=s["name"],
                start=float(s["start"]),
                end=float(s["start"]) + float(s["duration"]),
                parent=s.get("parent"),
                depth=int(s.get("depth", 0)),
            )
            for s in payload.get("spans", [])
        ]
        return cls(
            spans=spans,
            counters={k: int(v) for k, v in payload.get("counters", {}).items()},
            gauges={k: float(v) for k, v in payload.get("gauges", {}).items()},
            complete=bool(payload.get("complete", True)),
        )


class TraceCollector:
    """In-memory trace sink: records spans, counters and gauges.

    Not thread- or process-safe; one collector traces one estimator in
    one process (the parallel runner gives each worker cell its own).
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._open: List[int] = []  # stack of indices of open spans

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def start(self, name: str) -> int:
        """Open a span; returns its index (pass to :meth:`finish`)."""
        parent = self._open[-1] if self._open else None
        self.spans.append(
            Span(
                name=name,
                start=time.monotonic(),
                parent=parent,
                depth=len(self._open),
            )
        )
        index = len(self.spans) - 1
        self._open.append(index)
        return index

    def finish(self, index: Optional[int]) -> None:
        """Close the span at ``index`` (and any children left open by an
        exception unwinding past them).  Closing a closed span is a no-op."""
        if index is None or index not in self._open:
            return
        now = time.monotonic()
        while self._open:
            open_index = self._open.pop()
            span = self.spans[open_index]
            if span.end is None:
                span.end = now
            if open_index == index:
                return

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        index = self.start(name)
        try:
            yield
        finally:
            self.finish(index)

    # ------------------------------------------------------------------
    # counters / gauges
    # ------------------------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # ------------------------------------------------------------------
    def snapshot(self) -> Trace:
        """An immutable copy; dangling open spans are closed *in the copy*
        (marking the trace partial) and stay open in the collector."""
        now = time.monotonic()
        complete = not self._open
        spans = [
            Span(
                name=s.name,
                start=s.start,
                end=s.end if s.end is not None else now,
                parent=s.parent,
                depth=s.depth,
            )
            for s in self.spans
        ]
        return Trace(
            spans=spans,
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            complete=complete,
        )

    def reset(self) -> None:
        self.spans = []
        self.counters = {}
        self.gauges = {}
        self._open = []


class _NullSpan:
    """Shared no-op context manager returned by ``NullCollector.span``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullCollector:
    """The default sink: every operation is a no-op.

    Hot loops check ``obs.enabled`` once and skip their bookkeeping, so
    instrumentation with this sink attached costs one attribute read.
    """

    enabled = False

    __slots__ = ()

    def start(self, name: str) -> None:
        return None

    def finish(self, index) -> None:
        return None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def incr(self, name: str, n: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def snapshot(self) -> Trace:
        return Trace()


#: the module-wide no-op sink every estimator starts with
NO_TRACE = NullCollector()


@contextmanager
def traced(estimator, collector: Optional[TraceCollector] = None):
    """Attach a collector to ``estimator`` for the duration of the block.

    >>> with traced(estimator) as t:
    ...     estimator.estimate(query)
    >>> t.snapshot().phase_seconds()
    """
    collector = collector if collector is not None else TraceCollector()
    previous = estimator.obs
    estimator.obs = collector
    try:
        yield collector
    finally:
        estimator.obs = previous

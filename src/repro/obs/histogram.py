"""Mergeable latency histograms for the serving and load-generation path.

The serving SLO story needs tail percentiles, and tail percentiles need a
data structure that (a) records a latency in O(log buckets) with no
allocation, (b) merges exactly — a load generator runs one shard per
client and the aggregate histogram must equal the histogram of the union
of all samples, bit for bit — and (c) serializes to JSON so ``/stats``
responses and ``BENCH_*.json`` reports can carry it.

:class:`LatencyHistogram` uses fixed geometric buckets (powers of sqrt(2)
from 1 microsecond up, ~52 buckets to a minute) so bucketing is a pure
function of the sample: two histograms built from the same samples in any
order or sharding are identical.  The running total is kept in integer
nanoseconds, which keeps merge exact — float accumulation order would
otherwise make ``merge(shards)`` differ from ``histogram(union)`` in the
last bit.

Percentiles are bucket upper bounds (a deterministic overestimate of the
true sample percentile by at most one bucket width, ~41%); ``min``/``max``
are exact.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

#: bucket upper bounds in seconds: 1us * sqrt(2)^i — 2^26 us ≈ 67 s at
#: the top; anything slower lands in the overflow bucket
_BUCKET_BOUNDS: List[float] = [
    1e-6 * (2.0 ** (i / 2.0)) for i in range(53)
]

#: public alias for exposition formats (``repro.obs.metrics``) that need
#: the bucket boundaries alongside ``LatencyHistogram.counts``
BUCKET_BOUNDS = _BUCKET_BOUNDS


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact, order-independent merge."""

    __slots__ = ("counts", "count", "total_ns", "min_s", "max_s")

    def __init__(self) -> None:
        #: per-bucket sample counts (index len(_BUCKET_BOUNDS) = overflow)
        self.counts: List[int] = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        #: running total in integer nanoseconds (merge stays exact)
        self.total_ns = 0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None

    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Record one latency sample (negative samples clamp to zero)."""
        value = max(0.0, float(seconds))
        self.counts[bisect_left(_BUCKET_BOUNDS, value)] += 1
        self.count += 1
        self.total_ns += int(round(value * 1e9))
        if self.min_s is None or value < self.min_s:
            self.min_s = value
        if self.max_s is None or value > self.max_s:
            self.max_s = value

    def record_many(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    # ------------------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram (returns self).

        Exact: merging shard histograms in any order yields the same
        state as recording the union of their samples into one histogram.
        """
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total_ns += other.total_ns
        for bound in (other.min_s,):
            if bound is not None and (self.min_s is None or bound < self.min_s):
                self.min_s = bound
        for bound in (other.max_s,):
            if bound is not None and (self.max_s is None or bound > self.max_s):
                self.max_s = bound
        return self

    @classmethod
    def merged(cls, shards: Sequence["LatencyHistogram"]) -> "LatencyHistogram":
        result = cls()
        for shard in shards:
            result.merge(shard)
        return result

    # ------------------------------------------------------------------
    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the ``p``-quantile sample.

        ``p`` is a fraction in [0, 1].  Returns 0.0 for an empty
        histogram.  For the overflow bucket the exact ``max`` is
        returned, so pathological outliers are never under-reported.
        """
        if self.count == 0:
            return 0.0
        # integer rank computation: ceil(p * count) without float fuzz at
        # common fractions (0.5 * 200 must be rank 100, not 101)
        rank = max(1, min(self.count, _ceil_rank(p, self.count)))
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                if index >= len(_BUCKET_BOUNDS):
                    return float(self.max_s or 0.0)
                return _BUCKET_BOUNDS[index]
        return float(self.max_s or 0.0)  # pragma: no cover - unreachable

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return (self.total_ns / 1e9) / self.count

    def summary(self) -> Dict[str, float]:
        """The standard SLO tuple: count, p50/p95/p99, mean, min, max."""
        return {
            "count": self.count,
            "p50_s": self.percentile(0.50),
            "p95_s": self.percentile(0.95),
            "p99_s": self.percentile(0.99),
            "mean_s": self.mean,
            "min_s": self.min_s if self.min_s is not None else 0.0,
            "max_s": self.max_s if self.max_s is not None else 0.0,
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON form; zero runs of the bucket array are kept sparse."""
        return {
            "counts": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
            "count": self.count,
            "total_ns": self.total_ns,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "LatencyHistogram":
        histogram = cls()
        for key, count in payload.get("counts", {}).items():
            histogram.counts[int(key)] = int(count)
        histogram.count = int(payload.get("count", 0))
        histogram.total_ns = int(payload.get("total_ns", 0))
        histogram.min_s = payload.get("min_s")
        histogram.max_s = payload.get("max_s")
        return histogram

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.counts == other.counts
            and self.count == other.count
            and self.total_ns == other.total_ns
            and self.min_s == other.min_s
            and self.max_s == other.max_s
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LatencyHistogram(count={self.count}, p50={self.percentile(0.5):.6f}s)"


def _ceil_rank(p: float, count: int) -> int:
    """``ceil(p * count)`` computed in integers to dodge float fuzz."""
    numerator = int(round(p * 1_000_000))
    return -(-(numerator * count) // 1_000_000)

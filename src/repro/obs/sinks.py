"""Durable trace sinks.

The in-memory :class:`~repro.obs.trace.TraceCollector` is the recording
end; this module persists its snapshots.  Two paths exist:

* **standalone** — :class:`JsonlTraceSink` appends one JSON object per
  traced run (``{"meta": ..., "trace": Trace.to_dict()}``), mirroring
  the append-and-flush durability of ``repro.bench.results_log``;
* **embedded** — the evaluation runners store each cell's trace inside
  its ``EvalRecord`` (``record.trace``), so sweeps with tracing enabled
  need no second file: the results log *is* the trace log.  This is also
  how traces survive the multiprocessing boundary — the worker
  serializes its collector snapshot into the record before sending it
  over the result pipe.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from .trace import Trace

PathLike = Union[str, Path]


class JsonlTraceSink:
    """Append-only JSONL persistence for trace snapshots.

    Like the results log, lines are appended and flushed as they
    complete and a torn final line is ignored on read.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"JsonlTraceSink({str(self.path)!r})"

    def write(self, trace: Trace, meta: Optional[dict] = None) -> None:
        """Durably append one trace snapshot with optional metadata."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"meta": dict(meta or {}), "trace": trace.to_dict()}
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload) + "\n")
            handle.flush()

    def __iter__(self) -> Iterator[Tuple[dict, Trace]]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # torn write from an interrupted process: stop here
                    return
                yield payload.get("meta", {}), Trace.from_dict(
                    payload.get("trace", {})
                )

    def load(self) -> List[Tuple[dict, Trace]]:
        """All intact ``(meta, trace)`` pairs, in completion order."""
        return list(self)

"""Flat-text metrics exposition (a Prometheus-text-format subset).

The daemon's ``/metrics`` endpoint renders the service's observability
state — counters, cache hit/miss, circuit-breaker states, watchdog
recycle counts, and the :class:`~repro.obs.histogram.LatencyHistogram`
shards — as plain ``name{label="value"} number`` lines.  Deliberately a
*subset*: no HELP/TYPE metadata, histogram buckets are emitted sparsely
(zero-count buckets elided, one ``+Inf`` line always present), and
every line is parseable by :func:`parse_metrics`, which is what
``gcare load`` uses to scrape a run's server-side view at the end.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .histogram import BUCKET_BOUNDS, LatencyHistogram


def _escape(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_line(
    name: str, value, labels: Optional[Mapping[str, object]] = None
) -> str:
    """One exposition line: ``name{k="v",...} value``."""
    if labels:
        inner = ",".join(
            f'{key}="{_escape(val)}"' for key, val in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {value}"
    return f"{name} {value}"


def counter_lines(
    counters: Mapping[str, int], name: str = "gcare_counter"
) -> List[str]:
    """Every service counter as one labelled line (stable sort order)."""
    return [
        format_line(name, value, {"name": key})
        for key, value in sorted(counters.items())
    ]


def histogram_lines(
    name: str,
    histogram: LatencyHistogram,
    labels: Optional[Mapping[str, object]] = None,
) -> List[str]:
    """Cumulative ``_bucket`` lines plus ``_count`` and ``_sum``.

    Buckets whose delta is zero are elided (53 bounds x N techniques
    would otherwise dwarf the payload); the cumulative ``+Inf`` line is
    always present, so a scraper can still reconstruct totals.
    """
    base = dict(labels or {})
    lines: List[str] = []
    cumulative = 0
    for index, count in enumerate(histogram.counts):
        cumulative += count
        if count == 0 or index >= len(BUCKET_BOUNDS):
            continue  # the overflow bucket rides in the +Inf line
        lines.append(
            format_line(
                name + "_bucket",
                cumulative,
                {**base, "le": f"{BUCKET_BOUNDS[index]:.9f}"},
            )
        )
    lines.append(
        format_line(name + "_bucket", histogram.count, {**base, "le": "+Inf"})
    )
    lines.append(format_line(name + "_count", histogram.count, base or None))
    lines.append(
        format_line(name + "_sum", histogram.total_ns / 1e9, base or None)
    )
    return lines


def parse_metrics(text: str) -> Dict[str, float]:
    """Inverse of the exposition: ``{"name{labels}": value}``.

    Lenient by design (comments and malformed lines are skipped) — the
    load generator scrapes a live daemon and must not die on a metric it
    does not know.
    """
    parsed: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            continue
        try:
            parsed[key] = float(value)
        except ValueError:
            continue
    return parsed

"""Recursive in-memory sizer for summary structures.

The paper's Table 3 scores techniques on "space" — the memory footprint
of the off-line summary.  :func:`deep_sizeof` measures it without any
dependency: a non-recursive traversal over containers and object
dictionaries, counting every reachable object once.

The result is an *estimate* (Python object overheads are interpreter
specific, numpy buffers are counted via ``nbytes``) meant for relative
comparison between techniques, which is all the benchmark needs.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable

try:  # numpy is a hard dependency of the project, but stay defensive
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is always installed
    _np = None


def deep_sizeof(obj: Any) -> int:
    """Total size in bytes of ``obj`` and everything reachable from it.

    Shared objects are counted once (identity-deduplicated), so sizing a
    structure with internal aliasing does not double count.
    """
    seen = set()
    total = 0
    stack = [obj]
    while stack:
        current = stack.pop()
        identity = id(current)
        if identity in seen:
            continue
        seen.add(identity)
        if _np is not None and isinstance(current, _np.ndarray):
            total += int(current.nbytes) + sys.getsizeof(current) - current.nbytes
            continue
        try:
            total += sys.getsizeof(current)
        except TypeError:  # pragma: no cover - exotic objects
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        elif hasattr(current, "__dict__"):
            stack.append(vars(current))
        elif hasattr(current, "__slots__"):
            for slot in _iter_slots(current):
                if hasattr(current, slot):
                    stack.append(getattr(current, slot))
    return total


def _iter_slots(obj: Any) -> Iterable[str]:
    for cls in type(obj).__mro__:
        slots = getattr(cls, "__slots__", ())
        if isinstance(slots, str):
            yield slots
        else:
            yield from slots

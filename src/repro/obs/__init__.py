"""Observability layer: phase-level tracing, counters, and gauges.

See :mod:`repro.obs.trace` for the span/counter model and the sink
protocol, :mod:`repro.obs.sinks` for JSONL persistence, and
:mod:`repro.obs.size` for the recursive summary sizer.  The
``docs/tracing.md`` quickstart shows the end-to-end flow.
"""

from .histogram import BUCKET_BOUNDS, LatencyHistogram
from .metrics import counter_lines, format_line, histogram_lines, parse_metrics
from .size import deep_sizeof
from .sinks import JsonlTraceSink
from .trace import (
    HOOK_SPANS,
    NO_TRACE,
    SPAN_TO_PHASE,
    NullCollector,
    Span,
    Trace,
    TraceCollector,
    traced,
)

__all__ = [
    "BUCKET_BOUNDS",
    "HOOK_SPANS",
    "NO_TRACE",
    "SPAN_TO_PHASE",
    "JsonlTraceSink",
    "LatencyHistogram",
    "NullCollector",
    "Span",
    "Trace",
    "TraceCollector",
    "counter_lines",
    "deep_sizeof",
    "format_line",
    "histogram_lines",
    "parse_metrics",
    "traced",
]

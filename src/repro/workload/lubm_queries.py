"""Analogues of the LUBM benchmark queries used in the paper.

The paper evaluates on LUBM queries Q2, Q4, Q7, Q8, Q9 and Q12 (Section
5.3), excluding queries with at most two triple patterns.  The original
queries select on constants (a specific university / department /
professor); our query model expresses selections through vertex labels, so
each analogue keeps the original's *join structure and topology*:

* Q2 — triangle: graduate student member of a department that is a
  sub-organization of the university the student got their undergraduate
  degree from.
* Q4 — star: a professor with worksFor / teacherOf / degree edges
  (the original asks a professor's properties within one department).
* Q7 — tree: students taking courses taught by an associate professor.
* Q8 — tree: undergraduate students of departments of a university.
* Q9 — triangle: student whose advisor teaches a course the student takes.
* Q12 — chain-with-branch: a chair heading a department that is a
  sub-organization of a university.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph.query import QueryGraph
from ..datasets import lubm


def q2() -> QueryGraph:
    """Triangle: GradStudent --memberOf--> Dept --subOrgOf--> Univ,
    GradStudent --undergraduateDegreeFrom--> Univ."""
    return QueryGraph(
        vertex_labels=[
            (lubm.GRADUATE_STUDENT,),
            (lubm.DEPARTMENT,),
            (lubm.UNIVERSITY,),
        ],
        edges=[
            (0, 1, lubm.MEMBER_OF),
            (1, 2, lubm.SUB_ORGANIZATION_OF),
            (0, 2, lubm.UNDERGRADUATE_DEGREE_FROM),
        ],
    )


def q4() -> QueryGraph:
    """Star around a professor: worksFor, teacherOf, doctoralDegreeFrom."""
    return QueryGraph(
        vertex_labels=[
            (lubm.PROFESSOR,),
            (lubm.DEPARTMENT,),
            (lubm.COURSE,),
            (lubm.UNIVERSITY,),
        ],
        edges=[
            (0, 1, lubm.WORKS_FOR),
            (0, 2, lubm.TEACHER_OF),
            (0, 3, lubm.DOCTORAL_DEGREE_FROM),
        ],
    )


def q7() -> QueryGraph:
    """Tree: Student --takesCourse--> Course <--teacherOf-- AssocProf."""
    return QueryGraph(
        vertex_labels=[
            (lubm.STUDENT,),
            (lubm.COURSE,),
            (lubm.ASSOCIATE_PROFESSOR,),
        ],
        edges=[
            (0, 1, lubm.TAKES_COURSE),
            (2, 1, lubm.TEACHER_OF),
        ],
    )


def q8() -> QueryGraph:
    """Tree: UndergradStudent --memberOf--> Dept --subOrgOf--> Univ, with
    a second student of the same department."""
    return QueryGraph(
        vertex_labels=[
            (lubm.UNDERGRADUATE_STUDENT,),
            (lubm.DEPARTMENT,),
            (lubm.UNIVERSITY,),
            (lubm.GRADUATE_STUDENT,),
        ],
        edges=[
            (0, 1, lubm.MEMBER_OF),
            (1, 2, lubm.SUB_ORGANIZATION_OF),
            (3, 1, lubm.MEMBER_OF),
        ],
    )


def q9() -> QueryGraph:
    """Triangle: Student --advisor--> Prof --teacherOf--> Course
    <--takesCourse-- Student."""
    return QueryGraph(
        vertex_labels=[
            (lubm.STUDENT,),
            (lubm.PROFESSOR,),
            (lubm.COURSE,),
        ],
        edges=[
            (0, 1, lubm.ADVISOR),
            (1, 2, lubm.TEACHER_OF),
            (0, 2, lubm.TAKES_COURSE),
        ],
    )


def q12() -> QueryGraph:
    """Chain with a branch: Chair --headOf--> Dept --subOrgOf--> Univ,
    Chair --worksFor--> Dept."""
    return QueryGraph(
        vertex_labels=[
            (lubm.CHAIR,),
            (lubm.DEPARTMENT,),
            (lubm.UNIVERSITY,),
        ],
        edges=[
            (0, 1, lubm.HEAD_OF),
            (1, 2, lubm.SUB_ORGANIZATION_OF),
            (0, 1, lubm.WORKS_FOR),
        ],
    )


def benchmark_queries() -> Dict[str, QueryGraph]:
    """The six LUBM benchmark queries used throughout Section 6."""
    return {
        "Q2": q2(),
        "Q4": q4(),
        "Q7": q7(),
        "Q8": q8(),
        "Q9": q9(),
        "Q12": q12(),
    }


def query_names() -> List[str]:
    return ["Q2", "Q4", "Q7", "Q8", "Q9", "Q12"]

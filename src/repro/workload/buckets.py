"""Result-size buckets (paper, Table 1)."""

from __future__ import annotations

from typing import List, Optional, Tuple

#: (low, high] result-size buckets used throughout the evaluation
RESULT_SIZE_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (0, 10),
    (10, 10**2),
    (10**2, 10**3),
    (10**3, 10**4),
    (10**4, 10**5),
    (10**5, 10**6),
)

#: the largest cardinality the evaluation considers
MAX_RESULT_SIZE = RESULT_SIZE_BUCKETS[-1][1]


def bucket_of(cardinality: int) -> Optional[Tuple[int, int]]:
    """The (low, high] bucket containing ``cardinality``, if any."""
    for low, high in RESULT_SIZE_BUCKETS:
        if low < cardinality <= high:
            return (low, high)
    return None


def bucket_label(bucket: Tuple[int, int]) -> str:
    """Human-readable bucket name, e.g. ``"(10^2,10^3]"``."""

    def fmt(value: int) -> str:
        if value == 0:
            return "0"
        exponent = len(str(value)) - 1
        if value == 10**exponent:
            return "10" if exponent == 1 else f"10^{exponent}"
        return str(value)

    low, high = bucket
    return f"({fmt(low)},{fmt(high)}]"


def bucket_labels() -> List[str]:
    """Labels of all buckets, smallest first."""
    return [bucket_label(b) for b in RESULT_SIZE_BUCKETS]

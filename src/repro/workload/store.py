"""Persistence for generated workloads.

Generating queries is dominated by exact true-cardinality counting, so a
benchmark session wants to compute each workload once and reuse it across
processes (and so does anyone comparing a new technique against the same
queryset — the framework's stated purpose).  Workloads serialize to a
small JSON document: vertex label sets, edges, topology, and the true
cardinality.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..graph.query import QueryGraph
from ..graph.topology import Topology
from .generator import WorkloadQuery

PathLike = Union[str, Path]

#: schema version written into every file (bump on format changes)
FORMAT_VERSION = 1


def workload_to_dict(queries: List[WorkloadQuery]) -> dict:
    """Serialize a workload to a JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "queries": [
            {
                "vertex_labels": [
                    sorted(labels) for labels in wq.query.vertex_labels
                ],
                "edges": [list(edge) for edge in wq.query.edges],
                "topology": wq.topology.value,
                "true_cardinality": wq.true_cardinality,
            }
            for wq in queries
        ],
    }


def workload_from_dict(payload: dict) -> List[WorkloadQuery]:
    """Deserialize a workload (inverse of :func:`workload_to_dict`)."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported workload format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    queries: List[WorkloadQuery] = []
    for item in payload["queries"]:
        query = QueryGraph(
            vertex_labels=[tuple(ls) for ls in item["vertex_labels"]],
            edges=[tuple(edge) for edge in item["edges"]],
        )
        queries.append(
            WorkloadQuery(
                query=query,
                topology=Topology(item["topology"]),
                true_cardinality=int(item["true_cardinality"]),
            )
        )
    return queries


def save_workload(queries: List[WorkloadQuery], path: PathLike) -> None:
    """Write a workload to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(workload_to_dict(queries), handle, indent=1)


def load_workload(path: PathLike) -> List[WorkloadQuery]:
    """Read a workload from a JSON file."""
    with open(path) as handle:
        return workload_from_dict(json.load(handle))

"""A small triple-pattern language for authoring query graphs.

Queries in the paper's world are SPARQL basic graph patterns; writing
:class:`~repro.graph.query.QueryGraph` literals by hand is tedious and
error-prone.  This module parses a compact textual form::

    ?student :advisor ?prof .
    ?prof    :teacherOf ?course .
    ?student :takesCourse ?course .
    ?student a GraduateStudent .

* ``?name`` introduces a query vertex (first mention assigns its index);
* ``:predicate`` (or any bare token in the middle position) names an edge
  label, resolved through a predicate dictionary;
* ``a`` / ``rdf:type`` statements attach vertex labels, resolved through
  a vertex label dictionary;
* patterns are separated by ``.`` or newlines; ``#`` starts a comment.

Dictionaries map names to the integer labels of a dataset; the dataset
generators export them (e.g. ``repro.datasets.lubm.EDGE_LABEL_NAMES``).
Integer tokens are accepted directly, so the language also works for
datasets without name dictionaries.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..graph.query import QueryGraph

#: tokens treated as the rdf:type keyword
TYPE_KEYWORDS = ("a", "rdf:type", "type")


class PatternSyntaxError(ValueError):
    """Raised when a triple pattern string cannot be parsed."""


def _invert(names: Optional[Mapping[int, str]]) -> Dict[str, int]:
    if not names:
        return {}
    return {name: label for label, name in names.items()}


def _resolve(
    token: str, table: Dict[str, int], kind: str
) -> int:
    cleaned = token.lstrip(":")
    if cleaned in table:
        return table[cleaned]
    try:
        return int(cleaned)
    except ValueError:
        raise PatternSyntaxError(
            f"unknown {kind} {token!r}; known: {sorted(table) or 'integers'}"
        ) from None


def parse_query(
    text: str,
    edge_labels: Optional[Mapping[int, str]] = None,
    vertex_labels: Optional[Mapping[int, str]] = None,
) -> QueryGraph:
    """Parse triple patterns into a :class:`QueryGraph`.

    ``edge_labels`` / ``vertex_labels`` are the dataset's id->name
    dictionaries (as exported by the generators); names in the text are
    resolved through them, integers are accepted verbatim.
    """
    edge_table = _invert(edge_labels)
    vertex_table = _invert(vertex_labels)
    vertex_ids: Dict[str, int] = {}
    labels: List[set] = []
    edges: List[Tuple[int, int, int]] = []

    def vertex(token: str) -> int:
        if not token.startswith("?"):
            raise PatternSyntaxError(
                f"expected a ?variable in subject/object position, got {token!r}"
            )
        if token not in vertex_ids:
            vertex_ids[token] = len(labels)
            labels.append(set())
        return vertex_ids[token]

    for raw_line in text.replace(" . ", "\n").split("\n"):
        line = raw_line.split("#", 1)[0].strip().rstrip(".").strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise PatternSyntaxError(
                f"expected 'subject predicate object', got {line!r}"
            )
        subject, predicate, obj = parts
        if predicate in TYPE_KEYWORDS:
            labels[vertex(subject)].add(
                _resolve(obj, vertex_table, "vertex label")
            )
        else:
            edges.append(
                (
                    vertex(subject),
                    vertex(obj),
                    _resolve(predicate, edge_table, "edge label"),
                )
            )
    if not edges:
        raise PatternSyntaxError("the pattern contains no edges")
    return QueryGraph(labels, edges)


def format_query(
    query: QueryGraph,
    edge_labels: Optional[Mapping[int, str]] = None,
    vertex_labels: Optional[Mapping[int, str]] = None,
) -> str:
    """Inverse of :func:`parse_query`: render a query as triple patterns."""
    edge_names = dict(edge_labels or {})
    vertex_names = dict(vertex_labels or {})
    lines: List[str] = []
    for u in range(query.num_vertices):
        for label in sorted(query.vertex_labels[u]):
            name = vertex_names.get(label, str(label))
            lines.append(f"?u{u} a {name} .")
    for u, v, label in query.edges:
        name = edge_names.get(label, str(label))
        prefix = ":" if not name.isdigit() else ""
        lines.append(f"?u{u} {prefix}{name} ?u{v} .")
    return "\n".join(lines)

"""Test query workloads (paper, Section 5.3)."""

from . import dbpedia_queries, lubm_queries
from .buckets import (
    MAX_RESULT_SIZE,
    RESULT_SIZE_BUCKETS,
    bucket_label,
    bucket_labels,
    bucket_of,
)
from .generator import QueryGenerator, WorkloadQuery
from .patterns import format_query, parse_query
from .store import load_workload, save_workload

__all__ = [
    "MAX_RESULT_SIZE",
    "QueryGenerator",
    "RESULT_SIZE_BUCKETS",
    "WorkloadQuery",
    "bucket_label",
    "bucket_labels",
    "bucket_of",
    "dbpedia_queries",
    "format_query",
    "load_workload",
    "parse_query",
    "lubm_queries",
    "save_workload",
]

"""Test query generation (paper, Section 5.3).

"Given a query topology, query size, and result size, we generate queries
by traversing the schema graph randomly for each data graph matching a
target topology."  We traverse the *data* graph directly: an instance
subgraph matching the target topology is extracted, its edge labels become
the query's edge labels (so the query is guaranteed at least one
embedding), and vertex labels are kept with a tunable probability to
spread queries across the result-size buckets of Table 1.

True cardinalities are computed with the exact matcher; queries that time
out or exceed the largest bucket (10^6) are discarded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from ..graph.topology import Topology, classify
from ..matching.homomorphism import count_embeddings
from ..matching.treecount import count_tree_embeddings, is_tree_query
from .buckets import MAX_RESULT_SIZE, bucket_label, bucket_of

DataEdge = Tuple[int, int, int]


@dataclass
class WorkloadQuery:
    """A generated test query with its ground truth."""

    query: QueryGraph
    topology: Topology
    true_cardinality: int

    @property
    def size(self) -> int:
        return self.query.num_edges

    @property
    def bucket(self) -> Optional[Tuple[int, int]]:
        return bucket_of(self.true_cardinality)

    @property
    def bucket_name(self) -> str:
        bucket = self.bucket
        return bucket_label(bucket) if bucket else "none"


class QueryGenerator:
    """Extracts topology/size-controlled queries from a data graph."""

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        count_time_limit: float = 5.0,
        label_keep_probability: Optional[float] = None,
    ) -> None:
        """``label_keep_probability`` of None mixes probabilities across
        queries (0.0 / 0.3 / 0.6 / 1.0), spreading the workload over the
        result-size buckets of Table 1."""
        self.graph = graph
        self.rng = random.Random(seed)
        self.count_time_limit = count_time_limit
        self.label_keep_probability = label_keep_probability
        # undirected incidence: vertex -> [(neighbor, src, dst, label)]
        self._incidence: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for src, dst, label in graph.edges():
            self._incidence.setdefault(src, []).append((dst, src, dst, label))
            self._incidence.setdefault(dst, []).append((src, src, dst, label))
        self._active = [v for v in graph.vertices() if v in self._incidence]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(
        self,
        topology: Topology,
        size: int,
        count: int = 1,
        max_attempts: int = 400,
        label_keep_probability: Optional[float] = None,
        time_budget: float = 30.0,
    ) -> List[WorkloadQuery]:
        """Generate up to ``count`` queries of one topology and size.

        Stops early after ``time_budget`` seconds; generation on hub-heavy
        graphs is dominated by true-cardinality counting.
        """
        import time as _time

        if label_keep_probability is None:
            label_keep_probability = self.label_keep_probability
        deadline = _time.monotonic() + time_budget
        results: List[WorkloadQuery] = []
        seen: Set[Tuple] = set()
        attempts = 0
        while len(results) < count and attempts < max_attempts:
            if _time.monotonic() > deadline:
                break
            attempts += 1
            instance = self._extract_instance(topology, size)
            if instance is None:
                continue
            if label_keep_probability is None:
                keep = self.rng.choice((0.0, 0.3, 0.6, 1.0))
            else:
                keep = label_keep_probability
            query = self._instance_to_query(instance, keep)
            if query is None or query.num_edges != size:
                continue
            try:
                actual_topology = classify(query)
            except ValueError:
                continue
            if actual_topology is not topology:
                continue
            key = query.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            count = self._true_cardinality(query)
            if count is None or count > MAX_RESULT_SIZE:
                continue
            if count == 0:
                continue  # instance-extracted queries always match >= 1
            results.append(WorkloadQuery(query, topology, count))
        return results

    def generate_diverse(
        self,
        topology: Topology,
        size: int,
        count: int = 1,
        pool_factor: int = 3,
        **kwargs,
    ) -> List[WorkloadQuery]:
        """Generate ``count`` queries spread across result-size buckets.

        The paper generates queries *per result size* (Table 1).  We build
        a candidate pool and pick round-robin across the buckets actually
        reachable at this data scale, so accuracy figures are not dominated
        by cardinality-1 queries.
        """
        pool = self.generate(
            topology, size, count=count * pool_factor, **kwargs
        )
        by_bucket: Dict[object, List[WorkloadQuery]] = {}
        for wq in pool:
            by_bucket.setdefault(wq.bucket, []).append(wq)
        # largest buckets first: high-cardinality queries are the scarce
        # resource, pick them before filling up with tiny ones
        buckets = sorted(
            by_bucket, key=lambda b: -(b[1] if b else 0)
        )
        selected: List[WorkloadQuery] = []
        while len(selected) < count and any(by_bucket.values()):
            for bucket in buckets:
                if by_bucket[bucket] and len(selected) < count:
                    selected.append(by_bucket[bucket].pop(0))
        return selected

    def generate_workload(
        self,
        topologies: Iterable[Topology],
        sizes: Iterable[int],
        per_combination: int = 3,
    ) -> List[WorkloadQuery]:
        """Generate a full factorial workload over topologies x sizes."""
        workload: List[WorkloadQuery] = []
        for topology in topologies:
            for size in sizes:
                if not _feasible(topology, size):
                    continue
                workload.extend(self.generate(topology, size, per_combination))
        return workload

    def _true_cardinality(self, query: QueryGraph) -> Optional[int]:
        """Exact count, or None when the counting budget is exceeded.

        Acyclic queries take the dynamic-programming fast path (exact, no
        enumeration); cyclic ones use budgeted backtracking.
        """
        if is_tree_query(query):
            return count_tree_embeddings(self.graph, query)
        truth = count_embeddings(
            self.graph,
            query,
            time_limit=self.count_time_limit,
            max_count=MAX_RESULT_SIZE + 1,
        )
        if not truth.complete:
            return None
        return truth.count

    # ------------------------------------------------------------------
    # instance extraction per topology
    # ------------------------------------------------------------------
    def _extract_instance(
        self, topology: Topology, size: int
    ) -> Optional[Set[DataEdge]]:
        if not self._active:
            return None
        extractors = {
            Topology.CHAIN: self._extract_chain,
            Topology.STAR: self._extract_star,
            Topology.TREE: self._extract_tree,
            Topology.CYCLE: self._extract_cycle,
            Topology.CLIQUE: self._extract_clique,
            Topology.PETAL: self._extract_petal,
            Topology.FLOWER: self._extract_flower,
            Topology.GRAPH: self._extract_graph,
        }
        return extractors[topology](size)

    def _random_vertex(self) -> int:
        return self._active[self.rng.randrange(len(self._active))]

    def _random_star_center(self, size: int) -> Optional[int]:
        """A vertex with at least ``size`` distinct neighbors, if any."""
        if not hasattr(self, "_centers_by_degree"):
            self._centers_by_degree = sorted(
                self._active,
                key=lambda v: -len({n for n, *_ in self._incidence[v]}),
            )
            self._distinct_degree = {
                v: len({n for n, *_ in self._incidence[v]})
                for v in self._active
            }
        eligible_count = 0
        for v in self._centers_by_degree:
            if self._distinct_degree[v] >= size:
                eligible_count += 1
            else:
                break
        if eligible_count == 0:
            return None
        return self._centers_by_degree[self.rng.randrange(eligible_count)]

    def _extract_chain(self, size: int) -> Optional[Set[DataEdge]]:
        start = self._random_vertex()
        found = self._find_path(start, None, size, set())
        if found is None:
            return None
        path_edges, _ = found
        return set(path_edges)

    def _extract_star(self, size: int) -> Optional[Set[DataEdge]]:
        center = self._random_star_center(size)
        if center is None:
            return None
        incident = self._incidence.get(center, ())
        distinct = {}
        for n, s, d, l in incident:
            if n != center:
                distinct.setdefault(n, (s, d, l))
        if len(distinct) < size:
            return None
        chosen = self.rng.sample(sorted(distinct), size)
        return {distinct[n] for n in chosen}

    def _extract_tree(self, size: int) -> Optional[Set[DataEdge]]:
        start = self._random_vertex()
        vertices = {start}
        edges: Set[DataEdge] = set()
        for _ in range(size):
            frontier = sorted(vertices)
            self.rng.shuffle(frontier)
            grown = False
            for v in frontier:
                options = [
                    (n, s, d, l)
                    for n, s, d, l in self._incidence.get(v, ())
                    if n not in vertices
                ]
                if options:
                    n, s, d, l = options[self.rng.randrange(len(options))]
                    vertices.add(n)
                    edges.add((s, d, l))
                    grown = True
                    break
            if not grown:
                return None
        return edges

    def _extract_cycle(self, size: int) -> Optional[Set[DataEdge]]:
        """A simple cycle of ``size`` edges found by randomized DFS."""
        start = self._random_vertex()
        return self._find_cycle_from(start, size)

    def _find_cycle_from(self, start: int, size: int) -> Optional[Set[DataEdge]]:
        path = [start]
        edges: List[DataEdge] = []
        expansions = [0]

        def dfs(current: int, depth: int) -> bool:
            expansions[0] += 1
            if expansions[0] > 20000:
                return False
            options = list(self._incidence.get(current, ()))
            self.rng.shuffle(options)
            for n, s, d, l in options:
                if depth == size - 1:
                    if n == start and (s, d, l) not in edges:
                        edges.append((s, d, l))
                        return True
                    continue
                if n in path or n == start:
                    continue
                path.append(n)
                edges.append((s, d, l))
                if dfs(n, depth + 1):
                    return True
                path.pop()
                edges.pop()
            return False

        if dfs(start, 0):
            return set(edges)
        return None

    def _extract_clique(self, size: int) -> Optional[Set[DataEdge]]:
        """A clique whose undirected skeleton has ``size`` edges."""
        num_vertices = _clique_vertices(size)
        if num_vertices is None:
            return None
        seed_vertex = self._random_vertex()
        members = [seed_vertex]
        candidates = {n for n, *_ in self._incidence.get(seed_vertex, ())}
        candidates.discard(seed_vertex)
        while len(members) < num_vertices:
            viable = [
                c
                for c in sorted(candidates)
                if all(self._adjacent(c, m) for m in members)
            ]
            if not viable:
                return None
            chosen = viable[self.rng.randrange(len(viable))]
            members.append(chosen)
            candidates.discard(chosen)
        edges: Set[DataEdge] = set()
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                edge = self._pick_edge_between(u, v)
                if edge is None:
                    return None
                edges.add(edge)
        return edges if len(edges) == size else None

    def _extract_petal(self, size: int) -> Optional[Set[DataEdge]]:
        """A theta graph: three internally disjoint paths between s and t."""
        if size < 6:
            return None
        # split the edges into three path lengths, at most one of length 1
        # (two direct s-t edges would collapse in the undirected skeleton)
        while True:
            l1 = self.rng.randint(1, size - 4)
            l2 = self.rng.randint(2, size - l1 - 2)
            l3 = size - l1 - l2
            if l3 >= 2 and (l1 > 1 or l2 > 1):
                break
        start = self._random_vertex()
        first = self._find_path(start, None, l1, set())
        if first is None:
            return None
        path1, end = first
        if end == start:
            return None
        used = _internal_vertices(path1, start, end)
        second = self._find_path(start, end, l2, used)
        if second is None:
            return None
        path2, _ = second
        used |= _internal_vertices(path2, start, end)
        third = self._find_path(start, end, l3, used)
        if third is None:
            return None
        path3, _ = third
        edges = set(path1) | set(path2) | set(path3)
        return edges if len(edges) == size else None

    def _extract_flower(self, size: int) -> Optional[Set[DataEdge]]:
        """A petal (theta) at a source plus a chain attachment."""
        if size < 7:
            return None
        chain_length = self.rng.randint(1, max(1, size - 6))
        petal_size = size - chain_length
        petal = self._extract_petal(petal_size)
        if petal is None:
            return None
        petal_vertices = {v for s, d, _ in petal for v in (s, d)}
        degree: Dict[int, int] = {}
        for s, d, _ in petal:
            degree[s] = degree.get(s, 0) + 1
            degree[d] = degree.get(d, 0) + 1
        anchors = [v for v, deg in degree.items() if deg >= 3]
        if not anchors:
            return None
        source = anchors[self.rng.randrange(len(anchors))]
        chain: Set[DataEdge] = set()
        current = source
        visited = set(petal_vertices)
        for _ in range(chain_length):
            options = [
                (n, s, d, l)
                for n, s, d, l in self._incidence.get(current, ())
                if n not in visited
            ]
            if not options:
                return None
            n, s, d, l = options[self.rng.randrange(len(options))]
            chain.add((s, d, l))
            visited.add(n)
            current = n
        edges = petal | chain
        return edges if len(edges) == size else None

    def _extract_graph(self, size: int) -> Optional[Set[DataEdge]]:
        """A connected subgraph with at least one extra (cycle) edge."""
        tree_size = max(2, size - self.rng.randint(1, max(1, size // 3)))
        tree = self._extract_tree(tree_size)
        if tree is None:
            return None
        edges = set(tree)
        vertices = sorted({v for s, d, _ in edges for v in (s, d)})
        extra_needed = size - len(edges)
        candidates: List[DataEdge] = []
        vertex_set = set(vertices)
        for v in vertices:
            for n, s, d, l in self._incidence.get(v, ()):
                if n in vertex_set and (s, d, l) not in edges:
                    candidates.append((s, d, l))
        self.rng.shuffle(candidates)
        for edge in candidates:
            if extra_needed == 0:
                break
            if edge not in edges:
                edges.add(edge)
                extra_needed -= 1
        return edges if len(edges) == size else None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _adjacent(self, u: int, v: int) -> bool:
        return any(n == v for n, *_ in self._incidence.get(u, ()))

    def _pick_edge_between(self, u: int, v: int) -> Optional[DataEdge]:
        options = [
            (s, d, l) for n, s, d, l in self._incidence.get(u, ()) if n == v
        ]
        if not options:
            return None
        return options[self.rng.randrange(len(options))]

    def _find_path(
        self,
        start: int,
        end: Optional[int],
        length: int,
        forbidden_internal: Set[int],
    ) -> Optional[Tuple[List[DataEdge], int]]:
        """A simple path of ``length`` edges from start (to ``end`` if set),
        avoiding ``forbidden_internal`` as internal vertices."""
        path_edges: List[DataEdge] = []
        visited = {start}
        expansions = [0]

        def dfs(current: int, depth: int) -> Optional[int]:
            expansions[0] += 1
            if expansions[0] > 20000:
                return None
            options = list(self._incidence.get(current, ()))
            self.rng.shuffle(options)
            for n, s, d, l in options:
                if depth == length - 1:
                    if end is not None and n != end:
                        continue
                    if end is None and (n in visited or n in forbidden_internal):
                        continue
                    if (s, d, l) in path_edges:
                        continue
                    path_edges.append((s, d, l))
                    return n
                if n in visited or n in forbidden_internal or n == end:
                    continue
                visited.add(n)
                path_edges.append((s, d, l))
                result = dfs(n, depth + 1)
                if result is not None:
                    return result
                visited.discard(n)
                path_edges.pop()
            return None

        final = dfs(start, 0)
        if final is None:
            return None
        return path_edges, final

    def _instance_to_query(
        self, instance: Set[DataEdge], keep_probability: float
    ) -> Optional[QueryGraph]:
        vertices = sorted({v for s, d, _ in instance for v in (s, d)})
        mapping = {v: i for i, v in enumerate(vertices)}
        labels: List[Set[int]] = []
        for v in vertices:
            vlabels = self.graph.vertex_labels(v)
            if vlabels and self.rng.random() < keep_probability:
                labels.append({self.rng.choice(sorted(vlabels))})
            else:
                labels.append(set())
        edges = [(mapping[s], mapping[d], l) for s, d, l in sorted(instance)]
        return QueryGraph(labels, edges)


def _internal_vertices(
    path: List[DataEdge], start: int, end: int
) -> Set[int]:
    vertices = {v for s, d, _ in path for v in (s, d)}
    return vertices - {start, end}


def _clique_vertices(num_edges: int) -> Optional[int]:
    """k such that k(k-1)/2 == num_edges, if any."""
    k = 2
    while k * (k - 1) // 2 < num_edges:
        k += 1
    return k if k * (k - 1) // 2 == num_edges else None


def _feasible(topology: Topology, size: int) -> bool:
    """Whether the (topology, size) combination exists at all.

    Matches the paper's constraints: "the minimum query size is six for
    clique, petal, and flower" (flower needs one more edge than a petal).
    """
    if topology is Topology.STAR or topology is Topology.CHAIN:
        return size >= 2
    if topology is Topology.TREE:
        return size >= 4  # every 3-edge tree is a chain or a star
    if topology is Topology.CYCLE:
        return size >= 3
    if topology is Topology.CLIQUE:
        # a 3-edge clique is a triangle, classified as a cycle; the paper
        # notes "the minimum query size is six for clique, petal, and flower"
        return _clique_vertices(size) is not None and size >= 6
    if topology is Topology.PETAL:
        return size >= 6
    if topology is Topology.FLOWER:
        return size >= 7
    return size >= 4  # 3-edge cyclic queries are triangles (cycles)

"""Analogues of the paper's DBpedia log queries P1-P6.

The paper extracts P1-P6 from real SPARQL endpoint logs via FEASIBLE
(Section 6.5); the logs are not available offline, so we draw queries with
the same topology mix from the DBpedia-like graph: P1 and P2 star-shaped,
P3 and P4 graph-shaped, P5 tree-shaped, and P6 cyclic — matching the
shapes the paper discusses for each query.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..datasets.base import Dataset
from ..graph.topology import Topology
from .generator import QueryGenerator, WorkloadQuery

#: (name, topology, size) for each log-query analogue
_PROFILES = (
    ("P1", Topology.STAR, 4),
    ("P2", Topology.STAR, 3),
    ("P3", Topology.GRAPH, 5),
    ("P4", Topology.GRAPH, 4),
    ("P5", Topology.TREE, 4),
    ("P6", Topology.CYCLE, 3),
)


def benchmark_queries(
    dataset: Dataset, seed: int = 7
) -> Dict[str, WorkloadQuery]:
    """Generate the P1-P6 analogues from a DBpedia-like dataset.

    Deterministic for a given dataset and seed.  A profile that cannot be
    extracted (extremely unlikely at default scales) is skipped.
    """
    generator = QueryGenerator(dataset.graph, seed=seed)
    queries: Dict[str, WorkloadQuery] = {}
    for name, topology, size in _PROFILES:
        found = generator.generate(topology, size, count=1, max_attempts=800)
        if found:
            queries[name] = found[0]
    return queries


def query_names() -> List[str]:
    return [name for name, _, _ in _PROFILES]

"""CorrelatedSampling (CS) — Vengerov et al., VLDB 2015.

Sampling-based relational technique (paper, Section 4.1).  Instead of
independent Bernoulli samples per relation, CS samples tuples through
independent per-attribute hash functions ``h_a : values -> [0, 1)``: a tuple
``t`` of relation ``R`` is sampled iff ``h_a(t[a]) < p^(1/|A_R|)`` for every
join attribute ``a`` of ``R``.  Because the same hash decides membership in
every relation sharing the attribute, joining the samples preserves join
partners ("correlated" sampling).

The estimate is ``|S_1 |><| ... |><| S_n| / P`` with
``P = prod_a min_{R contains a} p^(1/|A_R|)``.

A joined result survives in the sampled join iff each of its vertices ``v``
bound to query vertex ``a`` satisfies ``h_a(v)`` below the *minimum*
threshold of the relations containing ``a``; we therefore evaluate the
sampled join by running the exact matcher with per-query-vertex hash
filters, which is tuple-for-tuple identical to materializing each ``S_i``
and joining them, and prunes with the same selectivity.

The paper's observed failure mode — underestimation to zero when no
sampled tuples join — appears verbatim here.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence, Tuple

from ..core.errors import EstimationTimeout
from ..core.framework import Estimator
from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from ..matching.homomorphism import count_embeddings

_MASK = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """Deterministic 64-bit mixer (splitmix64 finalizer)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


class CorrelatedSampling(Estimator):
    """The CS technique expressed in the G-CARE framework."""

    name = "cs"
    display_name = "CS"
    is_sampling_based = True
    # hash filters are seeded per query vertex; the sampled join reads
    # only query-scoped relations, so disjoint deltas cannot change it
    delta_local = True

    def update_summary(self, deltas) -> None:
        """CS holds no offline summary; hash filters are per-estimate."""

    def decompose_query(self, query: QueryGraph) -> Sequence[QueryGraph]:
        self._last_sampled_count = 0
        self._backtrack_steps = 0
        return [query]

    def get_substructures(
        self, query: QueryGraph, subquery: QueryGraph
    ) -> Iterator[Dict[int, float]]:
        """One target substructure: the per-attribute sampling thresholds.

        The threshold of query vertex ``a`` is ``min_R p^(1/|A_R|)`` over the
        relations containing ``a``: ``p^(1/2)`` from every incident edge
        relation, ``p`` from a unary vertex-label relation.
        """
        thresholds: Dict[int, float] = {}
        for u in range(query.num_vertices):
            candidates: List[float] = []
            if query.degree(u) > 0:
                candidates.append(self.sampling_ratio ** 0.5)
            if query.vertex_labels[u]:
                candidates.append(self.sampling_ratio)
            thresholds[u] = min(candidates) if candidates else 1.0
        yield thresholds

    def est_card(
        self,
        query: QueryGraph,
        subquery: QueryGraph,
        substructure: Dict[int, float],
    ) -> float:
        thresholds = substructure
        salts = {
            u: random.Random(f"{self.seed}:{u}").getrandbits(64)
            for u in range(query.num_vertices)
        }

        def make_filter(u: int):
            threshold = thresholds[u]
            salt = salts[u]
            if threshold >= 1.0:
                return None
            limit = int(threshold * (_MASK + 1))
            return lambda v: _splitmix64(v ^ salt) < limit

        vertex_filters = {
            u: f
            for u in range(query.num_vertices)
            if (f := make_filter(u)) is not None
        }
        result = count_embeddings(
            self.graph,
            query,
            time_limit=self.remaining_time(),
            vertex_filters=vertex_filters,
        )
        self._backtrack_steps = result.steps
        self._last_sampled_count = result.count
        if not result.complete:
            raise EstimationTimeout("CorrelatedSampling join ran out of time")
        probability = 1.0
        for u in range(query.num_vertices):
            probability *= thresholds[u]
        return result.count / probability

    def agg_card(self, card_vec: Sequence[float]) -> float:
        return float(sum(card_vec))

    def record_counters(self, obs) -> None:
        obs.incr("cs.sampled_join_count", self._last_sampled_count)
        obs.incr("match.backtrack_steps", self._backtrack_steps)

    def estimation_info(self) -> dict:
        return {"sampled_join_count": getattr(self, "_last_sampled_count", 0)}

"""IMPR — Chen & Lui, ICDM 2016 (extended as in G-CARE Section 3.4).

Sampling-based technique originally designed to count k-node graphlets for
k in {3, 4, 5}; queries with any other number of vertices are rejected
(the paper: "IMPR cannot process Q4 due to its restriction on the query
topology", and "cannot process queries whose sizes are greater than five").

Per the G-CARE extension we count *embeddings* under graph homomorphism
and restrict the random walk to edges whose labels occur in the query.
Each sample is a random walk over ``k - 1`` distinct vertices:

* the start vertex is drawn from the stationary distribution
  ``d(v) / 2|E|`` of the (label-filtered) graph,
* transitions pick a uniformly random incident edge slot,
* the *visible subgraph* of the walk contains the walk vertices, their
  neighbors, and only the edges incident to walk vertices,
* ``f(s)`` counts embeddings of the query that cover all walk vertices and
  use at most one extra vertex from the walk's neighborhood,
* the weight ``W(s) = (1/beta(Q)) * |A(s)| / sum_{s' in A(s)} pi(s')``
  makes the average of ``W(s) f(s)`` (approximately) unbiased, where
  ``A(s)`` is the set of walk orderings over the same vertex set.

Sampling failure — dead-end walks or walks whose visible subgraph contains
no embedding — contributes zero, which is exactly the underestimation
failure mode the paper reports for IMPR on label-rich graphs.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.errors import UnsupportedQueryError
from ..core.framework import Estimator
from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from ..kernels import sampling as _ksampling
from ..kernels import views as _kviews

Walk = Tuple[int, ...]

#: query vertex counts IMPR supports
SUPPORTED_SIZES = (3, 4, 5)


class Impr(Estimator):
    """The IMPR technique expressed in the G-CARE framework."""

    name = "impr"
    display_name = "IMPR"
    is_sampling_based = True
    # the walk structure and every label test are filtered to the query's
    # label sets, so deltas in disjoint scopes cannot change an estimate
    delta_local = True

    def __init__(self, graph: Graph, **kwargs) -> None:
        super().__init__(graph, **kwargs)
        self._labels: FrozenSet[int] = frozenset()
        self._slots: Dict[int, List[Tuple[int, int]]] = {}
        self._slot_table: List[int] = []
        self._num_edges = 0
        self._failures = 0
        self._samples = 0

    def update_summary(self, deltas) -> None:
        """Invalidate the label-filtered walk structure.

        The structure is a per-query-label-set cache, rebuilt lazily on
        the next estimate from the rebound graph (whose fresh
        ``shared_cache`` cannot serve a stale copy either).
        """
        self._reset_walk_structure()

    def reset_summary(self) -> None:
        super().reset_summary()
        self._reset_walk_structure()

    def _reset_walk_structure(self) -> None:
        self._labels = frozenset()
        self._slots = {}
        self._slot_table = []
        self._num_edges = 0

    # ------------------------------------------------------------------
    # label-filtered walking structure (rebuilt per query label set)
    # ------------------------------------------------------------------
    def _build_walk_structure(self, labels: FrozenSet[int]) -> None:
        if labels == self._labels and self._slots:
            return
        self._labels = labels
        # sealed graphs share the walk structure across estimator
        # instances (the structure is a pure function of the immutable
        # graph and the query's label set)
        shared = getattr(self.graph, "shared_cache", None)
        key = ("impr.walk", labels)
        if shared is not None:
            cached = shared.get(key)
            if cached is not None:
                self._slots, self._slot_table, self._num_edges = cached
                return
        slots: Dict[int, List[Tuple[int, int]]] = {}
        # flat slot table: slot 2i / 2i + 1 map to the source / target of
        # edge i (concatenated per label), replacing the per-draw linear
        # scan over label pair lists with one list index
        slot_table: List[int] = []
        num_edges = 0
        for label in labels:
            pairs = self.graph.edges_with_label(label)
            for src, dst in pairs:
                slots.setdefault(src, []).append((dst, label))
                slots.setdefault(dst, []).append((src, label))
            num_edges += len(pairs)
            _ksampling.interleave_pairs(
                pairs, _kviews.pair_arrays(self.graph, label), out=slot_table
            )
        self._slots = slots
        self._slot_table = slot_table
        self._num_edges = num_edges
        if shared is not None:
            shared[key] = (slots, slot_table, num_edges)

    def _degree(self, v: int) -> int:
        return len(self._slots.get(v, ()))

    # ------------------------------------------------------------------
    # framework hooks
    # ------------------------------------------------------------------
    def decompose_query(self, query: QueryGraph) -> Sequence[QueryGraph]:
        if query.num_vertices not in SUPPORTED_SIZES:
            raise UnsupportedQueryError(
                f"IMPR supports {SUPPORTED_SIZES}-vertex queries, "
                f"got {query.num_vertices}"
            )
        return [query]

    def get_substructures(
        self, query: QueryGraph, subquery: QueryGraph
    ) -> Iterator[Optional[Walk]]:
        self._build_walk_structure(frozenset(l for _, _, l in query.edges))
        self._failures = 0
        self._samples = 0
        if self._num_edges == 0:
            return
        walk_length = query.num_vertices - 1
        num_walks = self.num_samples(self._num_edges)
        for _ in range(num_walks):
            self._samples += 1
            walk = self._random_walk(walk_length)
            if walk is None:
                self._failures += 1
            yield walk

    def _random_walk(self, length: int) -> Optional[Walk]:
        """A walk over ``length`` distinct vertices, or None on a dead end."""
        rng = self.rng
        # start from the stationary distribution d(v)/2|E|: a uniformly
        # random slot (edge endpoint) lands on v with that probability
        slot = rng.randrange(2 * self._num_edges)
        current = self._slot_table[slot]
        walk = [current]
        seen = {current}
        while len(walk) < length:
            slots = self._slots.get(current, ())
            if not slots:
                return None
            current = slots[rng.randrange(len(slots))][0]
            if current in seen:
                # a revisiting walk is a failed sample; rejecting it keeps
                # pi(s) = stationary * prod 1/d(x_i) exact for simple walks
                return None
            walk.append(current)
            seen.add(current)
        return tuple(walk)

    def est_card(
        self, query: QueryGraph, subquery: QueryGraph, substructure: Optional[Walk]
    ) -> float:
        if substructure is None:
            return 0.0
        count = self._count_visible_embeddings(query, substructure)
        if count == 0:
            return 0.0
        weight = self._walk_weight(query, substructure)
        return weight * count

    def agg_card(self, card_vec: Sequence[float]) -> float:
        if not card_vec:
            return 0.0
        return float(sum(card_vec) / len(card_vec))

    def record_counters(self, obs) -> None:
        obs.incr("impr.walk_samples", self._samples)
        obs.incr("impr.walk_failures", self._failures)

    def summary_objects(self) -> tuple:
        # not an off-line summary, but the per-query walk structure is the
        # technique's only sizable state — worth gauging
        return (self._slots,)

    def estimation_info(self) -> dict:
        return {
            "walk_failures": self._failures,
            "walk_samples": self._samples,
        }

    # ------------------------------------------------------------------
    # f(s): embeddings inside the visible subgraph
    # ------------------------------------------------------------------
    def _count_visible_embeddings(self, query: QueryGraph, walk: Walk) -> int:
        """Count embeddings covering all walk vertices + <= 1 extra vertex.

        We enumerate mappings of query vertices onto the walk vertices plus
        one symbolic EXTRA slot; for every consistent mapping the number of
        concrete extra vertices is found by intersecting the visible
        adjacency lists demanded of EXTRA.
        """
        graph = self.graph
        walk_set = set(walk)
        k = query.num_vertices
        targets: List[object] = list(walk) + ["extra"]
        total = 0
        for mapping in itertools.product(targets, repeat=k):
            if not walk_set <= {m for m in mapping if m != "extra"}:
                continue
            if not self._vertex_labels_ok(query, mapping, walk_set):
                continue
            concrete_ok = True
            extra_constraints: List[Tuple[str, int, int]] = []
            extra_self_edges = 0
            for u, v, label in query.edges:
                mu, mv = mapping[u], mapping[v]
                if mu != "extra" and mv != "extra":
                    if not graph.has_edge(mu, mv, label):
                        concrete_ok = False
                        break
                elif mu == "extra" and mv == "extra":
                    extra_self_edges += 1
                elif mu == "extra":
                    extra_constraints.append(("out", label, mv))
                else:
                    extra_constraints.append(("in", label, mu))
            if not concrete_ok or extra_self_edges:
                continue
            extra_used = any(m == "extra" for m in mapping)
            if not extra_used:
                total += 1
                continue
            total += self._count_extra_vertices(
                query, mapping, extra_constraints, walk_set
            )
        return total

    def _vertex_labels_ok(
        self, query: QueryGraph, mapping: Sequence[object], walk_set: Set[int]
    ) -> bool:
        for u in range(query.num_vertices):
            target = mapping[u]
            labels = query.vertex_labels[u]
            if not labels or target == "extra":
                continue  # extra labels checked during candidate counting
            if not labels <= self.graph.vertex_labels(target):
                return False
        return True

    def _count_extra_vertices(
        self,
        query: QueryGraph,
        mapping: Sequence[object],
        constraints: List[Tuple[str, int, int]],
        walk_set: Set[int],
    ) -> int:
        """Count data vertices that can fill the EXTRA slot.

        Extra vertices come from the walk's neighborhood, outside the walk
        itself; only edges incident to walk vertices are visible.
        """
        if not constraints:
            return 0  # a floating extra vertex is not in the neighborhood
        graph = self.graph
        direction, label, anchor = constraints[0]
        if direction == "out":  # extra --label--> anchor
            candidates: Sequence[int] = graph.in_neighbors(anchor, label)
        else:
            candidates = graph.out_neighbors(anchor, label)
        required_labels = frozenset().union(
            *(
                query.vertex_labels[u]
                for u in range(query.num_vertices)
                if mapping[u] == "extra"
            )
        )
        count = 0
        for w in candidates:
            if w in walk_set:
                continue
            if required_labels and not required_labels <= graph.vertex_labels(w):
                continue
            ok = True
            for d, l, a in constraints[1:]:
                src, dst = (w, a) if d == "out" else (a, w)
                if not graph.has_edge(src, dst, l):
                    ok = False
                    break
            if ok:
                count += 1
        return count

    # ------------------------------------------------------------------
    # W(s): inverse-probability weight
    # ------------------------------------------------------------------
    def _walk_weight(self, query: QueryGraph, walk: Walk) -> float:
        beta = self._beta(query)
        if beta == 0:
            return 0.0
        orderings = self._walk_orderings(set(walk))
        if not orderings:
            return 0.0
        total_pi = sum(self._walk_probability(o) for o in orderings)
        if total_pi == 0.0:
            return 0.0
        return (1.0 / beta) * (len(orderings) / total_pi)

    def _walk_orderings(self, vertices: Set[int]) -> List[Walk]:
        """A(s): orderings of the walk's vertex set that are valid walks."""
        result: List[Walk] = []
        adjacency = {
            v: {w for w, _ in self._slots.get(v, ())} for v in vertices
        }
        for perm in itertools.permutations(sorted(vertices)):
            if all(
                perm[i + 1] in adjacency[perm[i]] for i in range(len(perm) - 1)
            ):
                result.append(perm)
        return result

    def _walk_probability(self, walk: Walk) -> float:
        """pi(s): stationary start times uniform-slot transitions.

        The walk structure is a multigraph (antiparallel labeled edges give
        two slots to the same neighbor), so the transition probability to a
        specific next vertex is its slot multiplicity over the degree.
        """
        pi = self._degree(walk[0]) / (2.0 * self._num_edges)
        for i in range(len(walk) - 1):
            degree = self._degree(walk[i])
            if degree == 0:
                return 0.0
            multiplicity = sum(
                1 for v, _ in self._slots.get(walk[i], ()) if v == walk[i + 1]
            )
            pi *= multiplicity / degree
        return pi

    def _beta(self, query: QueryGraph) -> int:
        """beta(Q): number of (|V_Q| - 1)-vertex walks in the query graph."""
        adjacency = query.undirected_adjacency()
        k = query.num_vertices - 1
        count = 0
        for perm in itertools.permutations(range(query.num_vertices), k):
            if all(
                perm[i + 1] in adjacency[perm[i]] for i in range(k - 1)
            ):
                count += 1
        return count

"""Online aggregation over WanderJoin walks.

WanderJoin was designed for *online aggregation* (Section 4.2: "the
estimates for aggregation results are updated over time until a certain
stop condition is met"); the paper adapts it to one-shot cardinality
estimation by fixing the number of walks.  This module restores the
original interface: a stream of ``(estimate, confidence half-width)``
snapshots that tightens as walks accumulate, with pluggable stop
conditions (walk budget, wall-clock, target relative confidence).

The stream is useful beyond faithfulness: an optimizer can stop sampling
the moment the interval is tight enough to discriminate between plans.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Iterator, Optional

from ..graph.digraph import Graph
from ..graph.query import QueryGraph
from .wanderjoin import WanderJoin


@dataclass
class OnlineSnapshot:
    """The running COUNT estimate after ``walks`` random walks."""

    walks: int
    valid_walks: int
    estimate: float
    ci_half_width: float
    elapsed: float

    @property
    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the estimate (inf when 0)."""
        if self.estimate <= 0.0:
            return float("inf")
        return self.ci_half_width / self.estimate


class OnlineWanderJoin:
    """Streaming WanderJoin: consume snapshots until satisfied.

    Parameters mirror :class:`WanderJoin`; ``report_every`` controls the
    snapshot granularity.
    """

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        tau: int = 100,
        max_orders: int = 64,
        report_every: int = 16,
    ) -> None:
        self.graph = graph
        self.seed = seed
        self.tau = tau
        self.max_orders = max_orders
        self.report_every = max(1, report_every)

    def stream(
        self,
        query: QueryGraph,
        max_walks: int = 100_000,
        time_limit: Optional[float] = None,
        target_relative_ci: Optional[float] = None,
    ) -> Iterator[OnlineSnapshot]:
        """Yield snapshots until a stop condition fires.

        Stop conditions (whichever comes first): ``max_walks`` walks, the
        wall-clock ``time_limit``, or the 95% CI half-width dropping below
        ``target_relative_ci * estimate`` (checked once at least tau
        walks have been taken, so an early lucky streak cannot stop the
        stream prematurely).
        """
        # reuse WanderJoin's order-selection machinery
        estimator = WanderJoin(
            self.graph,
            sampling_ratio=1.0,
            seed=self.seed,
            time_limit=None,
            tau=self.tau,
            max_orders=self.max_orders,
        )
        join_graph = estimator.decompose_query(query)[0]
        orders = join_graph.walk_orders(self.max_orders)
        start = time.monotonic()
        if not orders:
            yield OnlineSnapshot(0, 0, 0.0, float("inf"), 0.0)
            return
        rng = estimator.rng
        count = 0
        valid = 0
        mean = 0.0
        m2 = 0.0
        chosen: Optional[tuple] = None
        order_stats = {order: [0, 0.0] for order in orders}  # [valid, sum]
        position = 0
        while count < max_walks:
            if time_limit is not None and time.monotonic() - start > time_limit:
                break
            if chosen is None:
                order = orders[position % len(orders)]
                position += 1
            else:
                order = chosen
            ok, weight = join_graph.random_walk(order, rng)
            value = weight if ok else 0.0
            count += 1
            valid += 1 if ok else 0
            delta = value - mean
            mean += delta / count
            m2 += delta * (value - mean)
            if chosen is None and ok:
                stats = order_stats[order]
                stats[0] += 1
                stats[1] += weight
                if stats[0] >= self.tau or count >= max_walks // 2:
                    chosen = order
            if count % self.report_every == 0 or count == max_walks:
                snapshot = self._snapshot(count, valid, mean, m2, start)
                yield snapshot
                if (
                    target_relative_ci is not None
                    and count >= self.tau
                    and snapshot.relative_half_width <= target_relative_ci
                ):
                    return
        if count % self.report_every != 0:
            yield self._snapshot(count, valid, mean, m2, start)

    @staticmethod
    def _snapshot(
        count: int, valid: int, mean: float, m2: float, start: float
    ) -> OnlineSnapshot:
        if count > 1:
            variance = m2 / (count - 1)
            half_width = 1.96 * math.sqrt(variance / count)
        else:
            half_width = float("inf")
        return OnlineSnapshot(
            walks=count,
            valid_walks=valid,
            estimate=mean,
            ci_half_width=half_width,
            elapsed=time.monotonic() - start,
        )

    def estimate_to_confidence(
        self,
        query: QueryGraph,
        target_relative_ci: float = 0.1,
        max_walks: int = 100_000,
        time_limit: Optional[float] = None,
    ) -> OnlineSnapshot:
        """Run the stream to a target confidence and return the final state."""
        last: Optional[OnlineSnapshot] = None
        for snapshot in self.stream(
            query,
            max_walks=max_walks,
            time_limit=time_limit,
            target_relative_ci=target_relative_ci,
        ):
            last = snapshot
        assert last is not None
        return last
